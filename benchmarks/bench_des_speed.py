#!/usr/bin/env python3
"""CI smoke benchmark: raw DES core speed, guarded against regression.

Runs one fixed normal-case scenario (marlin, f=1, 512 closed-loop
clients, null crypto, 40 simulated seconds — ~20k events) several times
and reports the best events/sec and sim-seconds-per-wall-second.  The
event count is asserted against the committed baseline exactly: it is a
pure function of the scenario, so any drift means simulator behaviour
changed, not just its speed.

The wall-clock guard compares against ``benchmarks/BENCH_DES_SPEED.json``
and fails if events/sec drops more than ``--tolerance`` (default 20%)
below the recorded baseline.  The baseline is machine-dependent; after an
intentional change (or on new hardware) regenerate it with::

    python benchmarks/bench_des_speed.py --write-baseline

Run:  python benchmarks/bench_des_speed.py          (~10 s)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.harness.des_runtime import DESCluster
from repro.harness.report import format_table
from repro.harness.workload import ClosedLoopClients

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_DES_SPEED.json"

# The fixed scenario.  Keep in lockstep with the committed baseline: any
# change here invalidates it (the guard catches this via the event count).
SCENARIO = {
    "protocol": "marlin",
    "f": 1,
    "clients": 512,
    "token_weight": 1,
    "target": "all",
    "batch": 400,
    "base_timeout": 120.0,
    "max_timeout": 240.0,
    "seed": 1,
    "crypto": "null",
    "warmup": 3.0,
    "sim_time": 40.0,
}

# The sharded scenario for the ``--des-jobs`` section: a G=4 run that the
# process-parallel engine decomposes one consensus group per worker.
SHARDED_SCENARIO = {
    "protocol": "marlin",
    "f": 1,
    "shards": 4,
    "clients": 256,
    "token_weight": 1,
    "base_timeout": 120.0,
    "max_timeout": 240.0,
    "seed": 1,
    "crypto": "null",
    "warmup": 3.0,
    "sim_time": 15.0,
}


def run_once(flight: bool = False) -> tuple[int, float, float]:
    """One timed run; returns (events_processed, sim_seconds, wall_seconds).

    ``flight=True`` attaches a flight-recorder-only observability layer
    (no metrics, no tracer) — the configuration whose overhead must stay
    low enough to leave the recorder on by default.
    """
    cluster_cfg = ClusterConfig.for_f(
        SCENARIO["f"],
        batch_size=SCENARIO["batch"],
        base_timeout=SCENARIO["base_timeout"],
        max_timeout=SCENARIO["max_timeout"],
    )
    experiment = ExperimentConfig(cluster=cluster_cfg, seed=SCENARIO["seed"])
    observability = None
    if flight:
        from repro.obs.observer import RunObservability

        observability = RunObservability(trace=False, flight=True, metrics=False)
    cluster = DESCluster(
        experiment,
        protocol=SCENARIO["protocol"],
        crypto_mode=SCENARIO["crypto"],
        observability=observability,
    )
    pool = ClosedLoopClients(
        cluster,
        num_clients=SCENARIO["clients"],
        request_size=150,
        reply_size=150,
        token_weight=SCENARIO["token_weight"],
        target=SCENARIO["target"],
        warmup=SCENARIO["warmup"],
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    start = time.perf_counter()
    cluster.run(until=SCENARIO["sim_time"])
    wall = time.perf_counter() - start
    cluster.assert_safety()
    return cluster.sim.events_processed, cluster.sim.now, wall


def measure(rounds: int, flight: bool = False) -> dict:
    """Best-of-``rounds`` measurement of the fixed scenario."""
    best = None
    events = None
    for _ in range(rounds):
        ev, sim_seconds, wall = run_once(flight=flight)
        if events is None:
            events = ev
        elif ev != events:
            raise RuntimeError(
                f"non-deterministic event count: {ev} != {events}"
            )
        if best is None or wall < best[1]:
            best = (sim_seconds, wall)
    sim_seconds, wall = best
    return {
        "events": events,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(events / wall, 1),
        "sim_seconds_per_wall_second": round(sim_seconds / wall, 2),
    }


def run_sharded_once(jobs: int) -> tuple[dict[int, int], str, float]:
    """One timed G=4 sharded run on the decomposed engine.

    Returns (per-group event counts, commit-trace SHA-256, wall seconds).
    The wall clock includes worker start-up for ``jobs > 1`` — that cost
    is real and must be amortised by the parallel speedup.
    """
    import hashlib

    from repro.common.encoding import encode
    from repro.des.parallel import ParallelShardedCluster
    from repro.shard.config import ShardConfig

    cluster_cfg = ClusterConfig.for_f(
        SHARDED_SCENARIO["f"],
        base_timeout=SHARDED_SCENARIO["base_timeout"],
        max_timeout=SHARDED_SCENARIO["max_timeout"],
    )
    experiment = ExperimentConfig(cluster=cluster_cfg, seed=SHARDED_SCENARIO["seed"])
    engine = ParallelShardedCluster(
        experiment,
        shard=ShardConfig(
            shards=SHARDED_SCENARIO["shards"],
            router_seed=SHARDED_SCENARIO["seed"],
        ),
        protocol=SHARDED_SCENARIO["protocol"],
        crypto_mode=SHARDED_SCENARIO["crypto"],
        jobs=jobs,
    )
    start = time.perf_counter()
    engine.run_workload(
        num_clients=SHARDED_SCENARIO["clients"],
        sim_time=SHARDED_SCENARIO["sim_time"],
        token_weight=SHARDED_SCENARIO["token_weight"],
        warmup=SHARDED_SCENARIO["warmup"],
    )
    wall = time.perf_counter() - start
    sha = hashlib.sha256(encode(engine.commit_trace())).hexdigest()
    return engine.per_group_events(), sha, wall


def measure_sharded(jobs: int, rounds: int) -> dict:
    """Best-of-``rounds`` measurement of the sharded scenario."""
    best_wall = None
    events = None
    sha = None
    for _ in range(rounds):
        ev, digest, wall = run_sharded_once(jobs)
        if events is None:
            events, sha = ev, digest
        elif ev != events or digest != sha:
            raise RuntimeError(
                f"non-deterministic sharded run at jobs={jobs}: "
                f"{ev} / {digest} != {events} / {sha}"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
    total = sum(events.values())
    return {
        "jobs": jobs,
        "per_group_events": events,
        "events": total,
        "trace_sha256": sha,
        "wall_seconds": round(best_wall, 4),
        "events_per_sec": round(total / best_wall, 1),
    }


def sharded_section(jobs: int, rounds: int) -> tuple[dict, list[str]]:
    """Run the G=4 scenario at jobs=1 and jobs=N; gate determinism.

    The two runs must agree on every per-group event count and on the
    commit-trace SHA — the parallel engine's contract is byte-identity,
    not statistical equivalence.  Speedup is reported informationally:
    on a single hardware core the spawn workers cannot win.
    """
    failures: list[str] = []
    serial = measure_sharded(1, rounds)
    parallel = measure_sharded(jobs, rounds)
    if parallel["per_group_events"] != serial["per_group_events"]:
        failures.append(
            f"des-jobs={jobs} per-group event counts diverged: "
            f"{parallel['per_group_events']} != {serial['per_group_events']}"
        )
    if parallel["trace_sha256"] != serial["trace_sha256"]:
        failures.append(
            f"des-jobs={jobs} commit trace diverged: "
            f"{parallel['trace_sha256']} != {serial['trace_sha256']}"
        )
    speedup = serial["wall_seconds"] / parallel["wall_seconds"]
    rows = [
        ["events (all groups)", f"{serial['events']:,}"],
        ["jobs=1 wall clock", f"{serial['wall_seconds']:.3f} s"],
        [f"jobs={jobs} wall clock", f"{parallel['wall_seconds']:.3f} s"],
        ["wall-clock speedup", f"{speedup:.2f}x"],
        ["traces identical", "yes" if not failures else "NO"],
    ]
    print(format_table(
        f"Sharded DES (marlin, G={SHARDED_SCENARIO['shards']}, "
        f"{SHARDED_SCENARIO['clients']} clients, "
        f"{SHARDED_SCENARIO['sim_time']:.0f} sim s)",
        ["metric", "value"], rows,
    ))
    summary = {
        "scenario": SHARDED_SCENARIO,
        "serial": serial,
        "parallel": parallel,
        "speedup": round(speedup, 3),
    }
    return summary, failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=5, help="timed repetitions (best-of)"
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed events/sec drop vs baseline (fraction, default 0.20)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record this run as the new baseline instead of gating",
    )
    parser.add_argument(
        "--flight-tolerance", type=float, default=0.10,
        help="allowed events/sec overhead of the flight recorder "
             "(fraction vs this run's recorder-off speed, default 0.10)",
    )
    parser.add_argument(
        "--skip-flight", action="store_true",
        help="skip the flight-recorder overhead guard",
    )
    parser.add_argument(
        "--des-jobs", type=int, default=0, metavar="N",
        help="also run the G=4 sharded scenario at jobs=1 and jobs=N and "
             "gate byte-identity of the two runs (0 = skip)",
    )
    args = parser.parse_args()

    run = measure(args.rounds)
    rows = [
        ["events processed", f"{run['events']:,}"],
        ["best wall clock", f"{run['wall_seconds']:.3f} s"],
        ["events/sec", f"{run['events_per_sec']:,.0f}"],
        ["sim s / wall s", f"{run['sim_seconds_per_wall_second']:.1f}"],
    ]
    print(format_table("DES core speed (marlin, f=1, 512 clients, 40 sim s)",
                       ["metric", "value"], rows))

    sharded_summary = None
    sharded_failures: list[str] = []
    if args.des_jobs > 0:
        sharded_summary, sharded_failures = sharded_section(
            args.des_jobs, max(1, args.rounds // 2)
        )

    if args.write_baseline:
        # Carry the baseline lineage forward: the history list keeps
        # every replaced events/sec figure so speed claims stay auditable
        # across machine changes.
        history: list[dict] = []
        try:
            old = json.loads(BASELINE_PATH.read_text())
        except (OSError, ValueError):
            old = None
        if old is not None:
            prior = old.get("history", [])
            history.extend(prior if isinstance(prior, list) else [prior])
            history.append({
                "replaced_events_per_sec": old.get("events_per_sec"),
                "replaced_events": old.get("events"),
                "note": "baseline replaced by --write-baseline; absolute "
                        "events/sec figures are machine- and load-dependent, "
                        "compare only within one recording",
            })
        baseline = {"scenario": SCENARIO, **run, "history": history}
        if sharded_summary is not None:
            sharded_summary = dict(sharded_summary)
            sharded_summary["note"] = (
                "wall-clock speedup of jobs=N over jobs=1 requires N hardware "
                "cores; on fewer cores the spawn workers time-slice one core "
                "and the section only evidences byte-identical determinism"
            )
            baseline["sharded"] = sharded_summary
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 1 if sharded_failures else 0

    failures = list(sharded_failures)
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read baseline {BASELINE_PATH}: {exc}", file=sys.stderr)
        return 1

    if run["events"] != baseline["events"]:
        failures.append(
            f"event count {run['events']} != baseline {baseline['events']} "
            "— simulator behaviour changed, regenerate the baseline deliberately"
        )
    floor = baseline["events_per_sec"] * (1.0 - args.tolerance)
    delta = run["events_per_sec"] / baseline["events_per_sec"] - 1
    print(
        f"events/sec vs baseline {baseline['events_per_sec']:,.0f}: {delta * 100:+.1f}% "
        f"(floor at -{args.tolerance * 100:.0f}%)"
    )
    if run["events_per_sec"] < floor:
        failures.append(
            f"events/sec {run['events_per_sec']:,.0f} fell more than "
            f"{args.tolerance * 100:.0f}% below baseline {baseline['events_per_sec']:,.0f}"
        )

    if not args.skip_flight:
        # Flight-recorder overhead guard: same scenario, same rounds,
        # recorder armed.  Compared against *this run's* recorder-off
        # speed, not the committed baseline, so the guard is
        # machine-independent.  The event count must not move at all —
        # the recorder observes the simulation, it must never steer it.
        flight_run = measure(args.rounds, flight=True)
        if flight_run["events"] != run["events"]:
            failures.append(
                f"flight recorder changed the event count: "
                f"{flight_run['events']} != {run['events']}"
            )
        overhead = 1.0 - flight_run["events_per_sec"] / run["events_per_sec"]
        print(
            f"flight recorder overhead: {overhead * 100:+.1f}% "
            f"({flight_run['events_per_sec']:,.0f} vs {run['events_per_sec']:,.0f} ev/s, "
            f"cap {args.flight_tolerance * 100:.0f}%)"
        )
        if overhead > args.flight_tolerance:
            failures.append(
                f"flight recorder costs {overhead * 100:.1f}% events/sec, "
                f"over the {args.flight_tolerance * 100:.0f}% budget"
            )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: DES core speed within tolerance of the recorded baseline")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
