"""Fig. 10i: view change latency, f in {1, 10}.

Crash the leader and time from the first correct replica entering the new
view to the first post-crash commit, for Marlin's happy path, Marlin's
forced unhappy path, and HotStuff.  The paper's findings, asserted here:

* Marlin happy path is 30-40%+ faster than HotStuff (two-phase VC);
* Marlin's unhappy path is "similar to HotStuff" (both three-phase);
* latency grows with f for every variant.
"""

from __future__ import annotations

from benchmarks.conftest import PAPER_FIG10I_MS
from repro.harness.report import format_table, ms
from repro.harness.scenarios import view_change_latency

F_VALUES = [1, 10]
VARIANTS = [
    ("marlin-happy", "marlin", False),
    ("marlin-unhappy", "marlin", True),
    ("hotstuff", "hotstuff", False),
]


def test_fig10i_view_change_latency(once, benchmark):
    def run():
        results = {}
        for f in F_VALUES:
            for label, protocol, unhappy in VARIANTS:
                result = view_change_latency(protocol, f, force_unhappy=unhappy)
                results[(label, f)] = result.latency
        return results

    results = once(run)

    rows = []
    for f in F_VALUES:
        for label, _, _ in VARIANTS:
            rows.append(
                [
                    str(f),
                    label,
                    ms(results[(label, f)]),
                    str(PAPER_FIG10I_MS[(label, f)]),
                ]
            )
    print(
        format_table(
            "fig10i: view change latency (ms), measured vs paper",
            ["f", "variant", "measured", "paper"],
            rows,
        )
    )
    benchmark.extra_info["latencies_ms"] = {
        f"{label}-f{f}": results[(label, f)] * 1000 for (label, f) in results
    }

    for f in F_VALUES:
        happy = results[("marlin-happy", f)]
        unhappy = results[("marlin-unhappy", f)]
        hotstuff = results[("hotstuff", f)]
        # Happy path clearly faster than HotStuff (paper: ~30-40% lower).
        assert happy < hotstuff * 0.8, f"happy path not faster at f={f}"
        # Unhappy path comparable to HotStuff (same phase count).
        assert 0.7 < unhappy / hotstuff < 1.3, f"unhappy path diverges at f={f}"
    # Latency grows with scale.
    for label, _, _ in VARIANTS:
        assert results[(label, 10)] > results[(label, 1)]
