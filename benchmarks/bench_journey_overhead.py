#!/usr/bin/env python3
"""CI smoke benchmark: request-journey tracing overhead, guarded.

Runs one fixed normal-case scenario (marlin, f=1, 512 closed-loop
clients, null crypto, 40 simulated seconds) three ways:

* ``off``      — no observability layer at all (the reference speed);
* ``sampled``  — a journey recorder tracing a deterministic 1/8 of the
  client population (the mode ``repro latency`` runs);
* ``disabled`` — a journey recorder constructed with ``rate=0``, which
  must short-circuit every layer's plumbing down to nothing.

Three invariants are enforced:

* the **event count is identical** across all three modes — journeys ride
  the identity ``(client_id, sequence)`` that already travels in every
  message, so arming the tracer must never change a network event or the
  simulated schedule;
* ``sampled`` costs less than ``--journey-tolerance`` (default 10%)
  events/sec relative to *this run's* ``off`` speed (within-run ratio, so
  the gate is machine-independent);
* ``disabled`` costs less than ``--disabled-tolerance`` (default 3%) —
  effectively zero, the cost of dormant ``None`` checks.

The committed ``benchmarks/BENCH_JOURNEY_OVERHEAD.json`` additionally
pins the absolute event count; after an intentional scenario change
regenerate it with::

    python benchmarks/bench_journey_overhead.py --write-baseline

Run:  python benchmarks/bench_journey_overhead.py          (~30 s)
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.harness.des_runtime import DESCluster
from repro.harness.report import format_table
from repro.harness.workload import ClosedLoopClients

BASELINE_PATH = Path(__file__).resolve().parent / "BENCH_JOURNEY_OVERHEAD.json"

SAMPLE_RATE = 0.125

# The fixed scenario — bench_des_speed's, so the two baselines stay
# comparable.  Any change invalidates the committed baseline (the guard
# catches this via the event count).
SCENARIO = {
    "protocol": "marlin",
    "f": 1,
    "clients": 512,
    "token_weight": 1,
    "target": "all",
    "batch": 400,
    "base_timeout": 120.0,
    "max_timeout": 240.0,
    "seed": 1,
    "crypto": "null",
    "warmup": 3.0,
    "sim_time": 40.0,
    "sample_rate": SAMPLE_RATE,
}

MODES = ("off", "sampled", "disabled")


def run_once(mode: str) -> tuple[int, float, float, int]:
    """One timed run; returns (events, sim_seconds, cpu_seconds, journeys)."""
    cluster_cfg = ClusterConfig.for_f(
        SCENARIO["f"],
        batch_size=SCENARIO["batch"],
        base_timeout=SCENARIO["base_timeout"],
        max_timeout=SCENARIO["max_timeout"],
    )
    experiment = ExperimentConfig(cluster=cluster_cfg, seed=SCENARIO["seed"])
    observability = None
    recorder = None
    if mode != "off":
        from repro.obs.journey import JourneyRecorder
        from repro.obs.observer import RunObservability

        rate = SAMPLE_RATE if mode == "sampled" else 0.0
        recorder = JourneyRecorder(SCENARIO["seed"], rate=rate)
        observability = RunObservability(
            trace=False, metrics=False, journey=recorder
        )
    cluster = DESCluster(
        experiment,
        protocol=SCENARIO["protocol"],
        crypto_mode=SCENARIO["crypto"],
        observability=observability,
    )
    pool = ClosedLoopClients(
        cluster,
        num_clients=SCENARIO["clients"],
        request_size=150,
        reply_size=150,
        token_weight=SCENARIO["token_weight"],
        target=SCENARIO["target"],
        warmup=SCENARIO["warmup"],
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    # CPU time, not wall time: shared-runner wall clocks drift 10-15%
    # between back-to-back identical runs, which would drown a 10% gate.
    # process_time() is stable to ~1-3%; collecting garbage first keeps
    # a previous run's freed graph from being collected inside the
    # timed section.
    gc.collect()
    start = time.process_time()
    cluster.run(until=SCENARIO["sim_time"])
    wall = time.process_time() - start
    cluster.assert_safety()
    journeys = len(recorder) if recorder is not None else 0
    return cluster.sim.events_processed, cluster.sim.now, wall, journeys


def measure_all(rounds: int) -> dict[str, dict]:
    """Best-of-``rounds`` per mode, rounds interleaved across modes.

    Interleaving (off, sampled, disabled, off, sampled, ...) instead of
    running each mode's rounds back to back means slow drift in machine
    speed (thermal, noisy neighbours) hits every mode equally, so the
    within-run overhead ratios stay honest.
    """
    best: dict[str, float] = {}
    events: dict[str, int] = {}
    journeys: dict[str, int] = {}
    for _ in range(rounds):
        for mode in MODES:
            ev, _sim_seconds, cpu, nj = run_once(mode)
            known = events.get(mode)
            if known is None:
                events[mode] = ev
            elif ev != known:
                raise RuntimeError(f"non-deterministic event count: {ev} != {known}")
            journeys[mode] = nj
            if mode not in best or cpu < best[mode]:
                best[mode] = cpu
    return {
        mode: {
            "events": events[mode],
            "journeys": journeys[mode],
            "cpu_seconds": round(best[mode], 4),
            "events_per_sec": round(events[mode] / best[mode], 1),
        }
        for mode in MODES
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rounds", type=int, default=3, help="timed repetitions per mode (best-of)"
    )
    parser.add_argument(
        "--journey-tolerance", type=float, default=0.10,
        help="allowed events/sec overhead of sampled tracing "
             "(fraction vs this run's tracing-off speed, default 0.10)",
    )
    parser.add_argument(
        "--disabled-tolerance", type=float, default=0.03,
        help="allowed events/sec overhead with tracing constructed but "
             "disabled (rate=0; default 0.03)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record this run as the new baseline instead of gating",
    )
    args = parser.parse_args()

    runs = measure_all(args.rounds)
    off = runs["off"]
    rows = []
    for mode in MODES:
        run = runs[mode]
        overhead = 1.0 - run["events_per_sec"] / off["events_per_sec"]
        rows.append(
            [
                mode,
                f"{run['events']:,}",
                f"{run['journeys']:,}",
                f"{run['events_per_sec']:,.0f}",
                "—" if mode == "off" else f"{overhead * 100:+.1f}%",
            ]
        )
    print(
        format_table(
            "journey tracing overhead (marlin, f=1, 512 clients, 40 sim s)",
            ["mode", "events", "journeys", "events/sec", "overhead"],
            rows,
        )
    )

    if args.write_baseline:
        baseline = {
            "scenario": SCENARIO,
            "events": off["events"],
            "journeys_sampled": runs["sampled"]["journeys"],
            "events_per_sec_off": off["events_per_sec"],
            "events_per_sec_sampled": runs["sampled"]["events_per_sec"],
            "events_per_sec_disabled": runs["disabled"]["events_per_sec"],
        }
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    failures = []
    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read baseline {BASELINE_PATH}: {exc}", file=sys.stderr)
        return 1

    # Exact event-count invariance: across modes within this run, and
    # against the committed baseline (scenario drift detector).
    for mode in ("sampled", "disabled"):
        if runs[mode]["events"] != off["events"]:
            failures.append(
                f"{mode} tracing changed the event count: "
                f"{runs[mode]['events']} != {off['events']} — the journey "
                "layer must observe the schedule, never steer it"
            )
    if off["events"] != baseline["events"]:
        failures.append(
            f"event count {off['events']} != baseline {baseline['events']} "
            "— simulator behaviour changed, regenerate the baseline deliberately"
        )
    if runs["sampled"]["journeys"] != baseline["journeys_sampled"]:
        failures.append(
            f"sampled journey count {runs['sampled']['journeys']} != baseline "
            f"{baseline['journeys_sampled']} — sampling is seed-derived and "
            "must be deterministic"
        )
    if runs["disabled"]["journeys"] != 0:
        failures.append(
            f"disabled tracing still recorded {runs['disabled']['journeys']} journeys"
        )

    # Relative (within-run) overhead gates — machine-independent.
    for mode, cap in (
        ("sampled", args.journey_tolerance),
        ("disabled", args.disabled_tolerance),
    ):
        overhead = 1.0 - runs[mode]["events_per_sec"] / off["events_per_sec"]
        print(
            f"{mode} overhead: {overhead * 100:+.1f}% "
            f"({runs[mode]['events_per_sec']:,.0f} vs {off['events_per_sec']:,.0f} ev/s, "
            f"cap {cap * 100:.0f}%)"
        )
        if overhead > cap:
            failures.append(
                f"{mode} tracing costs {overhead * 100:.1f}% events/sec, "
                f"over the {cap * 100:.0f}% budget"
            )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: journey tracing overhead within budget, event counts invariant")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
