#!/usr/bin/env python3
"""CI smoke benchmark: real protocol clients must agree with the hub model.

The throughput figures drive load through an aggregate "hub" population
(one generator submitting batches on the clients' behalf).  The client
subsystem (:mod:`repro.client`) replaces that with genuine protocol
clients — sessions, retransmit timers, reply certificates — over the
same simulated network.  The two models measure the same system, so
they must agree; this benchmark is the gate that keeps them honest.

Two deterministic DES load points (light and saturated), each run under
both client models.  The process exits non-zero if, at either point:

* real-mode throughput disagrees with the hub model by more than 5%
  (the subsystem's acceptance bar), or
* real-mode **certified** latency — request send to f+1 matching
  replies, the full end-to-end client path — exceeds hub latency by
  more than 10%, or
* a failure-free run needed retransmits or tallied mismatched replies
  (both mean the client path itself is broken).

Run:  python benchmarks/bench_client_path.py          (~40 s)
"""

from __future__ import annotations

import sys

from repro.api import ClientConfig, Scenario, load_point
from repro.harness.report import format_table, ktx, ms

PROTOCOL = "marlin"
LOAD_POINTS = (32, 256)
SIM_TIME = 12.0
WARMUP = 4.0

THROUGHPUT_TOLERANCE = 0.05
LATENCY_TOLERANCE = 0.10


def run_pair(clients: int) -> tuple:
    """One load point under the hub model and under real clients."""
    hub = load_point(
        Scenario(
            protocol=PROTOCOL, f=1, clients=clients,
            sim_time=SIM_TIME, warmup=WARMUP,
        )
    )
    real = load_point(
        Scenario(
            protocol=PROTOCOL, f=1, clients=clients,
            sim_time=SIM_TIME, warmup=WARMUP,
            client=ClientConfig(mode="real"),
        )
    )
    return hub, real


def client_path_counters(clients: int) -> dict:
    """Re-run the real-mode point keeping the pool, for its counters."""
    from repro.harness.des_runtime import DESCluster
    from repro.harness.scenarios import _experiment
    from repro.harness.workload import ClosedLoopClients

    experiment = _experiment(1, seed=1, base_timeout=120.0, max_timeout=240.0)
    cluster = DESCluster(experiment, protocol=PROTOCOL, crypto_mode="null")
    pool = ClosedLoopClients(
        cluster, num_clients=clients, token_weight=1, target="leader",
        warmup=WARMUP, mode="real", client_config=ClientConfig(mode="real"),
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.run(until=SIM_TIME)
    cluster.assert_safety()
    return {
        "certified": pool.certified,
        "retransmits": pool.retransmits,
        "mismatches": pool.reply_mismatches,
        "replays": pool.replays,
    }


def main() -> int:
    failures = []
    rows = []
    for clients in LOAD_POINTS:
        hub, real = run_pair(clients)
        tput_gap = abs(real.throughput_tps / hub.throughput_tps - 1)
        lat_gap = real.mean_latency / hub.mean_latency - 1
        rows.append([
            str(clients),
            ktx(hub.throughput_tps), ktx(real.throughput_tps), f"{tput_gap * 100:+.1f}%",
            ms(hub.mean_latency), ms(real.mean_latency), f"{lat_gap * 100:+.1f}%",
        ])
        if tput_gap > THROUGHPUT_TOLERANCE:
            failures.append(
                f"{clients} clients: real-mode throughput {real.throughput_tps:.0f} tps "
                f"is {tput_gap * 100:.1f}% off the hub model's {hub.throughput_tps:.0f} tps "
                f"(tolerance {THROUGHPUT_TOLERANCE * 100:.0f}%)"
            )
        if lat_gap > LATENCY_TOLERANCE:
            failures.append(
                f"{clients} clients: certified latency {real.mean_latency * 1000:.1f} ms "
                f"exceeds hub latency {hub.mean_latency * 1000:.1f} ms "
                f"by more than {LATENCY_TOLERANCE * 100:.0f}%"
            )
    print(
        format_table(
            f"hub model vs real clients ({PROTOCOL}, f=1)",
            ["clients", "hub ktx/s", "real ktx/s", "gap",
             "hub lat", "real lat", "gap"],
            rows,
        )
    )

    counters = client_path_counters(LOAD_POINTS[0])
    print(
        f"\nclient path at {LOAD_POINTS[0]} clients: "
        f"{counters['certified']} certified, "
        f"{counters['retransmits']} retransmits, "
        f"{counters['mismatches']} reply mismatches, "
        f"{counters['replays']} replays"
    )
    if counters["retransmits"]:
        failures.append(
            f"failure-free run needed {counters['retransmits']} retransmits"
        )
    if counters["mismatches"]:
        failures.append(
            f"failure-free run tallied {counters['mismatches']} mismatched replies"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: real clients agree with the hub model and certify cleanly")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
