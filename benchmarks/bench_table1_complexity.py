"""Table I: view-change complexity of HotStuff, the two-phase variants,
and Marlin.

Two parts:

1. the analytical rows of Table I, printed verbatim from
   :mod:`repro.harness.analytical` (Fast-HotStuff/Jolteon/Wendy are not
   runnable systems here; their rows are the paper's asymptotics);
2. **measured** view-change cost for the protocols we implement: crash
   the leader at f in {1, 2, 3} and count messages, bytes and
   authenticators from the network tap.  Assertions pin the linearity
   claim — costs grow ~linearly in n, nowhere near quadratically — and
   the phase counts (Marlin 2 happy / 3 unhappy, HotStuff 3).
"""

from __future__ import annotations

from benchmarks.conftest import PAPER_FIG10G_MARLIN  # noqa: F401  (module layout)
from repro.harness.analytical import TABLE_I
from repro.harness.report import format_table
from repro.harness.scenarios import measure_view_change_cost

F_VALUES = [1, 2, 3]
VARIANTS = [
    ("marlin-happy", "marlin", False),
    ("marlin-unhappy", "marlin", True),
    ("hotstuff", "hotstuff", False),
    ("fast-hotstuff", "fast-hotstuff", False),
]


def test_table1_analytical_rows(once):
    once(lambda: None)
    rows = [
        [row.protocol, row.vc_communication, row.vc_authenticators, row.vc_phases]
        for row in TABLE_I
    ]
    print(
        format_table(
            "Table I (paper, analytical): view-change complexity",
            ["protocol", "vc communication", "vc authenticators", "phases"],
            rows,
        )
    )
    linear = [row.protocol for row in TABLE_I if row.linear]
    assert linear == ["HotStuff", "Marlin"]


def test_normal_case_cost_per_block(once, benchmark):
    """Companion measurement: steady-state messages per committed block.

    Theory with self-delivering broadcasts: event-driven Marlin ~5n,
    HotStuff ~7n, chained variants fewer still.
    """
    from repro.harness.scenarios import measure_normal_case_cost

    protocols = ["marlin", "hotstuff", "chained-marlin", "chained-hotstuff"]

    def run():
        return {p: measure_normal_case_cost(p, 1) for p in protocols}

    results = once(run)
    rows = [
        [
            p,
            str(c.n),
            str(c.blocks),
            f"{c.messages_per_block:.1f}",
            f"{c.messages_per_block / c.n:.2f}",
            f"{c.authenticators_per_block:.1f}",
        ]
        for p, c in results.items()
    ]
    print(
        format_table(
            "normal case: consensus messages per committed block (f=1)",
            ["protocol", "n", "blocks", "msgs/blk", "msgs/blk/n", "auth/blk"],
            rows,
        )
    )
    benchmark.extra_info["rows"] = rows
    assert results["marlin"].messages_per_block < results["hotstuff"].messages_per_block
    assert (
        results["chained-marlin"].messages_per_block
        < results["marlin"].messages_per_block
    )


def test_per_pair_link_bytes(once, benchmark):
    """Per-link byte accounting from the network's ``TrafficStats``.

    Under a stable leader the byte load is star-shaped: the leader's
    outbound links carry the proposal payloads while replica-to-leader
    links carry only constant-size votes.  The per-pair byte counters
    make that visible per directed link — the same linearity Table I
    states in aggregate.
    """
    from repro.common.config import ClusterConfig, ExperimentConfig
    from repro.harness.des_runtime import DESCluster
    from repro.harness.workload import ClosedLoopClients

    def run():
        cfg = ClusterConfig.for_f(1, batch_size=400, base_timeout=60.0)
        cluster = DESCluster(
            ExperimentConfig(cluster=cfg, seed=6), protocol="marlin", crypto_mode="null"
        )
        pool = ClosedLoopClients(cluster, num_clients=256, token_weight=2, warmup=2.0)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        # Measure steady state only: drop boot-time traffic at warm-up.
        cluster.sim.schedule(2.0, cluster.network.reset_stats)
        cluster.run(until=10.0)
        cluster.assert_safety()
        stats = cluster.network.stats
        n = cluster.experiment.cluster.num_replicas
        pairs = {
            (src, dst): (stats.per_pair[(src, dst)], stats.per_pair_bytes[(src, dst)])
            for src, dst in stats.per_pair
            # Replica-to-replica links only: skip the client hub and the
            # loopback delivery of a replica's own broadcasts.
            if src < n and dst < n and src != dst
        }
        return pairs, n

    pairs, n = once(run)
    rows = [
        [f"{src}->{dst}", str(msgs), str(nbytes), f"{nbytes / msgs:.0f}"]
        for (src, dst), (msgs, nbytes) in sorted(pairs.items())
    ]
    print(
        format_table(
            "per-link traffic under a stable leader (marlin, f=1, steady state)",
            ["link", "msgs", "bytes", "B/msg"],
            rows,
        )
    )
    benchmark.extra_info["per_pair_bytes"] = {
        f"{src}->{dst}": nbytes for (src, dst), (_, nbytes) in pairs.items()
    }

    leader = 0  # replica 0 leads view 1 and is never deposed here
    leader_out = sum(b for (src, _), (_, b) in pairs.items() if src == leader)
    follower_out = sum(b for (src, _), (_, b) in pairs.items() if src != leader)
    assert leader_out > follower_out, (
        "leader outbound links must dominate the byte load (proposal payloads)"
    )
    # Star shape: the leader proposes to every follower, every follower
    # votes back to the leader, and followers never talk to each other.
    assert {pair for pair in pairs if pair[0] == leader} == {
        (leader, dst) for dst in range(1, n)
    }
    assert {pair for pair in pairs if pair[0] != leader} == {
        (src, leader) for src in range(1, n)
    }
    # Vote links are constant-size; proposal links carry the batches.
    vote_bytes_per_msg = max(
        nbytes / msgs for (src, _), (msgs, nbytes) in pairs.items() if src != leader
    )
    proposal_bytes_per_msg = min(
        nbytes / msgs for (src, _), (msgs, nbytes) in pairs.items() if src == leader
    )
    assert proposal_bytes_per_msg > vote_bytes_per_msg * 10


def test_empirical_linearity_observatory(once, benchmark, tmp_path):
    """Empirical Table 1 from the complexity observatory, wide n.

    :func:`repro.harness.audit.complexity_sweep` measures per-view
    happy-path and per-crash view-change cost at several cluster sizes
    through the same :class:`~repro.obs.complexity.ComplexityObservatory`
    tap that backs ``repro audit``, then fits log-log cost-vs-n slopes.
    The paper's linearity claim is the assertion that every fitted slope
    stays below 1.3 (quadratic growth would fit ≈ 2).  The sweep result
    is also written as a machine-readable JSON artifact.
    """
    import json
    import os

    from repro.harness.audit import complexity_sweep

    sizes = (4, 16, 32, 64)

    def run():
        return complexity_sweep("marlin", sizes=sizes)

    sweep = once(run)
    print(sweep.render())
    artifact = sweep.to_dict()
    benchmark.extra_info["fits"] = artifact["fits"]
    out = os.environ.get(
        "REPRO_TABLE1_JSON", str(tmp_path / "table1_complexity.json")
    )
    with open(out, "w") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
    print(f"wrote {out}")

    assert sweep.linear, sweep.render()
    for fit in sweep.fits:
        assert fit.slope == fit.slope, f"{fit.metric}: not enough points to fit"
        assert 0.7 < fit.slope < 1.3, f"{fit.metric}: slope {fit.slope:.2f} not ~linear"
    # The observatory must have attributed real traffic at every size.
    for point in sweep.happy:
        assert point.rounds > 0 and point.bytes > 0
    for point in sweep.view_change:
        assert point.messages > 0 and point.authenticators > 0


def test_table1_measured_view_change_cost(once, benchmark):
    def run():
        results = {}
        for f in F_VALUES:
            for label, protocol, unhappy in VARIANTS:
                results[(label, f)] = measure_view_change_cost(
                    protocol, f, force_unhappy=unhappy
                )
        return results

    results = once(run)

    rows = []
    for label, _, _ in VARIANTS:
        for f in F_VALUES:
            cost = results[(label, f)]
            rows.append(
                [
                    label,
                    str(f),
                    str(cost.n),
                    str(cost.vc_messages),
                    str(cost.vc_bytes),
                    str(cost.vc_authenticators),
                    f"{cost.vc_authenticators / cost.n:.1f}",
                    str(cost.phases_to_commit),
                ]
            )
    print(
        format_table(
            "Table I (measured): VC-specific cost of a leader-crash view change",
            ["variant", "f", "n", "vc msgs", "vc bytes", "vc auth", "auth/n", "phases"],
            rows,
        )
    )
    benchmark.extra_info["rows"] = rows

    # Linearity: auth/n stays ~constant for the linear protocols as n
    # grows 2.5x (quadratic would scale it by ~2.5x, as Fast-HotStuff's
    # measured row shows).
    for label in ("marlin-happy", "marlin-unhappy", "hotstuff"):
        small = results[(label, 1)]
        large = results[(label, 3)]
        auth_small = small.vc_authenticators / small.n
        auth_large = large.vc_authenticators / large.n
        assert auth_large < auth_small * 1.5, f"{label} authenticators not linear"
    fhs_small = results[("fast-hotstuff", 1)]
    fhs_large = results[("fast-hotstuff", 3)]
    fhs_growth = fhs_large.vc_authenticators / fhs_small.vc_authenticators
    assert fhs_growth > (fhs_large.n / fhs_small.n) * 1.5, "FHS must be super-linear"
    # Phase counts match Table I.
    assert results[("marlin-happy", 1)].phases_to_commit == 2
    assert results[("marlin-unhappy", 1)].phases_to_commit == 3
    assert results[("hotstuff", 1)].phases_to_commit == 3
    assert results[("fast-hotstuff", 1)].phases_to_commit == 2
    for f in F_VALUES:
        # Marlin's linear VC moves far fewer bytes than the quadratic one.
        assert results[("marlin-unhappy", f)].vc_bytes < results[("fast-hotstuff", f)].vc_bytes
        # Happy-path Marlin is the lightest of all.
        assert results[("marlin-happy", f)].vc_messages <= results[("hotstuff", f)].vc_messages
