"""Fig. 2: view-change snapshots — the liveness experiment.

Reproduces Section IV-B operationally: under the adversarial schedule of
Fig. 2 (a hidden higher QC, a vote-withholding Byzantine replica, the
locked replica's VIEW-CHANGE delayed), the insecure two-phase HotStuff
makes zero progress across repeated view changes, while Marlin recovers
in a single view change via Case V1 / R2 and the virtual block.
"""

from __future__ import annotations

import sys

from repro.harness.report import format_table

sys.path.insert(0, ".")  # tests/ carries the scenario builder

from tests.test_insecure_liveness import (  # noqa: E402
    LOCKED,
    advance_one_view,
    build_unsafe_snapshot_scenario,
)
from repro.consensus.marlin.replica import MarlinReplica  # noqa: E402
from repro.consensus.twophase_insecure import TwoPhaseInsecureReplica  # noqa: E402


def test_fig2_insecure_stalls_marlin_recovers(once, benchmark):
    def run():
        outcome = {}
        # Insecure two-phase HotStuff: four adversarial view changes.
        net = build_unsafe_snapshot_scenario(TwoPhaseInsecureReplica)
        start = [r.ledger.committed_height for r in net.replicas[1:]]
        for _ in range(4):
            advance_one_view(net)
        end = [r.ledger.committed_height for r in net.replicas[1:]]
        outcome["insecure"] = {
            "start": start,
            "end": end,
            "views": max(net.views()),
            "locked_height": net.replicas[LOCKED].locked_qc.block.height,
        }
        # Marlin under the identical schedule.
        net = build_unsafe_snapshot_scenario(MarlinReplica)
        start = [r.ledger.committed_height for r in net.replicas[1:]]
        advance_one_view(net)
        end = [r.ledger.committed_height for r in net.replicas[1:]]
        outcome["marlin"] = {
            "start": start,
            "end": end,
            "views": max(net.views()),
            "case_v1": net.replicas[1].stats["case_v1"],
            "r2_votes": net.replicas[LOCKED].stats["votes_r2"],
            "b2_height": net.b2_height,
        }
        return outcome

    outcome = once(run)

    rows = [
        [
            "two-phase insecure",
            str(outcome["insecure"]["start"]),
            str(outcome["insecure"]["end"]),
            f"{outcome['insecure']['views'] - 1} view changes",
            "STALLED",
        ],
        [
            "marlin",
            str(outcome["marlin"]["start"]),
            str(outcome["marlin"]["end"]),
            "1 view change",
            "RECOVERED (V1 + R2 virtual block)",
        ],
    ]
    print(
        format_table(
            "fig2: unsafe-snapshot liveness (committed heights per replica)",
            ["protocol", "before", "after", "effort", "outcome"],
            rows,
        )
    )
    benchmark.extra_info["outcome"] = outcome

    assert outcome["insecure"]["start"] == outcome["insecure"]["end"]
    assert min(outcome["marlin"]["end"]) >= outcome["marlin"]["b2_height"]
    assert outcome["marlin"]["case_v1"] == 1
    assert outcome["marlin"]["r2_votes"] == 1
