"""Ablations of the design choices Section IV-D calls out.

1. **Shadow blocks**: wire bytes of a Case V1 PRE-PREPARE with and
   without payload sharing — the saving is one full batch payload.
2. **Happy vs unhappy path**: view-change latency with and without the
   pre-prepare phase (the cost of losing the happy path).
3. **Batch cap sweep**: saturation throughput versus the batching cap —
   the natural-batching knob behind the Fig. 10 curves.
4. **QC instantiation**: threshold signatures vs a bundle of
   conventional signatures (the paper's Section I observation that the
   multisig instantiation trades bandwidth for cheaper verification).
"""

from __future__ import annotations

import pytest

from repro.consensus.block import Block, Operation
from repro.consensus.messages import Justify, PrePrepareMsg, Proposal
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.crypto.hashing import digest_of
from repro.api import Scenario, load_point, view_change_latency
from repro.harness.report import format_table, ktx, ms


def _v1_proposals(payload_bytes: int):
    parent = BlockSummary(
        digest=digest_of(["parent"]), view=1, height=4, parent_view=1
    )
    qc = QuorumCertificate(phase=Phase.PREPARE, view=1, block=parent, signature=None)
    ops = (Operation(client_id=1, sequence=0, payload=b"x" * payload_bytes),)
    normal = Block(
        parent_link=parent.digest,
        parent_view=parent.view,
        view=2,
        height=5,
        operations=ops,
        justify_digest=qc.digest,
    )
    virtual = Block(
        parent_link=None,
        parent_view=qc.view,
        view=2,
        height=6,
        operations=ops,
        justify_digest=qc.digest,
    )
    return Proposal(normal, Justify(qc)), Proposal(virtual, Justify(qc))


class TestShadowBlockAblation:
    @pytest.mark.parametrize("payload_bytes", [1_000, 60_000, 600_000])
    def test_shadow_saves_one_payload(self, payload_bytes, once):
        def run():
            normal, virtual = _v1_proposals(payload_bytes)
            shadow = PrePrepareMsg(view=2, proposals=(normal, virtual), shadow=True)
            plain = PrePrepareMsg(view=2, proposals=(normal, virtual), shadow=False)
            return shadow.wire_size, plain.wire_size

        shadow_size, plain_size = once(run)
        saving = plain_size - shadow_size
        assert saving >= payload_bytes
        print(
            f"\nshadow ablation: payload={payload_bytes}B  "
            f"plain={plain_size}B shadow={shadow_size}B saved={saving}B"
        )

    def test_saving_fraction_near_half_for_large_batches(self, once):
        def run():
            normal, virtual = _v1_proposals(600_000)
            shadow = PrePrepareMsg(view=2, proposals=(normal, virtual), shadow=True)
            plain = PrePrepareMsg(view=2, proposals=(normal, virtual), shadow=False)
            return shadow.wire_size / plain.wire_size

        assert once(run) < 0.55


def test_happy_path_ablation(once, benchmark):
    """What the happy path buys: one full phase of view-change latency."""

    def run():
        happy = view_change_latency("marlin", 1, force_unhappy=False).latency
        unhappy = view_change_latency("marlin", 1, force_unhappy=True).latency
        return happy, unhappy

    happy, unhappy = once(run)
    print(
        f"\nhappy-path ablation (f=1): happy={ms(happy)} ms "
        f"unhappy={ms(unhappy)} ms  penalty={ms(unhappy - happy)} ms"
    )
    benchmark.extra_info["happy_ms"] = happy * 1000
    benchmark.extra_info["unhappy_ms"] = unhappy * 1000
    assert unhappy > happy * 1.4


def test_batch_cap_ablation(once, benchmark):
    """Saturation throughput vs the natural-batching cap."""
    import repro.harness.scenarios as scenarios

    caps = [2000, 10000, 30000]

    def run():
        results = {}
        original = scenarios.DEFAULT_MAX_BATCH
        try:
            for cap in caps:
                scenarios.DEFAULT_MAX_BATCH = cap
                point = load_point(
                    Scenario(protocol="marlin", f=1, clients=65536, sim_time=20.0, warmup=7.0)
                )
                results[cap] = point
        finally:
            scenarios.DEFAULT_MAX_BATCH = original
        return results

    results = once(run)
    rows = [
        [str(cap), ktx(point.throughput_tps), ms(point.mean_latency)]
        for cap, point in results.items()
    ]
    print(format_table("batch-cap ablation (marlin, f=1, 65536 clients)", ["cap", "ktx/s", "lat ms"], rows))
    benchmark.extra_info["tput_by_cap"] = {c: p.throughput_tps for c, p in results.items()}
    # Bigger batches amortise per-block costs: throughput must rise.
    assert results[30000].throughput_tps > results[2000].throughput_tps


def test_open_vs_closed_loop_methodology(once, benchmark):
    """Methodology ablation: the Fig. 10 curves use closed-loop clients;
    an open-loop Poisson source at the measured closed-loop rate must
    reproduce the same latency (the two methodologies agree below
    saturation), while offering beyond saturation exposes the queueing
    collapse the closed loop can never show.
    """
    from repro.common.config import ClusterConfig, ExperimentConfig
    from repro.harness.des_runtime import DESCluster
    from repro.harness.workload import ClosedLoopClients, OpenLoopClients

    def experiment():
        return ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=30000, base_timeout=120.0), seed=3
        )

    def run():
        cluster = DESCluster(experiment(), protocol="marlin", crypto_mode="null")
        closed = ClosedLoopClients(cluster, num_clients=8192, token_weight=32, warmup=6.0)
        cluster.start()
        cluster.sim.schedule(0.01, closed.start)
        cluster.run(until=20.0)
        closed_summary = closed.summary()
        matched_rate = closed_summary["throughput_tps"]

        cluster = DESCluster(experiment(), protocol="marlin", crypto_mode="null")
        open_pool = OpenLoopClients(cluster, rate_tps=matched_rate, token_weight=32, warmup=6.0)
        cluster.start()
        cluster.sim.schedule(0.01, open_pool.start)
        cluster.run(until=20.0)
        open_summary = open_pool.summary()

        cluster = DESCluster(experiment(), protocol="marlin", crypto_mode="null")
        overload = OpenLoopClients(cluster, rate_tps=matched_rate * 5, token_weight=64, warmup=6.0)
        cluster.start()
        cluster.sim.schedule(0.01, overload.start)
        cluster.run(until=20.0)
        return closed_summary, open_summary, overload.summary(), overload.backlog_ops

    closed_summary, open_summary, overload_summary, backlog = once(run)
    rows = [
        ["closed loop (8192 clients)", ktx(closed_summary["throughput_tps"]), ms(closed_summary["mean_latency"])],
        ["open loop (matched rate)", ktx(open_summary["throughput_tps"]), ms(open_summary["mean_latency"])],
        ["open loop (5x overload)", ktx(overload_summary["throughput_tps"]), ms(overload_summary["mean_latency"])],
    ]
    print(format_table("open vs closed loop (marlin, f=1)", ["workload", "ktx/s", "lat ms"], rows))
    print(f"overload backlog at end: {backlog} ops (queueing collapse visible)")
    benchmark.extra_info["closed"] = closed_summary
    benchmark.extra_info["open"] = open_summary
    # Below saturation the two methodologies agree.
    assert open_summary["mean_latency"] == pytest.approx(
        closed_summary["mean_latency"], rel=0.35
    )
    # Overload: throughput saturates while the backlog diverges.
    assert backlog > 10_000


def test_slow_leader_attack(once, benchmark):
    """A *slow* (not crashed) leader is the classic HotStuff-family
    performance attack (paper §II cites [29, 41]): it delays every
    outbound message just under the timeout, throttling the whole
    cluster while never triggering a view change.  Both protocols
    suffer; Marlin's shorter pipeline loses proportionally less.
    """
    from repro.adversary.behaviors import AdversaryConfig, BehaviorSpec, apply_adversary
    from repro.common.config import ClusterConfig, ExperimentConfig
    from repro.harness.des_runtime import DESCluster
    from repro.harness.workload import ClosedLoopClients

    slow_leader = AdversaryConfig(
        behaviors=(BehaviorSpec.make("delay", 0, delay=0.15),)
    )

    def run_one(protocol: str, slow: bool) -> float:
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=4000, base_timeout=2.0), seed=9
        )
        cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=2048, token_weight=8, warmup=5.0)
        if slow:
            apply_adversary(cluster, slow_leader)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=20.0)
        cluster.assert_safety()
        return pool.throughput.throughput(duration=15.0)

    def run():
        return {
            (protocol, slow): run_one(protocol, slow)
            for protocol in ("marlin", "hotstuff")
            for slow in (False, True)
        }

    results = once(run)
    rows = [
        [
            protocol,
            ktx(results[(protocol, False)]),
            ktx(results[(protocol, True)]),
            f"{(1 - results[(protocol, True)] / results[(protocol, False)]) * 100:.0f}%",
        ]
        for protocol in ("marlin", "hotstuff")
    ]
    print(
        format_table(
            "slow-leader attack (150 ms outbound delay, below timeout)",
            ["protocol", "honest ktx/s", "attacked ktx/s", "loss"],
            rows,
        )
    )
    benchmark.extra_info["results"] = {str(k): v for k, v in results.items()}
    for protocol in ("marlin", "hotstuff"):
        assert results[(protocol, True)] < results[(protocol, False)]
        assert results[(protocol, True)] > 0  # degraded, not dead
    # Fewer phases -> fewer delayed hops per block -> Marlin retains more.
    marlin_retained = results[("marlin", True)] / results[("marlin", False)]
    hotstuff_retained = results[("hotstuff", True)] / results[("hotstuff", False)]
    assert marlin_retained > hotstuff_retained * 0.95


def test_qc_scheme_ablation(once, benchmark):
    """Threshold vs multisig QCs under identical load.

    With the calibrated cost model the threshold scheme pays a pairing
    per QC verification while the multisig scheme pays ``quorum``
    conventional verifications across 16 cores — at f=1 both are cheap,
    so throughput should be within a few percent (the paper's point that
    the instantiation choice matters mainly at scale).
    """
    from repro.common.config import ClusterConfig, ExperimentConfig
    from repro.harness.des_runtime import DESCluster
    from repro.harness.workload import ClosedLoopClients

    def run_one(crypto_mode: str) -> float:
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=30000, base_timeout=120.0),
            seed=6,
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode=crypto_mode)
        pool = ClosedLoopClients(cluster, num_clients=16384, token_weight=64, warmup=6.0)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=18.0)
        cluster.assert_safety()
        return pool.throughput.throughput(duration=12.0)

    def run():
        return {mode: run_one(mode) for mode in ("threshold", "multisig")}

    results = once(run)
    print(
        f"\nQC scheme ablation (marlin, f=1): threshold={ktx(results['threshold'])} "
        f"ktx/s vs multisig={ktx(results['multisig'])} ktx/s"
    )
    benchmark.extra_info["results"] = results
    for mode, tput in results.items():
        assert tput > 5_000, f"{mode} collapsed"
