"""Fig. 10g: peak throughput for f = 1..10, Marlin vs HotStuff.

Prints measured peaks next to the paper's reported values.  Shape
assertions: Marlin beats HotStuff at every f (the paper's headline
"11.56%-34.4% higher"), and throughput declines with f by a comparable
overall factor (the paper: 101.27 -> 23.15 ktx/s, a ~4.4x drop).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_JOBS, PAPER_FIG10G_HOTSTUFF, PAPER_FIG10G_MARLIN
from repro.api import Scenario, peak_throughput
from repro.harness.report import format_table, ktx

F_VALUES = list(range(1, 11))


def test_fig10g_peak_throughput(once, benchmark):
    def run():
        peaks: dict[str, dict[int, float]] = {"marlin": {}, "hotstuff": {}}
        for f in F_VALUES:
            for protocol in peaks:
                peak, _ = peak_throughput(
                    Scenario(protocol=protocol, f=f), jobs=BENCH_JOBS
                )
                peaks[protocol][f] = peak
        return peaks

    peaks = once(run)

    rows = []
    for f in F_VALUES:
        marlin = peaks["marlin"][f]
        hotstuff = peaks["hotstuff"][f]
        gap = (marlin / hotstuff - 1) * 100 if hotstuff else float("nan")
        paper_gap = (PAPER_FIG10G_MARLIN[f] / PAPER_FIG10G_HOTSTUFF[f] - 1) * 100
        rows.append(
            [
                str(f),
                ktx(marlin),
                str(PAPER_FIG10G_MARLIN[f]),
                ktx(hotstuff),
                str(PAPER_FIG10G_HOTSTUFF[f]),
                f"{gap:+.1f}%",
                f"{paper_gap:+.1f}%",
            ]
        )
    print(
        format_table(
            "fig10g: peak throughput (ktx/s), measured vs paper",
            ["f", "marlin", "paper", "hotstuff", "paper", "gap", "paper gap"],
            rows,
        )
    )
    benchmark.extra_info["peaks"] = {p: dict(v) for p, v in peaks.items()}

    for f in F_VALUES:
        assert peaks["marlin"][f] > peaks["hotstuff"][f], f"Marlin must win at f={f}"
    # Overall decline factor comparable to the paper's ~4.4x.
    marlin_drop = peaks["marlin"][1] / peaks["marlin"][10]
    assert 2.0 < marlin_drop < 10.0
    # Monotone-ish decline: each size at most marginally above the prior.
    for f in range(2, 11):
        assert peaks["marlin"][f] <= peaks["marlin"][f - 1] * 1.15
