"""Fig. 10h: peak throughput for no-op requests and replies, f in {1,2,5}.

No-op workload: zero-byte payloads (headers and signatures only), so the
per-operation bandwidth term almost vanishes.  The paper's findings, both
asserted here: (1) no-op throughput exceeds 150-byte throughput at every
f; (2) throughput degrades *less* with growing f than under 150-byte
requests (f=5 no-op stays close to f=1 no-op, while 150-byte f=5 loses
more than half).
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_JOBS, PAPER_FIG10H_HOTSTUFF, PAPER_FIG10H_MARLIN
from repro.api import Scenario, default_client_sweep, peak_at_latency_cap, throughput_curve
from repro.harness.report import format_table, ktx

F_VALUES = [1, 2, 5]


def _peak(protocol: str, f: int, request_size: int, reply_size: int) -> float:
    if request_size == 0:
        # No-op requests stay latency-limited much longer; sweep to the
        # same endpoint for both protocols (the paper's methodology) and
        # stop before deep saturation flattens the comparison.
        sweep = [8192, 16384, 32768, 65536] if f <= 2 else [8192, 16384, 32768, 49152]
    else:
        sweep = default_client_sweep(f)
    curve = throughput_curve(
        Scenario(protocol=protocol, f=f, request_size=request_size, reply_size=reply_size),
        sweep,
        jobs=BENCH_JOBS,
    )
    return peak_at_latency_cap(curve)


def test_fig10h_noop_peaks(once, benchmark):
    def run():
        results = {}
        for f in F_VALUES:
            for protocol in ("marlin", "hotstuff"):
                results[(protocol, f, "noop")] = _peak(protocol, f, 0, 0)
                results[(protocol, f, "150B")] = _peak(protocol, f, 150, 150)
        return results

    results = once(run)

    paper = {"marlin": PAPER_FIG10H_MARLIN, "hotstuff": PAPER_FIG10H_HOTSTUFF}
    rows = []
    for f in F_VALUES:
        for protocol in ("marlin", "hotstuff"):
            rows.append(
                [
                    str(f),
                    protocol,
                    ktx(results[(protocol, f, "noop")]),
                    str(paper[protocol][f]),
                    ktx(results[(protocol, f, "150B")]),
                ]
            )
    print(
        format_table(
            "fig10h: no-op peak throughput (ktx/s), measured vs paper",
            ["f", "protocol", "no-op", "paper no-op", "150B (measured)"],
            rows,
        )
    )
    benchmark.extra_info["results"] = {str(k): v for k, v in results.items()}

    for f in F_VALUES:
        for protocol in ("marlin", "hotstuff"):
            assert results[(protocol, f, "noop")] > results[(protocol, f, "150B")], (
                f"no-op must beat 150B at f={f} for {protocol}"
            )
    # Scalability: no-op degrades less from f=1 to f=5 than 150B does.
    noop_drop = results[("marlin", 1, "noop")] / results[("marlin", 5, "noop")]
    large_drop = results[("marlin", 1, "150B")] / results[("marlin", 5, "150B")]
    assert noop_drop < large_drop
    # Marlin wins everywhere.
    for f in F_VALUES:
        assert results[("marlin", f, "noop")] > results[("hotstuff", f, "noop")]
