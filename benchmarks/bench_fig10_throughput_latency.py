"""Fig. 10a-10f: throughput versus latency, f in {1, 2, 5, 10, 20, 30}.

For each cluster size, sweeps a closed-loop client population and prints
the (throughput, latency) series for Marlin and HotStuff — the same
series the paper plots.  Shape assertions: Marlin's curve dominates
HotStuff's (lower latency at comparable throughput / higher throughput at
the latency cap), matching the paper's "4.47%-34.4% higher" finding.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_JOBS
from repro.api import (
    LATENCY_CAP,
    PipelineConfig,
    RunObservability,
    Scenario,
    load_point,
    peak_at_latency_cap,
    throughput_curve,
)
from repro.harness.report import format_table, ktx, ms

FIGURES = {
    1: "fig10a",
    2: "fig10b",
    5: "fig10c",
    10: "fig10d",
    20: "fig10e",
    30: "fig10f",
}


@pytest.mark.parametrize("f", sorted(FIGURES))
def test_throughput_latency_curve(f, once, benchmark):
    figure = FIGURES[f]

    def run():
        curves = {}
        phases = {}
        for protocol in ("marlin", "hotstuff"):
            # Metrics-only observability (no tracing): the per-phase
            # duration histograms accumulate across the whole sweep.
            # Observability collectors are process-local, so a
            # REPRO_BENCH_JOBS parallel run trades the phase breakdown
            # for wall-clock speed (the curves are identical).
            obs = RunObservability(trace=False) if BENCH_JOBS == 1 else None
            curves[protocol] = throughput_curve(
                Scenario(protocol=protocol, f=f),
                observability=obs,
                jobs=BENCH_JOBS,
            )
            phases[protocol] = obs.phase_latency_summary() if obs is not None else {}
        return curves, phases

    curves, phases = once(run)

    rows = []
    for protocol, curve in curves.items():
        for point in curve:
            rows.append(
                [
                    protocol,
                    str(point.clients),
                    ktx(point.throughput_tps),
                    ms(point.mean_latency),
                    ms(point.p99_latency),
                ]
            )
    print(
        format_table(
            f"{figure}: throughput vs latency (f={f}, n={3 * f + 1})",
            ["protocol", "clients", "ktx/s", "lat ms", "p99 ms"],
            rows,
        )
    )
    phase_rows = []
    for protocol, summary in phases.items():
        for phase, stats in sorted(summary.items()):
            phase_rows.append(
                [protocol, phase, ms(stats["mean"]), ms(stats["p99"]), str(int(stats["count"]))]
            )
    if phase_rows:
        print(
            format_table(
                f"{figure}: block-phase latency breakdown (f={f})",
                ["protocol", "phase", "mean ms", "p99 ms", "n"],
                phase_rows,
            )
        )
    marlin_peak = peak_at_latency_cap(curves["marlin"])
    hotstuff_peak = peak_at_latency_cap(curves["hotstuff"])
    print(
        f"\npeak @ {ms(LATENCY_CAP)} ms latency cap: "
        f"marlin {ktx(marlin_peak)} ktx/s vs hotstuff {ktx(hotstuff_peak)} ktx/s "
        f"({(marlin_peak / hotstuff_peak - 1) * 100:+.1f}%; paper reports +4.47%..+34.4%)"
    )
    benchmark.extra_info["figure"] = figure
    benchmark.extra_info["marlin_peak_tps"] = marlin_peak
    benchmark.extra_info["hotstuff_peak_tps"] = hotstuff_peak

    # Shape: Marlin strictly ahead at the latency cap.
    assert marlin_peak > hotstuff_peak
    # Shape: at equal client counts below saturation, Marlin's latency is
    # lower (the two-phase commit shows up as ~7/9 of HotStuff's).
    paired = {
        p.clients: p.mean_latency for p in curves["marlin"] if p.mean_latency > 0
    }
    for point in curves["hotstuff"]:
        if point.clients in paired and point.mean_latency > 0:
            assert paired[point.clients] < point.mean_latency * 1.02


def test_batching_before_after(once, benchmark):
    """One saturated load point with the hot-path batching/pipelining
    subsystem off (the seed behaviour) and on: batched vote verification,
    the QC verification cache, and speculative proposals must never lose
    throughput, and should gain under crypto-bound load.
    """

    def run():
        results = {}
        for label, pipeline in (("unbatched", None), ("batched", PipelineConfig())):
            results[label] = load_point(
                Scenario(
                    protocol="marlin", f=1, clients=65536,
                    sim_time=16.0, warmup=6.0, pipeline=pipeline,
                )
            )
        return results

    results = once(run)
    rows = [
        [label, ktx(point.throughput_tps), ms(point.mean_latency), ms(point.p99_latency)]
        for label, point in results.items()
    ]
    print(
        format_table(
            "batching before/after (marlin, f=1, 65536 clients)",
            ["pipeline", "ktx/s", "lat ms", "p99 ms"],
            rows,
        )
    )
    before = results["unbatched"].throughput_tps
    after = results["batched"].throughput_tps
    print(f"batching delta: {(after / before - 1) * 100:+.2f}%")
    benchmark.extra_info["unbatched_tps"] = before
    benchmark.extra_info["batched_tps"] = after
    assert after >= before * 0.98, "batching must not regress throughput"
