"""Fig. 10j: rotating-leader peak throughput under crash failures (f=3).

Leaders rotate on a 1 s timer (the Spinning-style mode the paper uses);
0, 1 or 3 of the 10 replicas are crashed at the start.  The paper's
findings, asserted here:

* both protocols degrade under failures (no commits while a dead replica
  leads);
* Marlin outperforms HotStuff in every case (paper: +34.8% at 3 failures);
* the degradation fractions are comparable to the paper's (~25% for one
  failure, ~36-39% for three).
"""

from __future__ import annotations

from benchmarks.conftest import PAPER_FIG10J_HOTSTUFF, PAPER_FIG10J_MARLIN
from repro.harness.report import format_table, ktx
from repro.harness.scenarios import rotating_leader_throughput

CRASH_COUNTS = [0, 1, 3]


def test_fig10j_rotating_leader_failures(once, benchmark):
    def run():
        results = {}
        for crashed in CRASH_COUNTS:
            for protocol in ("marlin", "hotstuff"):
                point = rotating_leader_throughput(
                    protocol, f=3, crashed=crashed, clients=16384, sim_time=30.0
                )
                results[(protocol, crashed)] = point.throughput_tps
        return results

    results = once(run)

    paper = {"marlin": PAPER_FIG10J_MARLIN, "hotstuff": PAPER_FIG10J_HOTSTUFF}
    rows = []
    for crashed in CRASH_COUNTS:
        for protocol in ("marlin", "hotstuff"):
            rows.append(
                [
                    f"{crashed} failures",
                    protocol,
                    ktx(results[(protocol, crashed)]),
                    str(paper[protocol][crashed]),
                ]
            )
    print(
        format_table(
            "fig10j: rotating-leader throughput under failures (ktx/s, f=3)",
            ["scenario", "protocol", "measured", "paper"],
            rows,
        )
    )
    benchmark.extra_info["results"] = {str(k): v for k, v in results.items()}

    for crashed in CRASH_COUNTS:
        assert results[("marlin", crashed)] > results[("hotstuff", crashed)]
    for protocol in ("marlin", "hotstuff"):
        healthy = results[(protocol, 0)]
        assert results[(protocol, 1)] < healthy
        assert results[(protocol, 3)] < results[(protocol, 1)]
        # Degradation magnitude in the paper's ballpark: 1 failure costs
        # roughly its leadership share or more (>= 5%), 3 failures >= 20%.
        assert results[(protocol, 1)] / healthy < 0.95
        assert results[(protocol, 3)] / healthy < 0.80
