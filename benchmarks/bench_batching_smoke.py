#!/usr/bin/env python3
"""CI smoke benchmark: the batching/pipelining subsystem must never lose.

Two quick comparisons, both printed as before/after rows:

1. **DES load point** (the Fig. 10 methodology, deterministic): one
   saturated ``marlin f=1`` point with the pipeline off (seed behaviour)
   and on.  The process exits non-zero if batched throughput falls below
   unbatched, or if batched mean latency regresses by more than 2% —
   this is the regression gate CI enforces.
2. **Asyncio verification work** (real threshold signatures on a live
   event loop): commit a fixed operation count with the pipeline off and
   on, counting the signature checks actually performed.  The batched
   run must do measurably fewer share checks — the quorum aggregate
   check replaces per-share verification and post-quorum votes are
   dropped unverified.  Wall-clock ops/s is printed for visibility but
   not gated: at smoke scale the simulated field arithmetic costs
   microseconds, so runner noise dominates the wall clock.

Run:  python benchmarks/bench_batching_smoke.py          (~30 s)
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro.api import PipelineConfig, Scenario, load_point
from repro.harness.report import format_table, ktx, ms
from repro.runtime.cluster import LocalCluster

DES_CLIENTS = 16384
ASYNC_OPS = 240
ASYNC_BATCH = 40


def des_before_after() -> tuple:
    """One DES load point, pipeline off vs on; returns the two results."""
    results = {}
    for label, pipeline in (("unbatched", None), ("batched", PipelineConfig())):
        results[label] = load_point(
            Scenario(
                protocol="marlin", f=1, clients=DES_CLIENTS,
                sim_time=12.0, warmup=4.0, pipeline=pipeline,
            )
        )
    rows = [
        [label, ktx(point.throughput_tps), ms(point.mean_latency)]
        for label, point in results.items()
    ]
    print(
        format_table(
            f"DES load point (marlin, f=1, {DES_CLIENTS} clients)",
            ["pipeline", "ktx/s", "lat ms"],
            rows,
        )
    )
    return results["unbatched"], results["batched"]


def _count_crypto_work(crypto) -> dict:
    """Wrap the shared crypto service to count verification checks.

    ``share_checks`` counts verification equations evaluated: one per
    :meth:`verify_vote` call, and one per payload group inside a
    :meth:`verify_votes` batch (the aggregate check validates the whole
    group at once when all shares are honest).
    """
    counts = {"share_checks": 0}
    original_single = crypto.verify_vote
    original_batch = crypto.verify_votes

    def counting_single(*args, **kwargs):
        counts["share_checks"] += 1
        return original_single(*args, **kwargs)

    def counting_batch(votes):
        from repro.consensus.qc import vote_payload

        counts["share_checks"] += len(
            {vote_payload(phase, view, block) for _, phase, view, block, _ in votes}
        )
        return original_batch(votes)

    crypto.verify_vote = counting_single
    crypto.verify_votes = counting_batch
    return counts


async def _asyncio_run(pipeline: PipelineConfig | None) -> dict:
    """Commit ASYNC_OPS operations on a live f=1 cluster.

    Closed-loop waves: submit one block's worth, wait for it to commit,
    repeat — the same offered-load shape the DES clients use.
    """
    cluster = LocalCluster(f=1, protocol="marlin", batch_size=ASYNC_BATCH, pipeline=pipeline)
    counts = _count_crypto_work(cluster.crypto)
    async with cluster:
        start = time.perf_counter()
        for wave in range(ASYNC_OPS // ASYNC_BATCH):
            for _ in range(ASYNC_BATCH):
                # No-op payloads: the KV app treats b"" as a no-op, so the
                # benchmark measures consensus, not application execution.
                await cluster.submit(b"", client_id=77)
            await cluster.wait_for_height(wave + 1, timeout=30.0)
        elapsed = time.perf_counter() - start
        blocks = max(cluster.committed_heights())
    return {
        "ops_per_s": ASYNC_OPS / elapsed,
        "share_checks": counts["share_checks"],
        "qc_full_verifies": cluster.crypto.qc_cache_misses,
        "qc_cache_hits": cluster.crypto.qc_cache_hits,
        "blocks": blocks,
    }


def asyncio_before_after() -> tuple[dict, dict]:
    before = asyncio.run(_asyncio_run(None))
    after = asyncio.run(
        asyncio.wait_for(
            _asyncio_run(PipelineConfig(verifier="threads", verifier_workers=4)),
            timeout=120.0,
        )
    )
    rows = [
        [
            label,
            f"{run['ops_per_s']:.0f}",
            str(run["blocks"]),
            str(run["share_checks"]),
            f"{run['share_checks'] / max(run['blocks'], 1):.1f}",
            str(run["qc_full_verifies"]),
            str(run["qc_cache_hits"]),
        ]
        for label, run in (("unbatched", before), ("batched", after))
    ]
    print(
        format_table(
            f"asyncio verification work (marlin, f=1, threshold crypto, {ASYNC_OPS} ops)",
            ["pipeline", "ops/s", "blocks", "share checks", "checks/block",
             "qc verifies", "qc cache hits"],
            rows,
        )
    )
    return before, after


def main() -> int:
    failures = []
    before, after = des_before_after()
    print(f"DES batching throughput delta: {(after.throughput_tps / before.throughput_tps - 1) * 100:+.2f}%")
    print(f"DES batching latency delta:    {(after.mean_latency / before.mean_latency - 1) * 100:+.2f}%")
    if after.throughput_tps < before.throughput_tps:
        failures.append(
            f"batched DES throughput {after.throughput_tps:.0f} tps regressed below "
            f"unbatched {before.throughput_tps:.0f} tps"
        )
    if after.mean_latency > before.mean_latency * 1.02:
        failures.append(
            f"batched DES latency {after.mean_latency * 1000:.1f} ms regressed beyond "
            f"unbatched {before.mean_latency * 1000:.1f} ms + 2%"
        )

    async_before, async_after = asyncio_before_after()
    checks_before = async_before["share_checks"] / max(async_before["blocks"], 1)
    checks_after = async_after["share_checks"] / max(async_after["blocks"], 1)
    print(
        f"asyncio share checks per block: {checks_before:.1f} -> {checks_after:.1f} "
        f"({(checks_after / checks_before - 1) * 100:+.1f}%)"
    )
    print(f"asyncio wall-clock delta (informational): "
          f"{(async_after['ops_per_s'] / async_before['ops_per_s'] - 1) * 100:+.2f}%")
    if checks_after >= checks_before:
        failures.append(
            f"batched runtime did {checks_after:.1f} share checks per block, "
            f"not fewer than unbatched {checks_before:.1f}"
        )

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: batching reduces verification work and does not regress throughput")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
