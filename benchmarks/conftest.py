"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the DES is deterministic, so repetition adds time, not
information.  The interesting output is the printed paper-vs-measured
table plus ``extra_info`` on each benchmark record.
"""

from __future__ import annotations

import os

import pytest

BENCH_JOBS = max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))
"""Worker processes for the sweep-based benchmarks (``REPRO_BENCH_JOBS``).

The default of 1 keeps CI runs serial (and lets the fig10 curves collect
per-phase observability, which is process-local); set e.g.
``REPRO_BENCH_JOBS=4`` locally to fan the independent load points across
four processes.  Results are byte-identical either way.
"""


def pytest_configure(config):
    # Benchmarks live outside the package; make the paper's reference
    # numbers importable everywhere.
    pass


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


# ---------------------------------------------------------------------------
# Paper-reported numbers (DSN 2022, Section VI / Fig. 10)

PAPER_FIG10G_MARLIN = {
    1: 101.27, 2: 89.82, 3: 78.49, 4: 59.91, 5: 44.36,
    6: 36.83, 7: 33.82, 8: 28.83, 9: 26.25, 10: 23.15,
}
PAPER_FIG10G_HOTSTUFF = {
    1: 79.58, 2: 66.83, 3: 62.61, 4: 45.6, 5: 39.16,
    6: 30.29, 7: 28.78, 8: 25.35, 9: 23.84, 10: 20.3,
}
PAPER_FIG10H_MARLIN = {1: 118.39, 2: 104.5, 5: 101.09}
PAPER_FIG10H_HOTSTUFF = {1: 93.23, 2: 78.39, 5: 74.87}
PAPER_FIG10I_MS = {
    ("marlin-happy", 1): 123, ("marlin-happy", 10): 229,
    ("marlin-unhappy", 1): 183, ("marlin-unhappy", 10): 386,
    ("hotstuff", 1): 182, ("hotstuff", 10): 384,
}
PAPER_FIG10J_MARLIN = {0: 86.38, 1: 65.18, 3: 55.18}
PAPER_FIG10J_HOTSTUFF = {0: 65.51, 1: 47.95, 3: 40.18}
