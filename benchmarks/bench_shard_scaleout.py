#!/usr/bin/env python3
"""Shard scale-out benchmark: aggregate throughput vs group count.

Marlin's linearity makes one group O(n) per block; the scale-out claim
is that G independent key-routed groups deliver ~G× the aggregate
committed throughput of one group (LinBFT-style amortization).  This
benchmark measures that curve on the DES runtime and gates it:

* **scale curve** — the same closed-loop offered load *per group*
  (``CLIENTS_PER_GROUP`` tokens) at G ∈ {1, 2, 4} groups of equal size
  (f=1, n=4).  Every group runs with its online auditor armed; the gate
  is ``agg(G=4) >= 3.0 * (1 - tolerance) * agg(G=1)`` with zero auditor
  violations and zero misrouted operations (the workload is routed by
  the deployment's own :class:`~repro.client.router.ShardRouter`, so
  the misroute guards must never fire).
* **per-shard linearity** — a sharded deployment must not change the
  per-group cost shape: at per-group n ∈ {4, 7, 10} (G fixed) each
  group's :class:`~repro.obs.complexity.ComplexityObservatory` attributes
  steady-state consensus bytes and authenticators per committed block,
  and the fitted log-log slope of every group's cost-vs-n curve must
  stay below ``MAX_SLOPE`` (linear ≈ 1, quadratic ≈ 2).

The DES is deterministic, so the committed numbers in
``benchmarks/BENCH_SHARD_SCALEOUT.json`` regenerate byte-identically
(wall-clock time is not recorded); refresh after an intentional
behaviour change with::

    python benchmarks/bench_shard_scaleout.py --write-artifact

Run:  python benchmarks/bench_shard_scaleout.py            (~1 min)
      python benchmarks/bench_shard_scaleout.py --smoke    (CI, ~15 s)
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.harness.report import format_table
from repro.harness.workload import ShardedClosedLoopClients
from repro.obs.complexity import SlopeFit
from repro.shard import ShardConfig, ShardedCluster

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_SHARD_SCALEOUT.json"

#: Closed-loop tokens per group — offered load scales with G so every
#: group sees the same demand regardless of topology.
CLIENTS_PER_GROUP = 256

#: Log-log slope bound below which a per-shard cost curve counts as linear.
MAX_SLOPE = 1.3

#: Required aggregate speedup G=1 → G=4, and the allowed shortfall.
TARGET_SPEEDUP = 3.0
TOLERANCE = 0.10

SCENARIO = {
    "protocol": "marlin",
    "f": 1,
    "router": "hash",
    "router_seed": 0,
    "batch": 400,
    "base_timeout": 120.0,
    "max_timeout": 240.0,
    "seed": 1,
    "crypto": "null",
}


def _experiment(f: int) -> ExperimentConfig:
    config = ClusterConfig.for_f(
        f,
        batch_size=SCENARIO["batch"],
        base_timeout=SCENARIO["base_timeout"],
        max_timeout=SCENARIO["max_timeout"],
    )
    return ExperimentConfig(cluster=config, seed=SCENARIO["seed"])


def scale_point(
    groups: int, clients_per_group: int, warmup: float, sim_time: float
) -> dict[str, Any]:
    """One audited sharded run; aggregate + per-shard committed throughput."""
    shard = ShardConfig(
        shards=groups,
        router=SCENARIO["router"],
        router_seed=SCENARIO["router_seed"],
    )
    sharded = ShardedCluster(
        _experiment(SCENARIO["f"]),
        shard=shard,
        protocol=SCENARIO["protocol"],
        crypto_mode=SCENARIO["crypto"],
        audit=True,
    )
    pool = ShardedClosedLoopClients(
        sharded,
        num_clients=clients_per_group * groups,
        request_size=150,
        reply_size=150,
        warmup=warmup,
    )
    sharded.start()
    sharded.sim.schedule(0.01, pool.start)
    sharded.run(until=sim_time)
    sharded.assert_safety()
    duration = sim_time - warmup
    per_shard = [
        sub.throughput.throughput(duration) if sub is not None else 0.0
        for sub in pool.pools
    ]
    latency = pool.merged_latency()
    return {
        "groups": groups,
        "clients": clients_per_group * groups,
        "aggregate_tps": round(sum(per_shard), 1),
        "per_shard_tps": [round(tps, 1) for tps in per_shard],
        "p50_latency_ms": round(latency.p50() * 1000, 2),
        "p99_latency_ms": round(latency.p99() * 1000, 2),
        "misrouted_rejected": sharded.misrouted_rejected,
        "audit_violations": sharded.audit_violations(),
    }


def complexity_point(
    f: int, groups: int, warmup: float, sim_time: float
) -> list[dict[str, Any]]:
    """Per-group steady-state cost per committed block at per-group size n.

    Mirrors the single-group happy-path instrument in
    :func:`repro.harness.audit.complexity_sweep`: observatories are
    armed at ``warmup``, blocks are counted while armed, and cost is
    consensus traffic divided by committed blocks.
    """
    sharded = ShardedCluster(
        _experiment(f),
        shard=ShardConfig(
            shards=groups,
            router=SCENARIO["router"],
            router_seed=SCENARIO["router_seed"],
        ),
        protocol=SCENARIO["protocol"],
        crypto_mode=SCENARIO["crypto"],
        observe_complexity=True,
    )
    n = sharded.experiment.cluster.num_replicas
    pool = ShardedClosedLoopClients(
        sharded, num_clients=64 * groups, warmup=warmup
    )
    blocks = [0] * groups
    for group in sharded.groups:
        def on_commit(block: Any, when: float, g: Any = group) -> None:
            if g.observatory.armed and block.operations:
                blocks[g.shard_id] += 1

        group.cluster.replicas[1].commit_listeners.append(on_commit)
    sharded.start()
    sharded.sim.schedule(0.01, pool.start)
    sharded.sim.schedule(warmup, sharded.arm_observatories)
    sharded.run(until=sim_time)
    sharded.assert_safety()
    points = []
    for group in sharded.groups:
        rounds = max(blocks[group.shard_id], 1)
        consensus = group.observatory.consensus
        points.append(
            {
                "shard": group.shard_id,
                "n": n,
                "blocks": blocks[group.shard_id],
                "bytes_per_block": round(consensus.bytes / rounds, 1),
                "auths_per_block": round(consensus.authenticators / rounds, 2),
            }
        )
    return points


def fit_per_shard_slopes(
    sizes: list[int], groups: int, warmup: float, sim_time: float
) -> tuple[list[dict[str, Any]], list[SlopeFit]]:
    """Cost-vs-n curves for every shard; one SlopeFit per (shard, metric)."""
    by_size = {
        f: complexity_point(f, groups, warmup, sim_time) for f in sizes
    }
    points = [p for pts in by_size.values() for p in pts]
    fits: list[SlopeFit] = []
    for shard_id in range(groups):
        for metric, key in (
            ("bytes/block", "bytes_per_block"),
            ("authenticators/block", "auths_per_block"),
        ):
            curve = [
                (p["n"], p[key])
                for pts in by_size.values()
                for p in pts
                if p["shard"] == shard_id
            ]
            fits.append(SlopeFit(f"shard {shard_id} {metric}", curve, MAX_SLOPE))
    return points, fits


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="CI mode: shorter runs, scale gate only (skips the slope sweep)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=TOLERANCE,
        help=f"allowed shortfall below the {TARGET_SPEEDUP:.0f}x speedup "
             f"target (fraction, default {TOLERANCE})",
    )
    parser.add_argument(
        "--write-artifact", action="store_true",
        help=f"record results to {ARTIFACT_PATH.name} instead of just gating",
    )
    args = parser.parse_args()

    if args.smoke:
        group_counts = [1, 4]
        clients_per_group, warmup, sim_time = 64, 2.0, 12.0
    else:
        group_counts = [1, 2, 4]
        clients_per_group, warmup, sim_time = CLIENTS_PER_GROUP, 3.0, 30.0

    curve = [
        scale_point(groups, clients_per_group, warmup, sim_time)
        for groups in group_counts
    ]
    rows = [
        [
            str(point["groups"]),
            str(point["clients"]),
            f"{point['aggregate_tps']:,.0f}",
            f"{point['aggregate_tps'] / curve[0]['aggregate_tps']:.2f}x",
            f"{point['p50_latency_ms']:.1f}",
            str(point["misrouted_rejected"]),
            str(point["audit_violations"]),
        ]
        for point in curve
    ]
    print(format_table(
        f"Shard scale-out (marlin, f=1 per group, {clients_per_group} "
        f"clients/group, {sim_time:.0f} sim s)",
        ["G", "clients", "agg tx/s", "speedup", "p50 ms", "misrouted", "violations"],
        rows,
    ))

    failures = []
    speedup = curve[-1]["aggregate_tps"] / curve[0]["aggregate_tps"]
    floor = TARGET_SPEEDUP * (1.0 - args.tolerance)
    print(f"aggregate speedup G=1 -> G={curve[-1]['groups']}: {speedup:.2f}x "
          f"(floor {floor:.2f}x)")
    if speedup < floor:
        failures.append(
            f"aggregate speedup {speedup:.2f}x below the "
            f"{TARGET_SPEEDUP:.0f}x target (floor {floor:.2f}x)"
        )
    for point in curve:
        if point["audit_violations"]:
            failures.append(
                f"G={point['groups']}: {point['audit_violations']} online-audit "
                "violations"
            )
        if point["misrouted_rejected"]:
            failures.append(
                f"G={point['groups']}: router-partitioned workload tripped the "
                f"misroute guard {point['misrouted_rejected']} times"
            )

    slope_fits: list[SlopeFit] = []
    complexity_points: list[dict[str, Any]] = []
    if not args.smoke:
        sizes = [1, 2, 3]  # per-group f -> n in {4, 7, 10}
        complexity_points, slope_fits = fit_per_shard_slopes(
            sizes, groups=4, warmup=2.0, sim_time=8.0
        )
        print()
        for fit in slope_fits:
            print(fit.render())
            if not fit.linear:
                failures.append(
                    f"{fit.metric}: slope {fit.slope:.2f} is not linear "
                    f"(bound {fit.max_slope})"
                )

    if args.write_artifact:
        artifact = {
            "scenario": {
                **SCENARIO,
                "clients_per_group": clients_per_group,
                "warmup": warmup,
                "sim_time": sim_time,
            },
            "scale_curve": curve,
            "speedup_g1_to_g4": round(speedup, 3),
            "per_shard_complexity": complexity_points,
            "slopes": [
                {"metric": fit.metric, "slope": round(fit.slope, 3),
                 "linear": fit.linear}
                for fit in slope_fits
            ],
        }
        ARTIFACT_PATH.write_text(json.dumps(artifact, indent=2) + "\n")
        print(f"\nartifact written to {ARTIFACT_PATH}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("\nall shard scale-out gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
