"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, NetworkProfile
from repro.consensus.block import Operation, genesis_block
from repro.consensus.crypto_service import (
    MultisigCryptoService,
    NullCryptoService,
    ThresholdCryptoService,
)
from repro.crypto.keys import KeyRegistry


@pytest.fixture
def config_f1() -> ClusterConfig:
    return ClusterConfig.for_f(1, batch_size=16, base_timeout=0.5)


@pytest.fixture
def config_f2() -> ClusterConfig:
    return ClusterConfig.for_f(2, batch_size=16, base_timeout=0.5)


@pytest.fixture
def registry_f1() -> KeyRegistry:
    return KeyRegistry(4, 3, seed=b"test-f1")


@pytest.fixture
def threshold_crypto(registry_f1: KeyRegistry) -> ThresholdCryptoService:
    return ThresholdCryptoService(registry_f1)


@pytest.fixture
def multisig_crypto(registry_f1: KeyRegistry) -> MultisigCryptoService:
    return MultisigCryptoService(registry_f1)


@pytest.fixture
def null_crypto() -> NullCryptoService:
    return NullCryptoService(4, 3)


@pytest.fixture
def genesis():
    return genesis_block()


def make_ops(count: int, client: int = 7, size: int = 16, start: int = 0) -> tuple[Operation, ...]:
    return tuple(
        Operation(client_id=client, sequence=start + i, payload=bytes(size))
        for i in range(count)
    )


@pytest.fixture
def fast_experiment() -> ExperimentConfig:
    """A small, fast DES experiment (LAN profile, f=1)."""
    return ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=64, base_timeout=0.5),
        network=NetworkProfile.lan(),
        seed=11,
    )
