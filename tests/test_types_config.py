"""Quorum arithmetic and configuration validation."""

from __future__ import annotations

import pytest

from repro.common.config import (
    ClusterConfig,
    ExperimentConfig,
    MachineProfile,
    NetworkProfile,
)
from repro.common.errors import ConfigError
from repro.common.types import max_faulty, quorum_size, replica_set, validate_bft_size


class TestQuorumMath:
    @pytest.mark.parametrize(
        "n,f", [(4, 1), (5, 1), (6, 1), (7, 2), (10, 3), (31, 10), (91, 30)]
    )
    def test_max_faulty(self, n, f):
        assert max_faulty(n) == f

    @pytest.mark.parametrize("n,q", [(4, 3), (7, 5), (10, 7), (31, 21)])
    def test_quorum(self, n, q):
        assert quorum_size(n) == q

    def test_quorum_intersection_contains_correct_replica(self):
        # Any two quorums intersect in >= f + 1 replicas: the BFT core fact.
        for f in range(1, 12):
            n = 3 * f + 1
            q = quorum_size(n)
            assert 2 * q - n >= f + 1

    def test_replica_set(self):
        assert replica_set(4) == [0, 1, 2, 3]

    def test_replica_set_too_small(self):
        with pytest.raises(ConfigError):
            replica_set(3)

    def test_validate_bft_size(self):
        validate_bft_size(4, 1)
        with pytest.raises(ConfigError):
            validate_bft_size(4, 2)

    def test_max_faulty_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            max_faulty(0)


class TestClusterConfig:
    def test_for_f(self):
        config = ClusterConfig.for_f(3)
        assert config.num_replicas == 10
        assert config.f == 3
        assert config.quorum == 7

    def test_leader_rotation_round_robin(self):
        config = ClusterConfig.for_f(1)
        leaders = [config.leader_of(v) for v in range(1, 9)]
        assert leaders == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_leader_of_view_zero_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig.for_f(1).leader_of(0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_replicas": 3},
            {"num_replicas": 4, "batch_size": 0},
            {"num_replicas": 4, "checkpoint_interval": 0},
            {"num_replicas": 4, "base_timeout": 0},
            {"num_replicas": 4, "timeout_multiplier": 0.5},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ConfigError):
            ClusterConfig(**kwargs)

    def test_for_f_rejects_zero(self):
        with pytest.raises(ConfigError):
            ClusterConfig.for_f(0)


class TestProfiles:
    def test_paper_testbed_values(self):
        net = NetworkProfile.paper_testbed()
        assert net.one_way_latency == pytest.approx(0.040)
        assert net.bandwidth_bps == pytest.approx(200e6)
        assert net.nic_bps == pytest.approx(1e9)

    def test_transmission_delay(self):
        net = NetworkProfile(bandwidth_bps=8e6, jitter=0)
        assert net.transmission_delay(1000) == pytest.approx(1e-3)

    def test_nic_delay(self):
        net = NetworkProfile(nic_bps=8e9)
        assert net.nic_delay(1000) == pytest.approx(1e-6)

    def test_invalid_network(self):
        with pytest.raises(ConfigError):
            NetworkProfile(loss_rate=1.5)
        with pytest.raises(ConfigError):
            NetworkProfile(bandwidth_bps=0)
        with pytest.raises(ConfigError):
            NetworkProfile(one_way_latency=-1)

    def test_machine_db_cost_monotone(self):
        machine = MachineProfile.paper_testbed()
        assert machine.db_write_cost(10_000) > machine.db_write_cost(100)

    def test_machine_rejects_negative(self):
        with pytest.raises(ConfigError):
            MachineProfile(sign_cost=-1.0)

    def test_experiment_defaults(self):
        exp = ExperimentConfig(cluster=ClusterConfig.for_f(1))
        assert exp.request_size == 150
        assert exp.reply_size == 150

    def test_experiment_rejects_negative_sizes(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(cluster=ClusterConfig.for_f(1), request_size=-1)
