"""Property: safety holds under arbitrary message loss.

Hypothesis drives the LocalNet pump with randomly chosen drop decisions;
whatever subset of messages is lost, no two replicas may ever commit
conflicting blocks, and committed prefixes must agree.  (Liveness is NOT
asserted — with unlucky drops nothing commits, which is fine.)
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.consensus.chained import ChainedMarlinReplica
from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.marlin.replica import MarlinReplica

from tests.helpers import LocalNet


def run_with_drops(replica_cls, drop_bits: list[bool], crash_leader: bool) -> LocalNet:
    net = LocalNet(replica_cls, n=4)
    bits = iter(drop_bits)

    def drop(src: int, dst: int, payload) -> bool:
        # Never drop loopback (a replica always hears itself), otherwise
        # consume the hypothesis-provided decision stream.
        if src == dst:
            return False
        return next(bits, False)

    net.start(pump=False)
    net.pump(drop=drop)
    net.submit(0, [b"a", b"b", b"c"])
    net.pump(drop=drop)
    if crash_leader:
        net.crash(0)
    net.timeout_all(pump=False)
    net.pump(drop=drop)
    leader = net.config.leader_of(max(net.views()))
    if leader not in net.crashed:
        net.submit(leader, [b"post"], client=77)
        net.pump(drop=drop)
    return net


def assert_agreement(net: LocalNet) -> None:
    committed = [
        replica.ledger.committed_digests()
        for i, replica in enumerate(net.replicas)
        if i not in net.crashed
    ]
    shortest = min(len(c) for c in committed)
    prefixes = {tuple(c[:shortest]) for c in committed}
    # All committed sequences must be prefixes of one another.
    for chain in committed:
        for other in committed:
            overlap = min(len(chain), len(other))
            assert chain[:overlap] == other[:overlap]
    assert len(prefixes) == 1


@settings(max_examples=40, deadline=None)
@given(
    drop_bits=st.lists(st.booleans(), min_size=0, max_size=400),
    crash_leader=st.booleans(),
)
def test_marlin_safe_under_random_drops(drop_bits, crash_leader):
    net = run_with_drops(MarlinReplica, drop_bits, crash_leader)
    assert_agreement(net)


@settings(max_examples=20, deadline=None)
@given(
    drop_bits=st.lists(st.booleans(), min_size=0, max_size=400),
    crash_leader=st.booleans(),
)
def test_hotstuff_safe_under_random_drops(drop_bits, crash_leader):
    net = run_with_drops(HotStuffReplica, drop_bits, crash_leader)
    assert_agreement(net)


@settings(max_examples=20, deadline=None)
@given(
    drop_bits=st.lists(st.booleans(), min_size=0, max_size=400),
    crash_leader=st.booleans(),
)
def test_chained_marlin_safe_under_random_drops(drop_bits, crash_leader):
    net = run_with_drops(ChainedMarlinReplica, drop_bits, crash_leader)
    assert_agreement(net)
