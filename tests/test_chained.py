"""Chained (pipelined) Marlin and HotStuff."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, NetworkProfile
from repro.consensus.chained import ChainedHotStuffReplica, ChainedMarlinReplica
from repro.consensus.messages import PhaseMsg
from repro.consensus.qc import Phase
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import ClosedLoopClients

from tests.helpers import LocalNet


class TestChainedMarlinLocal:
    def make_net(self) -> LocalNet:
        net = LocalNet(ChainedMarlinReplica, n=4)
        net.start()
        return net

    def test_commits_all_ops(self):
        net = self.make_net()
        net.submit(0, [f"op-{i}".encode() for i in range(24)])
        net.pump()
        heights = net.heights()
        assert len(set(heights)) == 1 and heights[0] >= 3
        assert all(r.ledger.ops_committed == 24 for r in net.replicas)

    def test_fewer_messages_than_event_driven(self):
        from repro.consensus.marlin.replica import MarlinReplica

        chained = self.make_net()
        chained.delivered.clear()
        chained.submit(0, [f"op-{i}".encode() for i in range(24)])
        chained.pump()

        plain = LocalNet(MarlinReplica, n=4)
        plain.start()
        plain.delivered.clear()
        plain.submit(0, [f"op-{i}".encode() for i in range(24)])
        plain.pump()

        assert chained.replicas[0].ledger.ops_committed == 24
        assert plain.replicas[0].ledger.ops_committed == 24
        assert len(chained.delivered) < len(plain.delivered)

    def test_no_commit_broadcast_while_loaded(self):
        """Under continuous load, interior blocks commit by chain rule,
        so COMMIT broadcasts only appear at the flush boundary."""
        net = self.make_net()
        net.submit(0, [f"op-{i}".encode() for i in range(40)])
        net.pump()
        commit_msgs = [
            p
            for src, dst, p in net.delivered
            if isinstance(p, PhaseMsg) and p.phase == Phase.COMMIT and src == 0 and dst == 1
        ]
        blocks = net.replicas[0].ledger.num_committed_blocks
        assert blocks >= 4
        # Far fewer COMMIT rounds than blocks (bootstrap + flush only).
        assert len(commit_msgs) <= 3

    def test_flush_commits_tail_block(self):
        """The last block of a burst still commits (explicit fallback)."""
        net = self.make_net()
        net.submit(0, [b"only-op"])
        net.pump()
        assert all(r.ledger.ops_committed == 1 for r in net.replicas)

    def test_view_change_machinery_inherited(self):
        net = self.make_net()
        net.submit(0, [b"pre-crash"])
        net.pump()
        net.crash(0)
        net.timeout_all()
        net.submit(1, [b"post-crash"], client=60)
        net.pump()
        alive = net.replicas[1:]
        heights = [r.ledger.committed_height for r in alive]
        assert len(set(heights)) == 1
        assert all(r.ledger.ops_committed == 2 for r in alive)


class TestChainedHotStuffLocal:
    def make_net(self) -> LocalNet:
        net = LocalNet(ChainedHotStuffReplica, n=4)
        net.start()
        return net

    def test_commits_all_ops(self):
        net = self.make_net()
        net.submit(0, [f"op-{i}".encode() for i in range(24)])
        net.pump()
        heights = net.heights()
        assert len(set(heights)) == 1 and heights[0] >= 3
        assert all(r.ledger.ops_committed == 24 for r in net.replicas)

    def test_three_chain_lag(self):
        """Chained HotStuff's committed head trails the proposed tip by
        the 3-chain depth while under load; the flush closes the gap."""
        net = self.make_net()
        net.submit(0, [f"op-{i}".encode() for i in range(8)])
        net.pump()
        assert all(r.ledger.ops_committed == 8 for r in net.replicas)

    def test_crash_recovery(self):
        net = self.make_net()
        net.submit(0, [b"pre"])
        net.pump()
        net.crash(0)
        net.timeout_all()
        net.submit(1, [b"post"], client=61)
        net.pump()
        alive = net.replicas[1:]
        assert all(r.ledger.ops_committed == 2 for r in alive)

    def test_chained_commits_lag_behind_marlin(self):
        """2-chain commits beat 3-chain commits for the same burst."""
        marlin = LocalNet(ChainedMarlinReplica, n=4)
        marlin.start()
        hotstuff = LocalNet(ChainedHotStuffReplica, n=4)
        hotstuff.start()
        for net in (marlin, hotstuff):
            net.delivered.clear()
            net.submit(0, [f"op-{i}".encode() for i in range(24)])
            net.pump()
        assert marlin.replicas[0].ledger.ops_committed == 24
        assert hotstuff.replicas[0].ledger.ops_committed == 24
        # Equal work, but HotStuff needed at least as many messages.
        assert len(marlin.delivered) <= len(hotstuff.delivered)


class TestChainedOnDES:
    @pytest.mark.parametrize("protocol", ["chained-marlin", "chained-hotstuff"])
    def test_end_to_end(self, protocol):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.8),
            network=NetworkProfile.lan(),
            seed=21,
        )
        cluster = DESCluster(experiment, protocol=protocol, crypto_mode="threshold")
        pool = ClosedLoopClients(cluster, num_clients=24, token_weight=1)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=5.0)
        cluster.assert_safety()
        assert min(cluster.committed_heights()) > 5
        assert pool.completed_ops > 50

    def test_chained_marlin_latency_beats_chained_hotstuff(self):
        results = {}
        for protocol in ("chained-marlin", "chained-hotstuff"):
            experiment = ExperimentConfig(
                cluster=ClusterConfig.for_f(1, batch_size=400, base_timeout=30.0),
                seed=22,
            )
            cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null")
            pool = ClosedLoopClients(cluster, num_clients=512, token_weight=4, warmup=4.0)
            cluster.start()
            cluster.sim.schedule(0.01, pool.start)
            cluster.run(until=15.0)
            cluster.assert_safety()
            results[protocol] = pool.summary()["mean_latency"]
        assert results["chained-marlin"] < results["chained-hotstuff"]

    def test_leader_crash_on_des(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.5), seed=23
        )
        cluster = DESCluster(experiment, protocol="chained-marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(0, 2.0)
        cluster.run(until=12.0)
        cluster.assert_safety()
        post = [when for rid, _, _, when in cluster.auditor.commits if when > 2.5 and rid != 0]
        assert post
