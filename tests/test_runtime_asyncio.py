"""The asyncio runtime: live event-loop clusters, storage, the KV app."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.app import AppError, KVStateMachine
from repro.runtime.cluster import LocalCluster
from repro.storage.kvstore import KVStore


def run(coro):
    return asyncio.run(coro)


class TestKVStateMachine:
    def _apply(self, app: KVStateMachine, payload: bytes) -> None:
        from repro.consensus.block import Operation, genesis_block

        app.apply(genesis_block(), Operation(client_id=1, sequence=app.applied, payload=payload))

    def test_set_get(self):
        app = KVStateMachine()
        self._apply(app, KVStateMachine.encode_set(b"k", b"v"))
        assert app.get(b"k") == b"v"

    def test_delete(self):
        app = KVStateMachine()
        self._apply(app, KVStateMachine.encode_set(b"k", b"v"))
        self._apply(app, KVStateMachine.encode_delete(b"k"))
        assert app.get(b"k") is None

    def test_add_creates_and_increments(self):
        app = KVStateMachine()
        self._apply(app, KVStateMachine.encode_add(b"acct", 10))
        self._apply(app, KVStateMachine.encode_add(b"acct", -3))
        assert app.balance(b"acct") == 7

    def test_noop_payload(self):
        app = KVStateMachine()
        self._apply(app, b"")
        assert app.applied == 1

    def test_malformed_payload(self):
        app = KVStateMachine()
        with pytest.raises(AppError):
            self._apply(app, b"\xff\xffgarbage")

    def test_unknown_command(self):
        from repro.common.encoding import encode

        app = KVStateMachine()
        with pytest.raises(AppError):
            self._apply(app, encode(["frobnicate", b"x"]))

    def test_state_digest_deterministic(self):
        a, b = KVStateMachine(), KVStateMachine()
        for app in (a, b):
            self._apply(app, KVStateMachine.encode_set(b"k1", b"v1"))
            self._apply(app, KVStateMachine.encode_set(b"k2", b"v2"))
        assert a.state_digest() == b.state_digest()

    def test_persists_to_store(self):
        store = KVStore()
        app = KVStateMachine(store=store)
        self._apply(app, KVStateMachine.encode_set(b"k", b"v"))
        assert store.get(b"app:k") == b"v"


class TestLocalCluster:
    def test_commit_and_agree(self):
        async def main():
            async with LocalCluster(f=1, protocol="marlin", batch_size=8) as cluster:
                for i in range(10):
                    await cluster.submit(KVStateMachine.encode_set(b"k%d" % i, b"v"))
                await cluster.wait_for_height(2, timeout=15)
                digests = cluster.state_digests()
                assert len(set(digests[:3])) == 1

        run(main())

    def test_hotstuff_protocol(self):
        async def main():
            async with LocalCluster(f=1, protocol="hotstuff", batch_size=8) as cluster:
                for i in range(5):
                    await cluster.submit(b"")
                await cluster.wait_for_height(1, timeout=15)

        run(main())

    def test_leader_crash_recovery(self):
        async def main():
            async with LocalCluster(
                f=1, protocol="marlin", batch_size=8, base_timeout=0.4
            ) as cluster:
                await cluster.submit(b"")
                await cluster.wait_for_height(1, timeout=15)
                cluster.crash(0)
                await asyncio.sleep(0.05)
                for i in range(5):
                    await cluster.submit(b"", client_id=11_000)
                before = max(cluster.committed_heights()[1:])
                deadline = asyncio.get_event_loop().time() + 20
                while True:
                    heights = cluster.committed_heights()[1:]
                    if min(heights) > before:
                        break
                    if asyncio.get_event_loop().time() > deadline:
                        raise TimeoutError(f"stuck at {heights}")
                    await cluster.submit(b"", client_id=11_001)
                    await asyncio.sleep(0.05)
                assert all(n.replica.cview >= 2 for n in cluster.nodes[1:])

        run(main())

    def test_network_delay_still_commits(self):
        async def main():
            async with LocalCluster(
                f=1, protocol="marlin", batch_size=8, network_delay=0.005
            ) as cluster:
                for i in range(5):
                    await cluster.submit(b"")
                await cluster.wait_for_height(1, timeout=15)

        run(main())

    def test_persistence_to_disk(self, tmp_path):
        async def main():
            dirs = [str(tmp_path / f"node{i}") for i in range(4)]
            async with LocalCluster(f=1, protocol="marlin", batch_size=4, data_dirs=dirs) as cluster:
                await cluster.submit(KVStateMachine.encode_set(b"durable", b"yes"))
                await cluster.wait_for_height(1, timeout=15)
            # After shutdown, node 1's store still holds the app state.
            reopened = KVStore(directory=dirs[1])
            assert reopened.get(b"app:durable") == b"yes"
            assert reopened.get(b"meta:committed_height") is not None
            reopened.close()

        run(main())

    def test_f2_cluster(self):
        async def main():
            async with LocalCluster(f=2, protocol="marlin", batch_size=8) as cluster:
                for i in range(5):
                    await cluster.submit(b"")
                await cluster.wait_for_height(1, timeout=20)

        run(main())


class TestTcpCluster:
    def test_tcp_transport_commits(self):
        async def main():
            async with LocalCluster(f=1, protocol="marlin", transport="tcp", batch_size=4) as cluster:
                for i in range(4):
                    await cluster.submit(b"")
                await cluster.wait_for_height(1, timeout=20)

        run(main())
