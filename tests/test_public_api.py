"""The public API contract: ``__all__`` resolves, the facade works, and
legacy entry points keep working behind deprecation warnings."""

from __future__ import annotations

import pytest

import repro
import repro.adversary
import repro.api
from repro.api import PipelineConfig, Scenario, load_point, traced_run


class TestAllIsTheContract:
    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_repro_all_resolves(self, name):
        assert hasattr(repro, name), f"repro.__all__ lists {name} but it does not resolve"

    @pytest.mark.parametrize("name", sorted(repro.api.__all__))
    def test_api_all_resolves(self, name):
        assert hasattr(repro.api, name), (
            f"repro.api.__all__ lists {name} but it does not resolve"
        )

    def test_facade_reexports_are_the_same_objects(self):
        assert repro.Scenario is repro.api.Scenario
        assert repro.PipelineConfig is repro.api.PipelineConfig
        assert repro.DESCluster is repro.api.DESCluster
        assert repro.LocalCluster is repro.api.LocalCluster
        assert repro.ShardConfig is repro.api.ShardConfig
        assert repro.ShardedCluster is repro.api.ShardedCluster
        assert repro.AdversaryConfig is repro.api.AdversaryConfig
        assert repro.SafetyChecker is repro.api.SafetyChecker
        assert repro.run_campaign is repro.api.run_campaign

    @pytest.mark.parametrize(
        "name",
        [
            "ADVERSARY_SCENARIOS",
            "AdversaryConfig",
            "AdversaryScenario",
            "BehaviorSpec",
            "CampaignResult",
            "CellResult",
            "SafetyChecker",
            "SafetyReport",
            "apply_adversary",
            "behavior_kinds",
            "run_campaign",
        ],
    )
    def test_adversary_surface_is_public(self, name):
        # Campaign scripts must never need repro.adversary internals:
        # the facade exports the whole subsystem surface.
        assert name in repro.api.__all__
        assert getattr(repro.api, name) is getattr(repro.adversary, name)

    @pytest.mark.parametrize(
        "name",
        [
            "Node",
            "ShardConfig",
            "ShardRouter",
            "ShardedClosedLoopClients",
            "ShardedCluster",
            "ShardedLocalCluster",
            "restart_replica",
            "trigger_state_transfer",
        ],
    )
    def test_topology_and_recovery_surface_is_public(self, name):
        # Churn/scale-out scripts must never need repro.runtime.node or
        # repro.shard internals: the facade exports the whole surface.
        assert name in repro.api.__all__

    def test_recovery_helpers_wrap_the_runtime(self):
        import asyncio
        import inspect

        assert asyncio.iscoroutinefunction(repro.api.restart_replica)
        assert not asyncio.iscoroutinefunction(repro.api.trigger_state_transfer)
        assert list(inspect.signature(repro.api.trigger_state_transfer).parameters) == [
            "cluster",
            "replica_id",
        ]


class TestScenarioFacade:
    def test_scenario_is_keyword_only(self):
        with pytest.raises(TypeError):
            Scenario("marlin")  # positional use is not part of the contract

    def test_scenario_is_frozen(self):
        scenario = Scenario(protocol="marlin")
        with pytest.raises(Exception):
            scenario.f = 2

    def test_load_point_runs(self):
        result = load_point(
            Scenario(protocol="marlin", f=1, clients=16, sim_time=2.0, warmup=0.5)
        )
        assert result.throughput_tps > 0
        assert result.clients == 16

    def test_load_point_with_pipeline_runs(self):
        result = load_point(
            Scenario(
                protocol="marlin", f=1, clients=16, sim_time=2.0, warmup=0.5,
                pipeline=PipelineConfig(),
            )
        )
        assert result.throughput_tps > 0

    def test_validation_errors_name_the_field(self):
        from repro.common.errors import ConfigError

        with pytest.raises(ConfigError, match="Scenario.protocol"):
            Scenario(protocol="paxos")
        with pytest.raises(ConfigError, match="Scenario.clients"):
            Scenario(clients=0)
        with pytest.raises(ConfigError, match="Scenario.crypto"):
            Scenario(crypto="rot13")

    def test_with_overrides_contract(self):
        from repro.common.errors import ConfigError

        base = Scenario(protocol="marlin")
        assert base.with_overrides(f=2).f == 2
        assert base.with_overrides() == base
        with pytest.raises(ConfigError, match="no field"):
            base.with_overrides(protcol="hotstuff")

    def test_traced_run_returns_cluster_and_observability(self):
        cluster, obs = traced_run(
            Scenario(protocol="marlin", f=1, seed=2), sim_time=1.5
        )
        assert cluster.experiment.cluster.num_replicas == 4
        assert obs.tracer.spans


class TestDeprecatedAliases:
    def test_run_load_point_warns_and_delegates(self):
        from repro.harness.scenarios import run_load_point

        with pytest.warns(DeprecationWarning, match="repro.api.load_point"):
            result = run_load_point("marlin", 1, 16, sim_time=2.0, warmup=0.5)
        assert result.throughput_tps > 0

    def test_run_traced_scenario_warns_and_delegates(self):
        from repro.harness.scenarios import run_traced_scenario

        with pytest.warns(DeprecationWarning, match="repro.api.traced_run"):
            _, obs = run_traced_scenario("marlin", f=1, seed=2, sim_time=1.5)
        assert obs.tracer.spans

    def test_throughput_latency_curve_warns_and_delegates(self):
        from repro.harness.scenarios import throughput_latency_curve

        with pytest.warns(DeprecationWarning, match="repro.api.throughput_curve"):
            curve = throughput_latency_curve(
                "marlin", 1, [16], sim_time=2.0, warmup=0.5
            )
        assert len(curve) == 1

    def test_peak_throughput_warns_and_delegates(self):
        from repro.harness.scenarios import peak_throughput

        with pytest.warns(DeprecationWarning, match="repro.api.peak_throughput"):
            peak, curve = peak_throughput(
                "marlin", 1, [16], sim_time=2.0, warmup=0.5
            )
        assert curve and peak >= 0

    def test_new_facade_does_not_warn(self, recwarn):
        load_point(Scenario(protocol="marlin", f=1, clients=16, sim_time=2.0, warmup=0.5))
        assert not [w for w in recwarn if issubclass(w.category, DeprecationWarning)]
