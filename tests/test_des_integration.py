"""End-to-end DES integration: full clusters under the paper's testbed
model, across protocols, crypto schemes and cluster sizes."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, NetworkProfile
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import ClosedLoopClients


def run_cluster(
    protocol: str,
    f: int = 1,
    crypto_mode: str = "threshold",
    clients: int = 24,
    sim_time: float = 6.0,
    seed: int = 5,
    **kwargs,
):
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(f, batch_size=200, base_timeout=0.8), seed=seed
    )
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode=crypto_mode, **kwargs)
    pool = ClosedLoopClients(cluster, num_clients=clients, token_weight=1)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.run(until=sim_time)
    cluster.assert_safety()
    return cluster, pool


class TestProtocolsCommit:
    @pytest.mark.parametrize("protocol", ["marlin", "hotstuff"])
    def test_failure_free_progress(self, protocol):
        cluster, pool = run_cluster(protocol)
        heights = cluster.committed_heights()
        assert min(heights) > 5
        assert max(heights) - min(heights) <= 2  # replicas stay in sync
        assert pool.completed_ops > 100

    @pytest.mark.parametrize("crypto_mode", ["threshold", "multisig", "null"])
    def test_crypto_modes_agree(self, crypto_mode):
        cluster, pool = run_cluster("marlin", crypto_mode=crypto_mode)
        assert min(cluster.committed_heights()) > 5

    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_cluster_sizes(self, f):
        cluster, pool = run_cluster("marlin", f=f, crypto_mode="null", sim_time=5.0)
        assert min(cluster.committed_heights()) > 3

    def test_stable_leader_keeps_view_one(self):
        cluster, _ = run_cluster("marlin")
        assert all(r.cview == 1 for r in cluster.replicas)

    def test_ops_conserved(self):
        """Every acknowledged op was committed, none duplicated."""
        cluster, pool = run_cluster("marlin", clients=16)
        committed = max(r.ledger.ops_committed for r in cluster.replicas)
        assert pool.completed_ops <= committed


class TestCrashRecovery:
    @pytest.mark.parametrize("protocol", ["marlin", "hotstuff"])
    def test_leader_crash_then_progress(self, protocol):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.5), seed=7
        )
        cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(0, 2.0)
        cluster.run(until=12.0)
        cluster.assert_safety()
        alive_heights = [r.ledger.committed_height for r in cluster.replicas[1:]]
        post_crash = [
            when for rid, _, _, when in cluster.auditor.commits if when > 2.5 and rid != 0
        ]
        assert post_crash, f"no commits after the crash (heights {alive_heights})"
        assert all(r.cview >= 2 for r in cluster.replicas[1:])

    def test_non_leader_crash_harmless(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.8), seed=8
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(3, 1.0)
        cluster.run(until=6.0)
        cluster.assert_safety()
        assert all(r.cview == 1 for r in cluster.replicas[:3])
        assert min(r.ledger.committed_height for r in cluster.replicas[:3]) > 5

    def test_two_successive_leader_crashes(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(2, batch_size=200, base_timeout=0.5), seed=9
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(0, 2.0)
        cluster.crash_at(1, 4.0)
        cluster.run(until=15.0)
        cluster.assert_safety()
        alive = cluster.replicas[2:]
        post = [when for rid, _, _, when in cluster.auditor.commits if when > 4.5 and rid >= 2]
        assert post
        heights = [r.ledger.committed_height for r in alive]
        assert max(heights) - min(heights) <= 2


class TestRotation:
    @pytest.mark.parametrize("protocol", ["marlin", "hotstuff"])
    def test_rotating_leaders_progress(self, protocol):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200), seed=10
        )
        cluster = DESCluster(
            experiment,
            protocol=protocol,
            crypto_mode="null",
            rotation_interval=1.0,
            forward_requests=False,
        )
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=8.0)
        cluster.assert_safety()
        assert max(r.cview for r in cluster.replicas) >= 5  # rotations happened
        assert min(cluster.committed_heights()) > 3

    def test_rotation_with_crashed_replica(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200), seed=11
        )
        cluster = DESCluster(
            experiment,
            protocol="marlin",
            crypto_mode="null",
            rotation_interval=1.0,
            forward_requests=False,
        )
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(3, 0.2)
        cluster.run(until=10.0)
        cluster.assert_safety()
        heights = [r.ledger.committed_height for r in cluster.replicas[:3]]
        assert min(heights) > 2


class TestNetworkAdversity:
    def test_progress_with_message_loss(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.4),
            network=NetworkProfile(
                one_way_latency=0.01, bandwidth_bps=1e9, nic_bps=1e10, jitter=0.002, loss_rate=0.02
            ),
            seed=12,
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=8, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=20.0)
        cluster.assert_safety()
        assert min(cluster.committed_heights()) > 1

    def test_partition_heals(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.5), seed=13
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=8, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        # Isolate the leader for a while; a view change must occur, then
        # the healed partition rejoins.
        cluster.sim.schedule(2.0, lambda: cluster.network.partition([0], [1, 2, 3]))
        cluster.sim.schedule(6.0, cluster.network.heal_all)
        cluster.run(until=16.0)
        cluster.assert_safety()
        alive = [r.ledger.committed_height for r in cluster.replicas[1:]]
        assert min(alive) > 1
        assert all(r.cview >= 2 for r in cluster.replicas[1:])
