"""The adversary subsystem: behaviours, scenarios, checker, campaigns.

Four layers under test:

1. **determinism** — every randomised behaviour draws from a private
   ``strategy_rng`` stream, so adversarial runs replay bit-identically;
2. **registry** — every behaviour kind builds, bad declarations fail
   loudly, behaviours on one replica compose in declaration order;
3. **checker** — each safety rule trips on a synthetically corrupted
   history and stays quiet on a clean one;
4. **negative controls** — the forking attack wedges the deliberately
   unsafe two-phase protocol (with evidence) while Marlin, HotStuff and
   Fast-HotStuff survive the identical adversary, and a campaign's
   verdict matrix is byte-identical across ``jobs`` settings.
"""

from __future__ import annotations

import pytest

from repro.adversary import (
    ADVERSARY_SCENARIOS,
    AdversaryConfig,
    BehaviorSpec,
    CrashEvent,
    PartitionWindow,
    SafetyChecker,
    apply_adversary,
    behavior_kinds,
    get_scenario,
    list_scenarios,
    run_campaign,
)
from repro.adversary.behaviors import BEHAVIOR_KINDS
from repro.adversary.campaign import (
    VERDICT_DETECTED,
    VERDICT_MISSED,
    VERDICT_SAFE,
    VERDICT_UNEXPECTED,
    _eval_cell,
    _judge,
)
from repro.common.config import ClusterConfig, ExperimentConfig, QuorumConfig
from repro.common.errors import ConfigError
from repro.harness.des_runtime import DESCluster
from repro.harness.failures import ComposedStrategy, strategy_rng
from repro.harness.workload import ClosedLoopClients


def small_cluster(seed: int = 1, learners: int = 0, **quorum_kwargs):
    experiment = ExperimentConfig(
        cluster=ClusterConfig(
            num_replicas=4,
            batch_size=400,
            base_timeout=0.5,
            quorums=(
                QuorumConfig(learners=learners, **quorum_kwargs)
                if learners or quorum_kwargs
                else None
            ),
        ),
        seed=seed,
    )
    return DESCluster(experiment, protocol="marlin", crypto_mode="null")


def d(byte: int) -> bytes:
    return bytes([byte]) * 32


# ---------------------------------------------------------------------------
# 1. Seeded determinism


class TestStrategyRNG:
    def test_same_key_replays_identically(self):
        a = strategy_rng(7, "gray", 1)
        b = strategy_rng(7, "gray", 1)
        assert [a.random() for _ in range(16)] == [b.random() for _ in range(16)]

    @pytest.mark.parametrize(
        "other",
        [(8, "gray", 1), (7, "delay", 1), (7, "gray", 2)],
        ids=["seed", "kind", "replica"],
    )
    def test_streams_are_private_per_key(self, other):
        base = strategy_rng(7, "gray", 1)
        changed = strategy_rng(*other)
        assert [base.random() for _ in range(4)] != [
            changed.random() for _ in range(4)
        ]

    def test_randomised_adversary_run_is_reproducible(self):
        """Two gray-failure runs from one seed are byte-identical: the
        commit-trace hash (and the whole checker report) must match."""
        task = {"scenario": "gray-failure", "protocol": "marlin", "seed": 3,
                "sim_time": 5.0}
        first = _eval_cell(dict(task))
        second = _eval_cell(dict(task))
        assert first == second
        assert first["trace_sha256"] == second["trace_sha256"]
        assert first["committed_height"] > 0


# ---------------------------------------------------------------------------
# 2. Registry and declarations


class TestBehaviorRegistry:
    def test_registry_lists_every_kind(self):
        kinds = behavior_kinds()
        assert sorted(kinds) == sorted(BEHAVIOR_KINDS)
        assert {
            "delay",
            "equivocate",
            "forking-leader",
            "gray",
            "qc-hide",
            "vc-lag",
        } <= set(kinds)
        assert all(summary for summary in kinds.values())

    def test_every_kind_builds_a_strategy(self):
        cluster = small_cluster()
        for name, kind in sorted(BEHAVIOR_KINDS.items()):
            strategy = kind.build(cluster, 1, strategy_rng(1, name, 1), {})
            assert callable(strategy.outbound), name

    def test_unknown_kind_is_rejected(self):
        config = AdversaryConfig(behaviors=(BehaviorSpec.make("nope", 0),))
        with pytest.raises(ValueError, match="unknown behavior kind 'nope'"):
            apply_adversary(small_cluster(), config)

    def test_out_of_range_replica_is_rejected(self):
        config = AdversaryConfig(behaviors=(BehaviorSpec.make("delay", 4),))
        with pytest.raises(ValueError, match="replica 4"):
            apply_adversary(small_cluster(), config)

    def test_spec_params_are_canonical_and_hashable(self):
        a = BehaviorSpec.make("gray", 1, slow_p=0.3, drop_p=0.1)
        b = BehaviorSpec.make("gray", 1, drop_p=0.1, slow_p=0.3)
        assert a == b and hash(a) == hash(b)
        assert a.params_dict == {"drop_p": 0.1, "slow_p": 0.3}
        config = AdversaryConfig(
            behaviors=(a, BehaviorSpec.make("delay", 3)),
            partitions=(PartitionWindow(1.0, 0.5, (2,)),),
            crashes=(CrashEvent(replica=0, when=5.0),),
        )
        hash(config)
        assert config.faulty_replicas() == (1, 3)

    def test_composition_applies_in_declaration_order(self):
        class Tag:
            def __init__(self, tag):
                self.tag = tag

            def outbound(self, now, dst, payload, send):
                send(dst, payload + (self.tag,))

        sent: list[tuple] = []
        composed = ComposedStrategy([Tag("a"), Tag("b")])
        composed.outbound(0.0, 2, (), lambda dst, payload: sent.append(payload))
        # The first declared strategy sees the raw payload; its output is
        # then subject to the second.
        assert sent == [("a", "b")]


class TestScenarioLibrary:
    def test_library_contents(self):
        assert sorted(ADVERSARY_SCENARIOS) == [
            "amnesia",
            "crash-churn",
            "equivocating-leader",
            "equivocation-under-partition",
            "forking-attack",
            "gray-failure",
            "qc-suppression",
        ]
        assert list_scenarios() == {
            name: scenario.summary
            for name, scenario in sorted(ADVERSARY_SCENARIOS.items())
        }

    def test_unknown_scenario_names_the_known_ones(self):
        with pytest.raises(ValueError, match="forking-attack"):
            get_scenario("nope")

    @pytest.mark.parametrize("name", sorted(ADVERSARY_SCENARIOS))
    def test_every_scenario_installs_on_a_minimal_cluster(self, name):
        scenario = get_scenario(name)
        assert scenario.min_replicas <= 4
        apply_adversary(small_cluster(), scenario.adversary)

    def test_only_the_forking_attack_expects_a_violation(self):
        for name, scenario in ADVERSARY_SCENARIOS.items():
            for protocol in ("marlin", "hotstuff", "fast-hotstuff"):
                assert not scenario.expects_violation(protocol), (name, protocol)
        forking = get_scenario("forking-attack")
        assert forking.expects_violation("insecure")
        assert forking.check_progress
        assert not get_scenario("gray-failure").check_progress


# ---------------------------------------------------------------------------
# 3. The checker, on synthetic histories


def chain(*digests: bytes) -> list[tuple[int, bytes, bytes | None]]:
    history = []
    prev = None
    for height, digest in enumerate(digests, start=1):
        history.append((height, digest, prev))
        prev = digest
    return history


class TestSafetyChecker:
    def setup_method(self):
        self.checker = SafetyChecker(num_replicas=4)

    def test_f_defaults_to_the_paper_bound(self):
        assert self.checker.f == 1
        assert SafetyChecker(num_replicas=10, f=2).f == 2

    def test_clean_history_passes_every_rule(self):
        histories = {r: chain(d(1), d(2), d(3)) for r in range(4)}
        executions = {r: [(1, 0), (1, 1), (2, 0)] for r in range(4)}
        replies = [(1, 0, r, d(9)) for r in range(4)]
        report = self.checker.check_history(
            histories, executions=executions, replies=replies
        )
        assert report.ok
        assert report.kinds() == []
        assert report.checks_run == ["agreement", "prefix", "exactly-once", "replies"]

    def test_conflicting_commit_names_height_and_replicas(self):
        histories = {
            0: chain(d(1), d(2)),
            1: chain(d(1), d(2)),
            2: chain(d(1), d(7)),
        }
        report = self.checker.check_history(histories)
        assert report.kinds() == ["conflicting-commit"]
        (violation,) = report.violations
        assert violation["evidence"]["height"] == 2
        assert sorted(
            replicas
            for replicas in violation["evidence"]["digests"].values()
        ) == [[0, 1], [2]]

    def test_height_gap_breaks_the_chain(self):
        histories = {0: [(1, d(1), None), (3, d(3), d(1))]}
        report = self.checker.check_history(histories)
        assert report.kinds() == ["broken-chain"]

    def test_wrong_parent_breaks_the_chain(self):
        histories = {0: [(1, d(1), None), (2, d(2), d(7))]}
        report = self.checker.check_history(histories)
        assert report.kinds() == ["broken-chain"]

    def test_duplicate_execution_carries_a_sample(self):
        executions = {2: [(1, 0), (1, 0), (3, 5)]}
        (violation,) = self.checker.check_exactly_once(executions)
        assert violation["kind"] == "duplicate-execution"
        assert violation["evidence"] == {"replica": 2, "sample": [[1, 0]]}

    def test_two_certifiable_reply_digests_is_a_violation(self):
        replies = [
            (1, 0, 0, d(9)),
            (1, 0, 1, d(9)),
            (1, 0, 2, d(8)),
            (1, 0, 3, d(8)),
        ]
        (violation,) = self.checker.check_replies(replies)
        assert violation["kind"] == "conflicting-reply-certificates"

    def test_one_liar_cannot_forge_a_reply_violation(self):
        # f = 1: a lone divergent digest never reaches the f + 1 bar.
        replies = [
            (1, 0, 0, d(9)),
            (1, 0, 1, d(9)),
            (1, 0, 2, d(9)),
            (1, 0, 3, d(8)),
        ]
        assert self.checker.check_replies(replies) == []

    def test_progress_rules(self):
        healthy = {0: 10, 1: 10, 2: 10, 3: 9}
        violations, summary = self.checker.check_progress(
            healthy, last_commit_time=9.5, end_time=10.0, stall_after=2.0
        )
        assert violations == [] and not summary["stalled"]

        violations, summary = self.checker.check_progress(
            healthy, last_commit_time=5.0, end_time=10.0, stall_after=2.0
        )
        assert summary["stalled"]
        assert violations[0]["kind"] == "progress-stall"

        violations, _ = self.checker.check_progress(
            {r: 0 for r in range(4)},
            last_commit_time=0.0,
            end_time=10.0,
            stall_after=20.0,
        )
        assert violations[0]["kind"] == "progress-stall"
        assert "no block ever committed" in violations[0]["detail"]


# ---------------------------------------------------------------------------
# 4. Negative controls: the forking attack, end to end


class TestForkingAttackControls:
    def test_insecure_two_phase_wedges_with_evidence(self):
        cell = _eval_cell(
            {"scenario": "forking-attack", "protocol": "insecure", "seed": 1,
             "sim_time": 8.0}
        )
        report = cell["report"]
        assert not report["ok"]
        kinds = {v["kind"] for v in report["violations"]}
        assert "progress-stall" in kinds
        # The wedge sits right above the healthy pre-fork prefix.
        assert 1 <= cell["committed_height"] <= 3
        assert cell["max_view"] > 2  # it kept rotating leaders, fruitlessly
        (stall,) = [v for v in report["violations"] if v["kind"] == "progress-stall"]
        assert stall["evidence"]["committed_heights"]

    @pytest.mark.parametrize("protocol", ["marlin", "hotstuff", "fast-hotstuff"])
    def test_safe_protocols_survive_the_same_adversary(self, protocol):
        cell = _eval_cell(
            {"scenario": "forking-attack", "protocol": protocol, "seed": 1,
             "sim_time": 8.0}
        )
        report = cell["report"]
        assert report["ok"], report["violations"]
        assert cell["committed_height"] > 5  # recovered and kept committing
        assert cell["max_view"] >= 2  # the attack did force a view change


class TestCampaignJudging:
    def _cell(self, ok: bool) -> dict:
        return {
            "scenario": "s",
            "protocol": "p",
            "seed": 1,
            "committed_height": 5,
            "max_view": 1,
            "trace_sha256": "x",
            "report": {
                "ok": ok,
                "violations": [] if ok else [{"kind": "progress-stall"}],
                "observations": [],
            },
        }

    @pytest.mark.parametrize(
        "ok, expected, verdict",
        [
            (True, False, VERDICT_SAFE),
            (False, True, VERDICT_DETECTED),
            (True, True, VERDICT_MISSED),
            (False, False, VERDICT_UNEXPECTED),
        ],
    )
    def test_verdict_matrix(self, ok, expected, verdict):
        cell = _judge(self._cell(ok), expected=expected)
        assert cell.verdict == verdict
        assert cell.violation_kinds == (() if ok else ("progress-stall",))

    def test_campaign_fails_on_missed_or_unexpected(self):
        from repro.adversary.campaign import CampaignResult

        safe = _judge(self._cell(True), expected=False)
        missed = _judge(self._cell(True), expected=True)
        assert CampaignResult(cells=[safe]).ok
        result = CampaignResult(cells=[safe, missed])
        assert not result.ok
        assert "FAILED" in result.render()
        summary = result.to_dict()["summary"]
        assert summary == {
            "total": 2,
            "safe": 1,
            "violation-detected": 0,
            "violation-missed": 1,
            "unexpected-violation": 0,
        }


class TestCampaignDeterminism:
    def test_verdict_matrix_is_identical_across_jobs(self):
        kwargs = dict(
            scenarios=["equivocating-leader"],
            protocols=("marlin",),
            seeds=(1, 2),
            sim_time=5.0,
        )
        serial = run_campaign(jobs=1, **kwargs)
        parallel = run_campaign(jobs=2, **kwargs)
        assert serial.ok and parallel.ok
        assert serial.to_dict(include_reports=True) == parallel.to_dict(
            include_reports=True
        )
        assert [c.verdict for c in serial.cells] == [VERDICT_SAFE, VERDICT_SAFE]


# ---------------------------------------------------------------------------
# 5. Flexible quorums: learner replicas


class TestLearnerThreshold:
    def _run(self, learner_commit_quorum=None, crash=None, until=6.0):
        cluster = small_cluster(
            seed=2,
            learners=1,
            **(
                {"learner_commit_quorum": learner_commit_quorum}
                if learner_commit_quorum
                else {}
            ),
        )
        if crash is not None:
            cluster.crash_at(*crash)
        pool = ClosedLoopClients(cluster, num_clients=24, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=until)
        return cluster

    def test_learner_follows_the_committed_chain(self):
        cluster = self._run()
        learner = cluster.replicas[4]
        voters = cluster.replicas[:4]
        assert learner.protocol_name == "learner"
        assert learner.ledger.committed_height > 0
        assert learner.ledger.committed_height <= max(
            v.ledger.committed_height for v in voters
        )
        # Agreement + prefix checks hold with the learner's history included.
        report = SafetyChecker(num_replicas=4).check_cluster(cluster)
        assert report.ok, report.violations

    def test_learner_freezes_when_echo_quorum_is_unreachable(self):
        # Demanding all 4 voters' echoes, then crashing one: the voting
        # cluster keeps committing (n - f = 3) but the learner can never
        # again assemble its threshold and freezes — safely behind, never
        # wrong.
        cluster = self._run(learner_commit_quorum=4, crash=(3, 3.0), until=8.0)
        learner = cluster.replicas[4]
        voters = cluster.replicas[:3]
        frozen_at = learner.ledger.committed_height
        assert frozen_at > 0  # it kept up while all voters were alive
        assert frozen_at < min(v.ledger.committed_height for v in voters)
        report = SafetyChecker(num_replicas=4).check_cluster(cluster)
        assert report.ok, report.violations


# ---------------------------------------------------------------------------
# 6. The Scenario facade carries adversaries


class TestScenarioAdversary:
    def test_named_adversary_is_validated_eagerly(self):
        from repro.api import Scenario

        Scenario(protocol="marlin", f=1, adversary="gray-failure")
        with pytest.raises(ConfigError, match="adversary"):
            Scenario(protocol="marlin", f=1, adversary="nope")
        with pytest.raises(ConfigError):
            Scenario(protocol="marlin", f=1, adversary=42)  # type: ignore[arg-type]

    def test_inline_adversary_config_is_accepted(self):
        from repro.api import Scenario

        config = AdversaryConfig(
            behaviors=(BehaviorSpec.make("delay", 1, delay=0.05),)
        )
        scenario = Scenario(protocol="marlin", f=1, adversary=config)
        assert scenario.adversary is config

    def test_load_point_runs_under_an_adversary(self):
        from repro.api import Scenario, load_point

        point = load_point(
            Scenario(
                protocol="marlin",
                f=1,
                clients=32,
                sim_time=4.0,
                warmup=1.0,
                adversary=AdversaryConfig(
                    behaviors=(BehaviorSpec.make("delay", 1, delay=0.02),)
                ),
            )
        )
        assert point.throughput_tps > 0
