"""View-change Cases V3 and R3 (paper Fig. 8c / Fig. 9).

Case V3 arises when a previous view change died after forming *two*
pre-prepareQCs of equal rank (one for a normal block, one for a virtual
block — only possible because replicas may vote for both shadow
proposals).  The next leader cannot know which one some correct replica
prepare-voted (and locked under), so it extends *both*, again as shadow
blocks.  Case R3 is the matching replica rule: a replica locked on one of
the candidates votes for the proposal extending its locked block.
"""

from __future__ import annotations

import pytest

from repro.consensus.block import Block
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import Justify, PrePrepareMsg, ViewChangeMsg, VoteMsg
from repro.consensus.qc import BlockSummary, Phase
from repro.consensus.rank import compare_qc_rank, Rank

from tests.helpers import LocalNet, forge_qc


@pytest.fixture
def scenario():
    """A view-2 pre-prepare that produced two equal-rank ppQCs, then a
    view change into view 3 (leader r2)."""
    net = LocalNet(MarlinReplica, n=4)
    net.start()
    net.submit(0, [b"base"])
    net.pump()
    crypto = net.crypto
    qc_b1 = net.replicas[1].locked_qc  # prepareQC(h=1, view 1)

    # The view-2 leader's (hypothetical) V1 shadow proposals:
    normal = Block(
        parent_link=qc_b1.block.digest,
        parent_view=qc_b1.block.view,
        view=2,
        height=2,
        operations=(),
        justify_digest=qc_b1.digest,
        proposer=1,
    )
    virtual = Block(
        parent_link=None,
        parent_view=qc_b1.view,
        view=2,
        height=3,
        operations=(),
        justify_digest=qc_b1.digest,
        proposer=1,
    )
    normal_summary = BlockSummary.of(normal, justify_in_view=False)
    virtual_summary = BlockSummary.of(virtual, justify_in_view=False)
    ppqc_normal = forge_qc(crypto, Phase.PRE_PREPARE, 2, normal_summary)
    ppqc_virtual = forge_qc(crypto, Phase.PRE_PREPARE, 2, virtual_summary)
    # The virtual candidate's composite justify needs the vc for its
    # parent: here the parent is the *normal* candidate's parent b1, one
    # height below the virtual block (height 2 = 3 - 1)... i.e. the block
    # certified by a prepareQC at the virtual's parent view.  Forge it.
    b2_summary = BlockSummary(
        digest=normal.digest,  # the height-2 sibling doubles as the vc target
        view=2,
        height=2,
        parent_view=qc_b1.block.view,
        justify_in_view=False,
    )
    vc = forge_qc(crypto, Phase.PREPARE, qc_b1.view, BlockSummary(
        digest=normal.digest, view=1, height=2, parent_view=1, justify_in_view=True,
    ))
    # Move everyone to view 3 quietly.
    for _ in range(2):
        net.timeout_all(pump=False)
        for ctx in net.contexts:
            ctx.drain()
    assert all(v == 3 for v in net.views())
    return net, qc_b1, normal, virtual, ppqc_normal, ppqc_virtual, vc


def _vc_msg(net, src: int, view: int, lb: BlockSummary, justify: Justify) -> ViewChangeMsg:
    share = net.crypto.sign_vote(src, Phase.PREPARE, view, lb)
    return ViewChangeMsg(view=view, last_voted=lb, justify=justify, share=share)


class TestLeaderCaseV3:
    def test_two_ppqcs_trigger_v3_shadow_proposals(self, scenario):
        net, qc_b1, normal, virtual, ppqc_n, ppqc_v, vc = scenario
        leader = net.replicas[2]
        net.replicas[2].tree.add(normal)
        lb = qc_b1.block
        # Equal-rank check first (rank rule b/c: two same-view ppQCs tie).
        assert compare_qc_rank(ppqc_n, ppqc_v) is Rank.EQUAL
        leader.on_message(2, _vc_msg(net, 2, 3, BlockSummary.of(normal, justify_in_view=False), Justify(ppqc_n)))
        leader.on_message(3, _vc_msg(net, 3, 3, BlockSummary.of(virtual, justify_in_view=False), Justify(ppqc_v, vc)))
        leader.on_message(0, _vc_msg(net, 0, 3, lb, Justify(qc_b1)))
        assert leader.stats["case_v3"] == 1
        msg = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        assert len(msg.proposals) == 2 and msg.shadow
        parents = {p.block.parent_link for p in msg.proposals}
        assert parents == {ppqc_n.block.digest, ppqc_v.block.digest}
        # The proposal extending the virtual candidate carries (qc, vc).
        virtual_prop = next(
            p for p in msg.proposals if p.block.parent_link == ppqc_v.block.digest
        )
        assert virtual_prop.justify.is_composite
        assert virtual_prop.justify.vc == vc

    def test_single_ppqc_is_case_v2(self, scenario):
        net, qc_b1, normal, virtual, ppqc_n, ppqc_v, vc = scenario
        leader = net.replicas[2]
        lb = qc_b1.block
        leader.on_message(2, _vc_msg(net, 2, 3, BlockSummary.of(normal, justify_in_view=False), Justify(ppqc_n)))
        leader.on_message(3, _vc_msg(net, 3, 3, lb, Justify(qc_b1)))
        leader.on_message(0, _vc_msg(net, 0, 3, lb, Justify(qc_b1)))
        assert leader.stats["case_v2"] == 1
        msg = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        assert len(msg.proposals) == 1
        assert msg.proposals[0].block.parent_link == ppqc_n.block.digest


class TestReplicaCaseR3:
    def test_locked_replica_votes_for_its_candidate(self, scenario):
        """A replica locked on prepareQC(normal-candidate) votes R3 for
        the V3 proposal extending it, and refuses the other."""
        net, qc_b1, normal, virtual, ppqc_n, ppqc_v, vc = scenario
        crypto = net.crypto
        leader = net.replicas[2]
        replica = net.replicas[1]
        # replica locked on a prepareQC for the normal candidate (it saw
        # view 2 reach the prepare phase before dying).
        normal_prep_summary = BlockSummary.of(normal, justify_in_view=False)
        lock = forge_qc(crypto, Phase.PREPARE, 2, normal_prep_summary)
        replica.locked_qc = lock
        replica.last_voted = normal_prep_summary
        replica.tree.add(normal)
        # Leader assembles V3.
        lb = qc_b1.block
        leader.on_message(2, _vc_msg(net, 2, 3, BlockSummary.of(normal, justify_in_view=False), Justify(ppqc_n)))
        leader.on_message(3, _vc_msg(net, 3, 3, BlockSummary.of(virtual, justify_in_view=False), Justify(ppqc_v, vc)))
        leader.on_message(0, _vc_msg(net, 0, 3, lb, Justify(qc_b1)))
        msg = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        replica.ctx.drain()
        replica.on_message(2, msg)
        votes = [p for _, p in replica.ctx.outbox if isinstance(p, VoteMsg)]
        # Exactly one vote: R3 for the proposal extending block(lock).
        assert len(votes) == 1
        assert replica.stats["votes_r3"] == 1
        voted = votes[0].block
        assert voted.height == normal.height + 1

    def test_unlocked_replica_votes_both_v3_proposals(self, scenario):
        net, qc_b1, normal, virtual, ppqc_n, ppqc_v, vc = scenario
        leader = net.replicas[2]
        replica = net.replicas[3]
        lb = qc_b1.block
        leader.on_message(2, _vc_msg(net, 2, 3, BlockSummary.of(normal, justify_in_view=False), Justify(ppqc_n)))
        leader.on_message(3, _vc_msg(net, 3, 3, BlockSummary.of(virtual, justify_in_view=False), Justify(ppqc_v, vc)))
        leader.on_message(0, _vc_msg(net, 0, 3, lb, Justify(qc_b1)))
        msg = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        replica.ctx.drain()
        replica.on_message(2, msg)
        votes = [p for _, p in replica.ctx.outbox if isinstance(p, VoteMsg)]
        # R1 applies to both (rank(ppqc) >= rank(locked prepareQC@view1)).
        assert len(votes) == 2
