"""The process-parallel sharded engine is byte-identical to the serial one.

Three engines must agree on a G=4 sharded run:

* the serial :class:`~repro.shard.ShardedCluster` (one shared simulator);
* the decomposed engine hosting every group in-process (``jobs=1``);
* the decomposed engine across spawn worker processes (``jobs=4``),
  with and without forced lookahead barriers.

"Agree" means byte-identity: commit-trace SHA-256, per-group simulator
event counts, merged latency samples, journey blobs and the waterfall
reconciliation — not approximate equality.  The suite runs the spawn
paths sparingly (worker boot costs real seconds) and leans on the
``jobs=1`` path, which exercises the identical worker-host code.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict

import pytest

from repro.api import Scenario, latency_breakdown, load_point
from repro.common.config import ClusterConfig, ExperimentConfig
from repro.common.encoding import encode
from repro.common.errors import ConfigError
from repro.des.parallel import ParallelShardedCluster
from repro.harness.workload import ShardedClosedLoopClients
from repro.shard.cluster import ShardedCluster
from repro.shard.config import ShardConfig


def _experiment(seed: int = 7) -> ExperimentConfig:
    return ExperimentConfig(
        cluster=ClusterConfig.for_f(1, base_timeout=120.0, max_timeout=240.0),
        seed=seed,
    )


def _shard(seed: int = 7) -> ShardConfig:
    return ShardConfig(shards=4, router_seed=seed)


def trace_sha(trace: list) -> str:
    return hashlib.sha256(encode(trace)).hexdigest()


def run_serial(protocol: str, seed: int = 7):
    sharded = ShardedCluster(
        _experiment(seed), shard=_shard(seed), protocol=protocol, crypto_mode="null"
    )
    pool = ShardedClosedLoopClients(
        sharded, num_clients=64, token_weight=1, warmup=1.0
    )
    sharded.start()
    sharded.sim.schedule(0.01, pool.start)
    sharded.run(until=5.0)
    sharded.assert_safety()
    return sharded, pool


def run_parallel(
    protocol: str, jobs: int, seed: int = 7, lookahead: float | None = None
) -> ParallelShardedCluster:
    engine = ParallelShardedCluster(
        _experiment(seed),
        shard=_shard(seed),
        protocol=protocol,
        crypto_mode="null",
        jobs=jobs,
        lookahead=lookahead,
    )
    engine.run_workload(num_clients=64, sim_time=5.0, token_weight=1, warmup=1.0)
    return engine


class TestSerialEquivalence:
    """Decomposed jobs=1 engine vs the classic shared-simulator engine."""

    @pytest.mark.parametrize("protocol", ["marlin", "hotstuff", "fast-hotstuff"])
    def test_commit_trace_matches_serial(self, protocol):
        sharded, pool = run_serial(protocol)
        engine = run_parallel(protocol, jobs=1)
        assert trace_sha(engine.commit_trace()) == trace_sha(sharded.commit_trace())
        assert engine.total_ops_committed() == sharded.total_ops_committed()
        assert engine.blocks_committed == sum(
            max(r.stats["blocks_committed"] for r in group.cluster.replicas)
            for group in sharded.groups
        )

    def test_latency_samples_match_serial(self):
        sharded, pool = run_serial("marlin")
        engine = run_parallel("marlin", jobs=1)
        assert (
            engine.merged_latency(window_start=1.0).samples
            == pool.merged_latency().samples
        )


class TestProcessEquivalence:
    """Spawn workers (jobs=4) vs the in-process decomposed run (jobs=1)."""

    @pytest.mark.parametrize("protocol", ["marlin", "hotstuff", "fast-hotstuff"])
    def test_jobs4_matches_jobs1(self, protocol):
        one = run_parallel(protocol, jobs=1)
        four = run_parallel(protocol, jobs=4)
        assert four.per_group_events() == one.per_group_events()
        assert trace_sha(four.commit_trace()) == trace_sha(one.commit_trace())
        assert four.merged_latency().samples == one.merged_latency().samples

    def test_windowed_run_changes_nothing(self):
        # Forcing ~20 lookahead barriers must not perturb a single event:
        # the window mechanism is pure pacing, never reordering.
        free = run_parallel("marlin", jobs=1)
        windowed = run_parallel("marlin", jobs=1, lookahead=0.25)
        assert windowed.windows_run > 1
        assert free.windows_run == 1
        assert windowed.per_group_events() == free.per_group_events()
        assert trace_sha(windowed.commit_trace()) == trace_sha(free.commit_trace())

    def test_excess_jobs_clamped_to_groups(self):
        engine = ParallelShardedCluster(
            _experiment(), shard=_shard(), crypto_mode="null", jobs=64
        )
        assert engine.jobs == 4


class TestScenarioWiring:
    """`Scenario(des_jobs=...)` reaches the engine through the facade."""

    def test_load_point_byte_identical(self):
        base = Scenario(
            protocol="marlin", f=1, clients=64, sim_time=5.0, warmup=1.0,
            shards=4, seed=3,
        )
        serial = load_point(base)
        parallel = load_point(base.with_overrides(des_jobs=4))
        assert asdict(parallel) == asdict(serial)
        assert parallel.shards == 4
        assert parallel.per_shard_tps is not None

    def test_waterfall_reconciliation_matches(self):
        base = Scenario(
            protocol="marlin", f=1, clients=64, sim_time=5.0, warmup=1.0,
            shards=4, seed=3,
        )
        serial, serial_journey = latency_breakdown(base, sample_rate=1.0)
        parallel, parallel_journey = latency_breakdown(
            base.with_overrides(des_jobs=4), sample_rate=1.0
        )
        assert parallel.waterfall == serial.waterfall
        assert sorted(parallel_journey._events.items()) == sorted(
            serial_journey._events.items()
        )

    def test_des_jobs_requires_sharding(self):
        with pytest.raises(ConfigError):
            Scenario(des_jobs=4)
        with pytest.raises(ConfigError):
            Scenario(des_jobs=0, shards=4)
        # The engine enforces the same invariant below the facade.
        with pytest.raises(ConfigError):
            ParallelShardedCluster(_experiment(), shard=ShardConfig(shards=1))


# ---------------------------------------------------------------------------
# The cross-shard event bus (the lookahead machinery proper)


def ring_handler(port, src_shard, payload) -> None:
    """Token ring: forward the token to the next group until it dies."""
    hops = payload["hops"]
    if hops > 0:
        port.emit((port.shard_id + 1) % 4, {"hops": hops - 1}, delay=0.05)


class TestCrossShardBus:
    def run_ring(self, jobs: int) -> ParallelShardedCluster:
        engine = ParallelShardedCluster(
            _experiment(),
            shard=_shard(),
            crypto_mode="null",
            jobs=jobs,
            lookahead=0.05,
            bus_handler="tests.test_des_parallel.ring_handler",
            bus_seed=((0.5, -1, 0, {"hops": 12}),),
        )
        engine.run_workload(num_clients=64, sim_time=5.0, token_weight=1, warmup=1.0)
        return engine

    def test_ring_deterministic_across_jobs(self):
        one = self.run_ring(jobs=1)
        four = self.run_ring(jobs=4)
        assert one.windows_run > 1
        assert four.per_group_events() == one.per_group_events()
        assert trace_sha(four.commit_trace()) == trace_sha(one.commit_trace())

    def test_bus_events_reach_every_group(self):
        # 12 hops from group 0 visit all four groups three times; each
        # hop is one extra "xshard" event on the target group's sim.
        quiet = run_parallel("marlin", jobs=1)
        ringed = self.run_ring(jobs=1)
        extra = {
            gid: ringed.per_group_events()[gid] - quiet.per_group_events()[gid]
            for gid in range(4)
        }
        # 13 token landings round the ring (hops 12 down to 0): group 0
        # sees the seed plus hops 8, 4 and 0; groups 1-3 see 3 each.
        assert extra == {0: 4, 1: 3, 2: 3, 3: 3}

    def test_bus_seed_requires_handler(self):
        with pytest.raises(ConfigError):
            ParallelShardedCluster(
                _experiment(),
                shard=_shard(),
                bus_seed=((0.5, -1, 0, {"hops": 1}),),
            )
