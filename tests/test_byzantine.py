"""Adversarial behaviours: equivocation, forgery, replay — safety holds."""

from __future__ import annotations

import pytest

from repro.common.errors import SafetyViolation
from repro.consensus.block import Block
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import Justify, PhaseMsg, VoteMsg
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate

from tests.helpers import LocalNet


def booted() -> LocalNet:
    net = LocalNet(MarlinReplica, n=4)
    net.start()
    net.submit(0, [b"seed"])
    net.pump()
    return net


class TestEquivocatingLeader:
    def test_two_conflicting_proposals_cannot_both_commit(self):
        """An equivocating leader sends different blocks to different
        replicas at the same height; at most one can ever gather a
        quorum, so commits never conflict."""
        net = booted()
        leader = net.replicas[0]
        qc = leader.high_qc.qc
        blocks = []
        for salt in (1, 2):
            blocks.append(
                Block(
                    parent_link=qc.block.digest,
                    parent_view=qc.block.view,
                    view=1,
                    height=qc.block.height + 1,
                    operations=(),
                    justify_digest=qc.digest,
                    proposer=salt,
                )
            )
        # Replica 1 and 2 see block A; replica 3 sees block B.
        for dst, block in [(1, blocks[0]), (2, blocks[0]), (3, blocks[1])]:
            net.replicas[dst].on_message(
                0, PhaseMsg(phase=Phase.PREPARE, view=1, justify=Justify(qc), block=block)
            )
        net.pump()
        # Votes: A has 2 (< quorum without the leader), B has 1.
        committed = [r.ledger.committed_height for r in net.replicas[1:]]
        assert all(h == qc.block.height for h in committed)

    def test_auditor_trips_on_conflicting_commit(self):
        from repro.harness.invariants import CommitAuditor
        from repro.consensus.block import genesis_block, make_child
        from repro.crypto.hashing import digest_of

        auditor = CommitAuditor(4)
        genesis = genesis_block()
        a = make_child(genesis, 1, (), digest_of("qa"))
        b = make_child(genesis, 1, (), digest_of("qb"))
        auditor.observe(0, a, 1.0)
        with pytest.raises(SafetyViolation):
            auditor.observe(1, b, 1.1)


class TestForgery:
    def test_qc_with_insufficient_votes_rejected(self):
        net = booted()
        replica = net.replicas[1]
        target = BlockSummary(
            digest=b"\x11" * 32, view=1, height=9, parent_view=1, justify_in_view=True
        )
        # Only f votes — combine() itself refuses, so fabricate by abusing
        # a genesis-style None signature instead.
        fake = QuorumCertificate(phase=Phase.PREPARE, view=1, block=target, signature=None)
        assert not net.crypto.qc_is_valid(fake)
        votes_before = replica.stats["votes_sent"]
        replica.on_message(0, PhaseMsg(phase=Phase.COMMIT, view=1, justify=Justify(fake)))
        assert replica.stats["votes_sent"] == votes_before

    def test_reused_signature_on_other_block_rejected(self):
        net = booted()
        replica = net.replicas[1]
        real = replica.locked_qc
        other = BlockSummary(
            digest=b"\x22" * 32,
            view=real.view,
            height=real.block.height,
            parent_view=real.block.parent_view,
            justify_in_view=True,
        )
        grafted = QuorumCertificate(
            phase=real.phase, view=real.view, block=other, signature=real.signature
        )
        assert not net.crypto.qc_is_valid(grafted)

    def test_vote_from_wrong_signer_not_counted(self):
        net = booted()
        leader = net.replicas[0]
        block = leader.high_qc.qc.block
        share = net.crypto.sign_vote(2, Phase.COMMIT, 1, block)
        before = leader.collector.votes_for(Phase.COMMIT, 1, block.digest)
        leader.on_message(1, VoteMsg(phase=Phase.COMMIT, view=1, block=block, share=share))
        assert leader.collector.votes_for(Phase.COMMIT, 1, block.digest) == before


class TestReplay:
    def test_replayed_decide_is_idempotent(self):
        net = booted()
        replica = net.replicas[1]
        decides = [
            p
            for _, dst, p in net.delivered
            if isinstance(p, PhaseMsg) and p.phase == Phase.DECIDE and dst == 1
        ]
        assert decides
        height_before = replica.ledger.committed_height
        ops_before = replica.ledger.ops_committed
        for _ in range(3):
            replica.on_message(0, decides[-1])
        assert replica.ledger.committed_height == height_before
        assert replica.ledger.ops_committed == ops_before

    def test_old_view_commit_ignored(self):
        net = booted()
        net.crash(0)
        net.timeout_all()
        replica = net.replicas[2]
        # A COMMIT from the deposed leader's view must not be voted.
        old_commits = [
            p
            for src, dst, p in net.delivered
            if isinstance(p, PhaseMsg) and p.phase == Phase.COMMIT and p.view == 1
        ]
        votes_before = replica.stats["votes_sent"]
        if old_commits:
            replica.on_message(0, old_commits[-1])
        assert replica.stats["votes_sent"] == votes_before


class TestByzantineShareInQuorum:
    def test_bad_share_cannot_poison_qc(self):
        """A Byzantine replica submits a garbage share; the leader's QC
        still forms from honest shares and verifies."""
        from repro.crypto.threshold import PartialSignature

        net = booted()
        leader = net.replicas[0]
        block = leader.high_qc.qc.block
        garbage = PartialSignature(signer=3, value=424242)
        before = leader.collector.votes_for(Phase.COMMIT, 1, block.digest)
        leader.on_message(3, VoteMsg(phase=Phase.COMMIT, view=1, block=block, share=garbage))
        # Rejected at verification; never enters the accumulator.
        assert leader.collector.votes_for(Phase.COMMIT, 1, block.digest) == before
