"""Edge paths: catch-up, stalled virtual QCs, justify validation, helpers."""

from __future__ import annotations

import pytest

from repro.consensus.block import Block
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import Justify, PhaseMsg, VoteMsg
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate

from tests.helpers import LocalNet, forge_qc


def booted() -> LocalNet:
    net = LocalNet(MarlinReplica, n=4)
    net.start()
    net.submit(0, [b"x"])
    net.pump()
    return net


class TestCatchUp:
    def test_lagging_replica_jumps_on_valid_qc(self):
        """A replica stuck in view 1 adopts view 3 when shown a QC formed
        there (e.g. a COMMIT whose prepareQC has formation view 3)."""
        net = booted()
        replica = net.replicas[3]
        assert replica.cview == 1
        summary = BlockSummary(
            digest=b"\x01" * 32, view=3, height=5, parent_view=3, justify_in_view=True
        )
        qc3 = forge_qc(net.crypto, Phase.PREPARE, 3, summary)
        replica.on_message(2, PhaseMsg(phase=Phase.COMMIT, view=3, justify=Justify(qc3)))
        assert replica.cview == 3

    def test_no_jump_on_unproven_view(self):
        """A message claiming a high view with only an old QC is ignored."""
        net = booted()
        replica = net.replicas[3]
        old_qc = replica.locked_qc  # formation view 1
        replica.on_message(
            2, PhaseMsg(phase=Phase.COMMIT, view=9, justify=Justify(old_qc))
        )
        assert replica.cview == 1

    def test_no_jump_on_forged_qc(self):
        net = booted()
        replica = net.replicas[3]
        summary = BlockSummary(
            digest=b"\x02" * 32, view=5, height=9, parent_view=5, justify_in_view=True
        )
        forged = QuorumCertificate(
            phase=Phase.PREPARE, view=5, block=summary, signature=None
        )
        replica.on_message(0, PhaseMsg(phase=Phase.COMMIT, view=5, justify=Justify(forged)))
        assert replica.cview == 1


class TestStalledVirtualQC:
    def test_virtual_ppqc_waits_for_vc_then_proceeds(self):
        """A leader holding only a virtual pre-prepareQC cannot start the
        prepare phase until a matching vc arrives via an R2 vote."""
        net = booted()
        leader = net.replicas[2]
        leader._advance_view(3)
        leader._pre_prepare_started.add(3)
        leader._leader_ready = False
        base_qc = net.replicas[1].locked_qc  # prepareQC h=1 view 1
        virtual = Block(
            parent_link=None,
            parent_view=base_qc.view,
            view=3,
            height=base_qc.block.height + 2,
            operations=(),
            justify_digest=base_qc.digest,
            proposer=2,
        )
        virtual_summary = BlockSummary.of(virtual, justify_in_view=False)
        leader.tree.add(virtual)
        ppqc = forge_qc(net.crypto, Phase.PRE_PREPARE, 3, virtual_summary)
        leader._pending_ppqcs.setdefault(3, []).append(ppqc)
        leader._try_start_prepare(3)
        assert not leader._leader_ready  # stalled: no vc yet
        # The missing vc arrives attached to a (late) R2 vote.
        parent_summary = BlockSummary(
            digest=b"\x03" * 32,
            view=1,
            height=base_qc.block.height + 1,
            parent_view=1,
            justify_in_view=True,
        )
        vc = forge_qc(net.crypto, Phase.PREPARE, base_qc.view, parent_summary)
        leader._offer_vc_candidate(3, vc)
        leader._try_start_prepare(3)
        assert leader._leader_ready
        assert leader.high_qc.is_composite
        assert leader.high_qc.vc == vc

    def test_mismatched_vc_not_accepted(self):
        net = booted()
        leader = net.replicas[2]
        leader._advance_view(3)
        leader._leader_ready = False
        base_qc = net.replicas[1].locked_qc
        virtual = Block(
            parent_link=None,
            parent_view=base_qc.view,
            view=3,
            height=base_qc.block.height + 2,
            operations=(),
            justify_digest=base_qc.digest,
            proposer=2,
        )
        leader.tree.add(virtual)
        ppqc = forge_qc(
            net.crypto, Phase.PRE_PREPARE, 3, BlockSummary.of(virtual, justify_in_view=False)
        )
        leader._pending_ppqcs.setdefault(3, []).append(ppqc)
        # vc at the WRONG height (equal to the virtual, not height - 1).
        wrong = forge_qc(
            net.crypto,
            Phase.PREPARE,
            base_qc.view,
            BlockSummary(
                digest=b"\x04" * 32,
                view=1,
                height=virtual.height,
                parent_view=1,
                justify_in_view=True,
            ),
        )
        leader._offer_vc_candidate(3, wrong)
        leader._try_start_prepare(3)
        assert not leader._leader_ready


class TestJustifyValidation:
    def _replica(self):
        return booted().replicas[1]

    def test_rejects_justify_formed_at_or_after_view(self):
        net = booted()
        replica = net.replicas[1]
        qc = replica.locked_qc  # formation view 1
        assert not replica._validate_justify(Justify(qc), before_view=1)
        assert replica._validate_justify(Justify(qc), before_view=2)

    def test_rejects_composite_with_non_virtual_qc(self):
        net = booted()
        replica = net.replicas[1]
        normal_qc = replica.locked_qc
        ppqc = forge_qc(
            net.crypto,
            Phase.PRE_PREPARE,
            1,
            BlockSummary(
                digest=b"\x05" * 32, view=1, height=2, parent_view=1, is_virtual=False,
                justify_in_view=False,
            ),
        )
        assert not replica._validate_justify(Justify(ppqc, normal_qc), before_view=2)

    def test_rejects_none(self):
        net = booted()
        assert not net.replicas[1]._validate_justify(None, before_view=2)


class TestLeaderVoteFiltering:
    def test_non_leader_ignores_votes(self):
        net = booted()
        replica = net.replicas[2]  # not the leader of view 1
        block = replica.locked_qc.block
        share = net.crypto.sign_vote(1, Phase.COMMIT, 1, block)
        replica.on_message(1, VoteMsg(phase=Phase.COMMIT, view=1, block=block, share=share))
        assert replica.collector.votes_for(Phase.COMMIT, 1, block.digest) == 0


class TestHarnessHelpers:
    def test_run_until_predicate(self, fast_experiment):
        from repro.harness.des_runtime import DESCluster
        from repro.harness.workload import ClosedLoopClients

        cluster = DESCluster(fast_experiment, protocol="marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=8, token_weight=1)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        reached = cluster.run_until(
            lambda: min(cluster.committed_heights()) >= 3, deadline=10.0
        )
        assert reached
        assert min(cluster.committed_heights()) >= 3
        assert cluster.sim.now < 10.0

    def test_run_until_deadline(self, fast_experiment):
        from repro.harness.des_runtime import DESCluster

        cluster = DESCluster(fast_experiment, protocol="marlin", crypto_mode="null")
        cluster.start()
        reached = cluster.run_until(lambda: False, deadline=0.3)
        assert not reached

    def test_add_commit_listener(self, fast_experiment):
        from repro.harness.des_runtime import DESCluster, add_commit_listener
        from repro.harness.workload import ClosedLoopClients

        cluster = DESCluster(fast_experiment, protocol="marlin", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=8, token_weight=1)
        seen: list[tuple[int, int]] = []
        add_commit_listener(cluster, lambda rid, block, when: seen.append((rid, block.height)))
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=2.0)
        assert seen
        assert {rid for rid, _ in seen} == {0, 1, 2, 3}

    def test_leader_replica_tracks_view(self, fast_experiment):
        from repro.harness.des_runtime import DESCluster

        cluster = DESCluster(fast_experiment, protocol="marlin", crypto_mode="null")
        cluster.start()
        cluster.run(until=0.1)  # before any view timeout fires
        assert cluster.leader_replica.id == 0
        cluster.replicas[1]._advance_view(3)
        assert cluster.leader_replica.id == 2

    def test_unknown_protocol_rejected(self, fast_experiment):
        from repro.common.errors import ConfigError
        from repro.harness.des_runtime import DESCluster

        with pytest.raises(ConfigError):
            DESCluster(fast_experiment, protocol="raft")

    def test_unknown_crypto_rejected(self, fast_experiment):
        from repro.common.errors import ConfigError
        from repro.harness.des_runtime import DESCluster

        with pytest.raises(ConfigError):
            DESCluster(fast_experiment, crypto_mode="rsa")
