"""Block tree traversal, virtual resolution, and ledger safety."""

from __future__ import annotations

import pytest

from repro.common.errors import SafetyViolation
from repro.consensus.block import Block, Operation, genesis_block, make_child
from repro.consensus.blocktree import BlockTree
from repro.consensus.ledger import Ledger
from repro.crypto.hashing import digest_of


def op(seq: int, weight: int = 1) -> Operation:
    return Operation(client_id=1, sequence=seq, payload=b"p", weight=weight)


def chain(tree: BlockTree, length: int, view: int = 1) -> list[Block]:
    blocks = []
    parent = tree.genesis
    for i in range(length):
        block = make_child(parent, view, (op(i),), digest_of(["qc", i]))
        tree.add(block)
        blocks.append(block)
        parent = block
    return blocks


class TestTree:
    def test_branch_to_genesis(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 3)
        branch = list(tree.branch(blocks[-1]))
        assert [b.height for b in branch] == [3, 2, 1, 0]

    def test_extends_self_and_ancestors(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 3)
        assert tree.extends(blocks[2], blocks[0].digest)
        assert tree.extends(blocks[2], blocks[2].digest)
        assert tree.extends(blocks[2], tree.genesis.digest)

    def test_conflicting_forks(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0),), digest_of("qa"))
        b = make_child(tree.genesis, 2, (op(1),), digest_of("qb"))
        tree.add(a)
        tree.add(b)
        assert tree.conflicts(a, b)
        assert not tree.conflicts(a, a)

    def test_missing_ancestor_detection(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0),), digest_of("qa"))
        b = make_child(a, 1, (op(1),), digest_of("qb"))
        tree.add(b)  # a was never added
        assert tree.missing_ancestor(b) == a.digest
        tree.add(a)
        assert tree.missing_ancestor(b) is None

    def test_virtual_resolution(self):
        tree = BlockTree(genesis_block())
        parent = make_child(tree.genesis, 1, (op(0),), digest_of("qp"))
        tree.add(parent)
        virtual = Block(
            parent_link=None,
            parent_view=1,
            view=2,
            height=2,
            operations=(op(1),),
            justify_digest=digest_of("qv"),
        )
        tree.add(virtual)
        assert tree.missing_ancestor(virtual) == virtual.digest
        tree.resolve_virtual_parent(virtual.digest, parent.digest)
        assert tree.parent(virtual) == parent
        assert tree.extends(virtual, tree.genesis.digest)

    def test_path_between(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 4)
        path = tree.path_between(blocks[0].digest, blocks[3])
        assert [b.height for b in path] == [2, 3, 4]
        assert tree.path_between(blocks[3].digest, blocks[3]) == []

    def test_path_between_missing_ancestor(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0),), digest_of("qa"))
        tree.add(a)
        other = make_child(tree.genesis, 2, (op(1),), digest_of("qb"))
        assert tree.path_between(other.digest, a) is None

    def test_prune_keep(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 5)
        dropped = tree.prune_keep({blocks[4].digest, blocks[3].digest})
        assert dropped == 3
        assert blocks[4].digest in tree
        assert blocks[0].digest not in tree

    def test_add_idempotent(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0),), digest_of("qa"))
        tree.add(a)
        tree.add(a)
        assert len(tree) == 2


class TestLedger:
    def test_commit_chain_in_order(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 3)
        executed: list[int] = []
        ledger = Ledger(tree, on_execute=lambda b, o: executed.append(o.sequence))
        committed = ledger.commit(blocks[2])
        assert [b.height for b in committed] == [1, 2, 3]
        assert executed == [0, 1, 2]
        assert ledger.committed_height == 3
        assert ledger.ops_committed == 3

    def test_idempotent_commit(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 2)
        ledger = Ledger(tree)
        ledger.commit(blocks[1])
        assert ledger.commit(blocks[1]) == []
        assert ledger.committed_height == 2

    def test_partial_then_full(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 4)
        ledger = Ledger(tree)
        ledger.commit(blocks[1])
        committed = ledger.commit(blocks[3])
        assert [b.height for b in committed] == [3, 4]

    def test_conflicting_commit_raises(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0),), digest_of("qa"))
        b = make_child(tree.genesis, 2, (op(1),), digest_of("qb"))
        tree.add(a)
        tree.add(b)
        ledger = Ledger(tree)
        ledger.commit(a)
        with pytest.raises(SafetyViolation):
            ledger.commit(b)

    def test_gap_raises_value_error(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0),), digest_of("qa"))
        b = make_child(a, 1, (op(1),), digest_of("qb"))
        tree.add(b)  # a missing
        ledger = Ledger(tree)
        assert not ledger.can_commit(b)
        with pytest.raises(ValueError):
            ledger.commit(b)

    def test_exactly_once_execution(self):
        tree = BlockTree(genesis_block())
        duplicate = op(7)
        a = make_child(tree.genesis, 1, (duplicate,), digest_of("qa"))
        b = make_child(a, 1, (duplicate, op(8)), digest_of("qb"))
        tree.add(a)
        tree.add(b)
        executed: list[int] = []
        ledger = Ledger(tree, on_execute=lambda blk, o: executed.append(o.sequence))
        ledger.commit(b)
        assert executed == [7, 8]
        assert ledger.ops_committed == 2

    def test_weighted_ops_counted(self):
        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (op(0, weight=10),), digest_of("qa"))
        tree.add(a)
        ledger = Ledger(tree)
        ledger.commit(a)
        assert ledger.ops_committed == 10

    def test_commit_block_callback(self):
        tree = BlockTree(genesis_block())
        blocks = chain(tree, 2)
        seen: list[int] = []
        ledger = Ledger(tree, on_commit_block=lambda b: seen.append(b.height))
        ledger.commit(blocks[1])
        assert seen == [1, 2]

    def test_virtual_block_commit_after_resolution(self):
        tree = BlockTree(genesis_block())
        parent = make_child(tree.genesis, 1, (op(0),), digest_of("qp"))
        tree.add(parent)
        virtual = Block(
            parent_link=None,
            parent_view=1,
            view=2,
            height=2,
            operations=(op(1),),
            justify_digest=digest_of("qv"),
        )
        tree.add(virtual)
        ledger = Ledger(tree)
        assert not ledger.can_commit(virtual)
        tree.resolve_virtual_parent(virtual.digest, parent.digest)
        committed = ledger.commit(virtual)
        assert [b.height for b in committed] == [1, 2]
