"""The Section IV-B demonstration: two-phase HotStuff without Marlin's
pre-prepare phase loses liveness on an unsafe view-change snapshot, while
Marlin recovers from the *identical* scenario.

Scenario (the paper's Fig. 2b/2c, four replicas r0..r3, leader of view 1
is r0, leader of view 2 is r1):

* view 1 commits b1; the leader r0 then proposes b2;
* ``prepareQC(b2)`` forms (votes from r0, r1, r3 — r2 never sees b2), but
  the COMMIT carrying it reaches **only r3**, which locks on it;
* r0 turns Byzantine: it withholds all votes and, in every view change,
  sends a forged VIEW-CHANGE that *hides* its b2 QC (claiming lb = b1);
* the adversary delays r3's VIEW-CHANGE messages, so every new leader
  collects the unsafe snapshot {r0(lying), r1, r2}.

Under the insecure protocol each new leader re-extends b1; r3 is locked
higher and refuses; with r0 withholding, the quorum of three is
unreachable — forever.  Marlin's PRE-PREPARE broadcast reaches r3, which
answers with Case R2 (vote for the virtual block + ship its lockedQC),
and the system commits again.
"""

from __future__ import annotations

from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import Justify, PhaseMsg, ViewChangeMsg, VoteMsg
from repro.consensus.qc import Phase
from repro.consensus.twophase_insecure import TwoPhaseInsecureReplica

from tests.helpers import LocalNet

LOCKED = 3  # the replica that ends up locked on b2's prepareQC
HIDDEN = 2  # the replica that never sees b2 at all
BYZ = 0  # the old leader, turning vote-withholder + QC-hider


def build_unsafe_snapshot_scenario(replica_cls) -> LocalNet:
    """Drive the cluster into the Fig. 2 state for either protocol."""
    net = LocalNet(replica_cls, n=4)
    net.start()
    net.submit(0, [b"b1-payload"])
    net.pump()
    heights = net.heights()
    assert len(set(heights)) == 1 and heights[0] >= 1
    net.b1_height = heights[0]
    net.b2_height = net.b1_height + 1
    b2_height = net.b2_height

    net.submit(0, [b"b2-payload"], client=60)

    def shape_b2_traffic(src: int, dst: int, payload) -> bool:
        # b2's proposal never reaches HIDDEN.
        if (
            isinstance(payload, PhaseMsg)
            and payload.phase == Phase.PREPARE
            and payload.block is not None
            and payload.block.height == b2_height
        ):
            return dst == HIDDEN
        # The COMMIT carrying prepareQC(b2) reaches only LOCKED.
        if (
            isinstance(payload, PhaseMsg)
            and payload.phase == Phase.COMMIT
            and payload.justify.qc.block.height == b2_height
        ):
            return dst != LOCKED
        # Nothing further for b2 completes.
        if (
            isinstance(payload, VoteMsg)
            and payload.phase == Phase.COMMIT
            and payload.block.height == b2_height
        ):
            return True
        return False

    net.pump(drop=shape_b2_traffic)
    assert net.replicas[LOCKED].locked_qc.block.height == b2_height
    assert net.replicas[1].locked_qc.block.height == net.b1_height
    assert net.replicas[HIDDEN].locked_qc.block.height == net.b1_height
    # Remember honest pre-view-change state for the forged VC.
    net.qc_b1 = net.replicas[1].locked_qc
    # r0 now withholds everything (crash == silence in LocalNet).
    net.crash(BYZ)
    return net


def adversary_drop(src: int, dst: int, payload) -> bool:
    """Delay the locked replica's VIEW-CHANGE messages indefinitely."""
    return isinstance(payload, ViewChangeMsg) and src == LOCKED


def inject_forged_vc(net: LocalNet, view: int) -> None:
    """r0's Byzantine VIEW-CHANGE: claims lb = b1, hides the b2 QC."""
    leader = net.replicas[net.config.leader_of(view)]
    lb = net.qc_b1.block
    forged = ViewChangeMsg(
        view=view,
        last_voted=lb,
        justify=Justify(net.qc_b1),
        share=net.crypto.sign_vote(BYZ, Phase.PREPARE, view, lb),
    )
    leader.on_message(BYZ, forged)


def advance_one_view(net: LocalNet) -> None:
    net.timeout_all(pump=False)
    view = max(net.views())
    inject_forged_vc(net, view)
    net.pump(drop=adversary_drop)


class TestInsecureProtocolStalls:
    def test_unsafe_snapshot_blocks_progress_forever(self):
        net = build_unsafe_snapshot_scenario(TwoPhaseInsecureReplica)
        heights_before = [r.ledger.committed_height for r in net.replicas[1:]]
        for _ in range(4):
            advance_one_view(net)
            leader_id = net.config.leader_of(max(net.views()))
            if leader_id != BYZ:
                net.submit(leader_id, [b"stuck"], client=70 + max(net.views()))
                net.pump(drop=adversary_drop)
        heights_after = [r.ledger.committed_height for r in net.replicas[1:]]
        assert heights_after == heights_before, "insecure protocol must stall"
        assert net.replicas[LOCKED].locked_qc.block.height == net.b2_height

    def test_locked_replica_refuses_reextension(self):
        net = build_unsafe_snapshot_scenario(TwoPhaseInsecureReplica)
        votes_before = net.replicas[LOCKED].stats["votes_sent"]
        advance_one_view(net)
        assert net.replicas[LOCKED].stats["votes_sent"] == votes_before


class TestMarlinRecovers:
    def test_same_scenario_commits_via_virtual_block(self):
        net = build_unsafe_snapshot_scenario(MarlinReplica)
        advance_one_view(net)
        alive = net.replicas[1:]
        heights = [r.ledger.committed_height for r in alive]
        # Marlin commits past the stuck point: b2 (resurfaced through the
        # R2 vc) and the virtual block above it.
        assert min(heights) >= net.b2_height, f"Marlin failed to recover: {heights}"
        new_leader = net.replicas[1]
        assert new_leader.stats["case_v1"] == 1

    def test_r2_vote_carries_locked_qc(self):
        net = build_unsafe_snapshot_scenario(MarlinReplica)
        net.delivered.clear()
        advance_one_view(net)
        assert net.replicas[LOCKED].stats["votes_r2"] == 1
        r2_votes = [
            p
            for src, _, p in net.delivered
            if isinstance(p, VoteMsg) and src == LOCKED and p.locked_qc is not None
        ]
        assert r2_votes and r2_votes[0].locked_qc.block.height == net.b2_height

    def test_committed_chains_agree_after_recovery(self):
        net = build_unsafe_snapshot_scenario(MarlinReplica)
        advance_one_view(net)
        length = min(len(r.ledger.committed_digests()) for r in net.replicas[1:])
        digests = [tuple(r.ledger.committed_digests()[:length]) for r in net.replicas[1:]]
        assert len(set(digests)) == 1

    def test_recovery_continues_normally(self):
        net = build_unsafe_snapshot_scenario(MarlinReplica)
        advance_one_view(net)
        leader_id = net.config.leader_of(max(net.views()))
        net.submit(leader_id, [b"onwards"], client=90)
        net.pump(drop=adversary_drop)
        heights = [r.ledger.committed_height for r in net.replicas[1:]]
        assert min(heights) > net.b2_height
