"""Block store persistence and the checkpoint/GC manager."""

from __future__ import annotations

import pytest

from repro.common.errors import StorageError
from repro.consensus.block import genesis_block, make_child
from repro.crypto.hashing import digest_of
from repro.storage.blockstore import BlockStore
from repro.storage.checkpoint import CheckpointManager
from repro.storage.kvstore import KVStore


def build_chain(store: BlockStore, length: int):
    blocks = [genesis_block()]
    store.add(blocks[0])
    for i in range(length):
        child = make_child(blocks[-1], 1, (), digest_of(["qc", i]))
        store.add(child)
        blocks.append(child)
    return blocks


class TestBlockStore:
    def test_add_get(self):
        store = BlockStore()
        blocks = build_chain(store, 3)
        assert store.get(blocks[2].digest) == blocks[2]
        assert blocks[2].digest in store
        assert len(store) == 4

    def test_add_idempotent(self):
        store = BlockStore()
        g = genesis_block()
        store.add(g)
        store.add(g)
        assert len(store) == 1

    def test_parent_traversal(self):
        store = BlockStore()
        blocks = build_chain(store, 3)
        chain = list(store.chain_to_genesis(blocks[3]))
        assert [b.height for b in chain] == [3, 2, 1, 0]

    def test_is_ancestor(self):
        store = BlockStore()
        blocks = build_chain(store, 3)
        assert store.is_ancestor(blocks[1].digest, blocks[3])
        assert not store.is_ancestor(blocks[3].digest, blocks[1])

    def test_prune(self):
        store = BlockStore()
        blocks = build_chain(store, 5)
        dropped = store.prune_below({blocks[5].digest, blocks[4].digest})
        assert dropped == 4
        assert blocks[5].digest in store
        assert blocks[1].digest not in store

    def test_persistence_via_kv(self):
        kv = KVStore()
        store = BlockStore(kv=kv, serializer=lambda b: digest_of([b.height]))
        blocks = build_chain(store, 2)
        assert kv.get(b"block:" + blocks[1].digest) is not None
        store.prune_below(set())
        assert kv.get(b"block:" + blocks[1].digest) is None

    def test_kv_requires_serializer(self):
        with pytest.raises(StorageError):
            BlockStore(kv=KVStore())


class TestCheckpointManager:
    def test_runs_every_interval(self):
        store = BlockStore()
        blocks = build_chain(store, 12)
        manager = CheckpointManager(interval=5, blockstore=store, keep_window=3)
        ran = [manager.on_commit(b, b.height) for b in blocks[1:]]
        assert ran.count(True) == 2
        assert manager.checkpoints_taken == 2
        assert manager.last_checkpoint_height == 10

    def test_prunes_history(self):
        store = BlockStore()
        blocks = build_chain(store, 10)
        manager = CheckpointManager(interval=10, blockstore=store, keep_window=3)
        for b in blocks[1:]:
            manager.on_commit(b, b.height)
        # Only the keep_window newest blocks survive.
        assert len(store) == 3
        assert blocks[10].digest in store
        assert blocks[8].digest in store
        assert blocks[7].digest not in store

    def test_callback_invoked(self):
        store = BlockStore()
        blocks = build_chain(store, 4)
        seen: list[int] = []
        manager = CheckpointManager(
            interval=2, blockstore=store, keep_window=10, on_checkpoint=seen.append
        )
        for b in blocks[1:]:
            manager.on_commit(b, b.height)
        assert seen == [2, 4]

    def test_records_height_in_kv(self):
        store = BlockStore()
        kv = KVStore()
        blocks = build_chain(store, 5)
        manager = CheckpointManager(interval=5, blockstore=store, kv=kv, keep_window=10)
        for b in blocks[1:]:
            manager.on_commit(b, b.height)
        assert kv.get(b"meta:checkpoint_height") == b"5"

    def test_invalid_interval(self):
        with pytest.raises(StorageError):
            CheckpointManager(interval=0, blockstore=BlockStore())
