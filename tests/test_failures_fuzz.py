"""Byzantine strategies and the random-adversity fuzzer.

Safety must hold under every strategy and every fuzzed schedule; liveness
is asserted only where the configuration permits it (at most f faulty,
network eventually healed).
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.harness.des_runtime import DESCluster
from repro.harness.failures import (
    Delayer,
    Equivocator,
    QCHider,
    SilentAfter,
    VoteWithholder,
    fuzz_schedule,
    make_byzantine,
)
from repro.harness.workload import ClosedLoopClients


def build(protocol: str = "marlin", f: int = 1, seed: int = 31, base_timeout: float = 0.5):
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(f, batch_size=200, base_timeout=base_timeout),
        seed=seed,
    )
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode="threshold")
    pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    return cluster, pool


class TestStrategies:
    def test_silent_after_behaves_like_crash(self):
        cluster, pool = build()
        make_byzantine(cluster, 0, SilentAfter(2.0))  # the view-1 leader
        cluster.run(until=12.0)
        cluster.assert_safety()
        post = [when for rid, _, _, when in cluster.auditor.commits if when > 3.0 and rid != 0]
        assert post, "survivors must recover from a silent leader"

    def test_vote_withholder_cannot_stop_quorum(self):
        cluster, pool = build()
        make_byzantine(cluster, 3, VoteWithholder())  # a non-leader
        cluster.run(until=8.0)
        cluster.assert_safety()
        assert min(r.ledger.committed_height for r in cluster.replicas[:3]) > 3

    def test_equivocating_leader_never_splits_commits(self):
        cluster, pool = build()
        make_byzantine(cluster, 0, Equivocator(cluster.experiment.cluster.num_replicas))
        cluster.run(until=12.0)
        cluster.assert_safety()  # the whole point: no conflicting commits

    def test_delayer_slows_but_does_not_break(self):
        cluster, pool = build(base_timeout=2.0)
        make_byzantine(cluster, 2, Delayer(cluster, 0.2))
        cluster.run(until=10.0)
        cluster.assert_safety()
        assert min(r.ledger.committed_height for r in cluster.replicas) > 1

    def test_qc_hider_in_view_change(self):
        """Fig. 2's p4: hide knowledge in VIEW-CHANGE; recovery must still
        succeed (Marlin's vote-to-unlock does not trust any single VC)."""
        cluster, pool = build()
        from repro.consensus.messages import Justify

        hider = QCHider(Justify(cluster.replicas[3].genesis_qc))
        make_byzantine(cluster, 3, hider)
        cluster.crash_at(0, 2.0)  # force a view change with the hider active
        cluster.run(until=14.0)
        cluster.assert_safety()
        post = [when for rid, _, _, when in cluster.auditor.commits if when > 2.5 and rid != 0]
        assert post


class TestFuzz:
    @pytest.mark.parametrize("seed", range(8))
    def test_marlin_fuzz_safety(self, seed):
        report = fuzz_schedule(seed, protocol="marlin", f=1, sim_time=20.0)
        assert report.safety_ok
        # With at most f crashes and all partitions healed, progress is
        # required after GST.
        alive = [h for i, h in enumerate(report.committed_heights)]
        assert max(alive) > 0, f"no progress at all: {report.events}"

    @pytest.mark.parametrize("seed", range(4))
    def test_hotstuff_fuzz_safety(self, seed):
        report = fuzz_schedule(seed + 100, protocol="hotstuff", f=1, sim_time=20.0)
        assert report.safety_ok
        assert max(report.committed_heights) > 0

    @pytest.mark.parametrize("seed", range(3))
    def test_chained_marlin_fuzz_safety(self, seed):
        report = fuzz_schedule(seed + 200, protocol="chained-marlin", f=1, sim_time=20.0)
        assert report.safety_ok

    def test_f2_fuzz(self):
        report = fuzz_schedule(7, protocol="marlin", f=2, sim_time=25.0)
        assert report.safety_ok
        assert max(report.committed_heights) > 0

    def test_report_records_events(self):
        report = fuzz_schedule(3, protocol="marlin", f=1, sim_time=10.0)
        assert isinstance(report.events, list)
        assert report.max_view >= 1

    @pytest.mark.parametrize("seed", range(6))
    def test_lemma4_holds_under_crash_faults(self, seed):
        """Lemma 4: a view-change snapshot never yields more than two
        rank-maximal QCs in crash-fault (non-equivocating) executions."""
        from repro.harness.des_runtime import DESCluster
        from repro.common.config import ClusterConfig, ExperimentConfig
        from repro.harness.workload import ClosedLoopClients

        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=300, base_timeout=0.4),
            seed=seed + 500,
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null",
                             force_unhappy=True)
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(seed % 4, 1.5)
        cluster.run(until=10.0)
        cluster.assert_safety()
        assert all(r.stats["lemma4_violations"] == 0 for r in cluster.replicas)
