"""Result persistence and regression comparison."""

from __future__ import annotations

import pytest

from repro.harness.results import Delta, ResultStore, compare, diff


class TestResultStore:
    def test_record_and_roundtrip(self, tmp_path):
        store = ResultStore(meta={"run": "test"})
        store.record("fig10g.marlin.f1", 68560.0)
        store.record_many("vc", {"happy_ms": 128.0, "unhappy_ms": 295.4})
        path = str(tmp_path / "results.json")
        store.save(path)
        loaded = ResultStore.load(path)
        assert loaded.metrics == store.metrics
        assert loaded.meta == {"run": "test"}
        assert len(loaded) == 3

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            ResultStore().record("", 1.0)

    def test_atomic_save(self, tmp_path):
        import os

        store = ResultStore()
        store.record("x", 1.0)
        path = str(tmp_path / "r.json")
        store.save(path)
        assert not os.path.exists(path + ".tmp")


class TestDiffCompare:
    def make_pair(self):
        before = ResultStore()
        before.record("a", 100.0)
        before.record("b", 50.0)
        before.record("gone", 1.0)
        after = ResultStore()
        after.record("a", 102.0)  # +2%
        after.record("b", 40.0)  # -20%
        after.record("new", 7.0)
        return before, after

    def test_diff_lists_all_changes(self):
        before, after = self.make_pair()
        deltas = {d.name: d for d in diff(before, after)}
        assert set(deltas) == {"a", "b", "gone", "new"}
        assert deltas["gone"].kind == "removed"
        assert deltas["new"].kind == "added"
        assert deltas["b"].relative == pytest.approx(-0.2)

    def test_compare_applies_tolerance(self):
        before, after = self.make_pair()
        significant = {d.name for d in compare(before, after, tolerance=0.05)}
        assert significant == {"b", "gone", "new"}  # 'a' within 5%

    def test_compare_identical_is_empty(self):
        store = ResultStore()
        store.record("x", 3.0)
        assert compare(store, store) == []

    def test_render_formats(self):
        assert "new" in Delta("m", None, 1.0).render()
        assert "was" in Delta("m", 1.0, None).render()
        assert "%" in Delta("m", 1.0, 2.0).render()


class TestCliIntegration:
    def test_compare_command(self, tmp_path, capsys):
        from repro.cli import main

        a = ResultStore()
        a.record("tput", 100.0)
        b = ResultStore()
        b.record("tput", 50.0)
        pa, pb = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        a.save(pa)
        b.save(pb)
        with pytest.raises(SystemExit):
            main(["compare", pa, pb])
        assert "-50.0%" in capsys.readouterr().out

    def test_compare_within_tolerance_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        a = ResultStore()
        a.record("tput", 100.0)
        pa = str(tmp_path / "a.json")
        a.save(pa)
        assert main(["compare", pa, pa]) == 0
        assert "no changes" in capsys.readouterr().out
