"""Block-lifecycle spans: tracer semantics and end-to-end trace export."""

from __future__ import annotations

import json

import pytest

from repro.api import RunObservability, Scenario, traced_run
from repro.obs.tracer import LANE_VIEW, NullTracer, Tracer


class TestTracerSemantics:
    def test_begin_end_records_interval(self):
        tracer = Tracer()
        span = tracer.begin(0, "block", "abcd", 1.0, height=3)
        closed = tracer.end(0, "block", "abcd", 2.5, committed=True)
        assert closed is span
        assert span.duration == pytest.approx(1.5)
        assert span.meta == {"height": 3, "committed": True}

    def test_begin_is_idempotent_while_open(self):
        tracer = Tracer()
        first = tracer.begin(0, "prepare", "k", 1.0)
        again = tracer.begin(0, "prepare", "k", 9.0)
        assert again is first
        assert len(tracer.spans) == 1
        # After closing, the same handle opens a fresh span.
        tracer.end(0, "prepare", "k", 2.0)
        fresh = tracer.begin(0, "prepare", "k", 3.0)
        assert fresh is not first

    def test_end_without_begin_is_noop(self):
        tracer = Tracer()
        assert tracer.end(0, "block", "missing", 1.0) is None
        assert tracer.spans == []

    def test_parent_child_links(self):
        tracer = Tracer()
        root = tracer.begin(1, "block", "d1", 0.0)
        phase = tracer.begin(1, "prepare", "d1", 0.1, parent=root)
        other = tracer.begin(2, "block", "d2", 0.2)
        assert phase.parent_id == root.span_id
        assert tracer.children(root) == [phase]
        assert tracer.children(other) == []

    def test_spans_keyed_per_replica(self):
        tracer = Tracer()
        a = tracer.begin(0, "block", "d", 0.0)
        b = tracer.begin(1, "block", "d", 0.0)
        assert a is not b

    def test_finish_truncates_open_spans(self):
        tracer = Tracer()
        tracer.begin(0, "block", "d", 1.0)
        tracer.finish(7.0)
        (span,) = tracer.spans
        assert span.end == 7.0
        assert span.meta.get("truncated") is True
        # A second finish is harmless.
        tracer.finish(8.0)
        assert span.end == 7.0

    def test_chrome_trace_is_valid_json_with_metadata(self):
        tracer = Tracer()
        root = tracer.begin(0, "block", "d", 1.0)
        tracer.begin(0, "prepare", "d", 1.0, parent=root)
        tracer.instant(0, "qc-formed", 1.5, lane=LANE_VIEW, phase="prepare")
        tracer.finish(2.0)
        events = json.loads(tracer.chrome_trace())
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        spans = [e for e in events if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["prepare"]["args"]["parent_id"] == root.span_id
        assert all(isinstance(e["ts"], int) for e in spans)

    def test_render_text_lists_all_entries(self):
        tracer = Tracer()
        tracer.begin(0, "block", "d", 1.0)
        tracer.instant(1, "vote", 1.25)
        tracer.finish(2.0)
        text = tracer.render_text()
        assert "<block" in text and "block>" in text and "vote" in text

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        tracer.begin(0, "block", "d", 1.0)
        tracer.instant(0, "vote", 1.0)
        assert tracer.end(0, "block", "d", 2.0) is None
        assert tracer.spans == [] and tracer.instants == []
        assert not tracer.enabled


@pytest.fixture(scope="module")
def traced_marlin():
    cluster, obs = traced_run(Scenario(protocol="marlin", f=1, seed=7), sim_time=3.0)
    return cluster, obs


class TestTracedRun:
    def test_committed_blocks_contain_phase_children(self, traced_marlin):
        _, obs = traced_marlin
        committed = [
            s for s in obs.tracer.spans_named("block") if s.meta.get("committed")
        ]
        assert len(committed) >= 10
        for root in committed:
            names = {child.name for child in obs.tracer.children(root)}
            # Marlin is two-phase: prepare and commit nest under the block.
            assert {"prepare", "commit"} <= names

    def test_phase_latency_summary_covers_both_phases(self, traced_marlin):
        _, obs = traced_marlin
        summary = obs.phase_latency_summary()
        assert {"prepare", "commit"} <= set(summary)
        for stats in summary.values():
            assert stats["count"] > 0
            assert 0 < stats["mean"] <= stats["p99"] + 1e-9

    def test_trace_matches_metrics(self, traced_marlin):
        cluster, obs = traced_marlin
        snapshot = obs.snapshot()
        commits = snapshot["cluster"]["counters"]["replica_blocks_committed_total"]
        total_committed = sum(s["value"] for s in commits)
        committed_spans = [
            s for s in obs.tracer.spans_named("block") if s.meta.get("committed")
        ]
        assert total_committed == len(committed_spans)

    def test_identical_seeds_export_identical_traces(self):
        traces = []
        for _ in range(2):
            _, obs = traced_run(Scenario(protocol="marlin", f=1, seed=3), sim_time=2.0)
            traces.append(obs.tracer.chrome_trace())
        assert traces[0] == traces[1]
        json.loads(traces[0])  # and it is a valid JSON document

    def test_view_change_spans_after_leader_crash(self):
        _, obs = traced_run(
            Scenario(protocol="marlin", f=1, seed=5), sim_time=4.0, crash_leader_at=1.0
        )
        view_spans = obs.tracer.spans_named("view-change")
        assert view_spans
        assert all(s.lane == LANE_VIEW for s in view_spans)
        # The crash-triggered change carries its sub-phase instants.
        names = {i.name for i in obs.tracer.instants}
        assert "view-change-sent" in names

    def test_metrics_only_mode_still_fills_histograms(self):
        _, obs = traced_run(
            Scenario(protocol="hotstuff", f=1, seed=2), sim_time=2.0,
            observability=RunObservability(trace=False),
        )
        assert obs.tracer.spans == []
        summary = obs.phase_latency_summary()
        assert {"prepare", "pre-commit", "commit"} <= set(summary)
