"""The timeline tracer."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, NetworkProfile
from repro.harness.des_runtime import DESCluster
from repro.harness.timeline import Timeline, describe
from repro.harness.workload import ClosedLoopClients


@pytest.fixture
def traced_run():
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=64, base_timeout=0.5),
        network=NetworkProfile.lan(),
        seed=51,
    )
    cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
    timeline = Timeline().attach(cluster)
    pool = ClosedLoopClients(cluster, num_clients=8, token_weight=1, target="all")
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.crash_at(0, 1.0)
    cluster.run(until=4.0)
    cluster.assert_safety()
    return cluster, timeline


class TestTimeline:
    def test_records_protocol_phases(self, traced_run):
        _, timeline = traced_run
        counts = timeline.counts()
        assert counts.get("prepare", 0) > 0
        assert counts.get("vote:prepare", 0) > 0
        assert counts.get("commit", 0) > 0
        assert counts.get("view-change", 0) > 0
        assert counts.get("COMMIT", 0) > 0

    def test_client_traffic_excluded_by_default(self, traced_run):
        _, timeline = traced_run
        counts = timeline.counts()
        assert "requests" not in counts
        assert "replies" not in counts

    def test_time_ordering_and_window(self, traced_run):
        _, timeline = traced_run
        events = timeline.filtered(start=1.0, end=2.0)
        assert events == sorted(events, key=lambda e: (e.time, e.src, e.dst))
        assert all(1.0 <= e.time <= 2.0 for e in events)

    def test_kind_filter(self, traced_run):
        _, timeline = traced_run
        only_votes = timeline.filtered(kinds={"vote:prepare", "vote:commit"})
        assert only_votes
        assert all(e.kind.startswith("vote:") for e in only_votes)

    def test_render_produces_readable_lines(self, traced_run):
        _, timeline = traced_run
        text = timeline.render(limit=10)
        lines = text.splitlines()
        assert len(lines) == 12  # header + rule + 10 events
        assert "detail" in lines[0]
        assert "->" in lines[2]

    def test_manual_annotation(self, traced_run):
        _, timeline = traced_run
        timeline.record(2.5, "NOTE", "leader crashed here", actor=0)
        notes = timeline.filtered(kinds={"NOTE"})
        assert len(notes) == 1 and "crashed" in notes[0].detail

    def test_view_change_visible_after_crash(self, traced_run):
        _, timeline = traced_run
        vcs = timeline.filtered(kinds={"view-change"})
        assert any(e.time > 1.0 for e in vcs)

    def test_text_format_preserved_over_tracer_backend(self, traced_run):
        """The tracer-backed timeline renders the exact historical layout."""
        import re

        _, timeline = traced_run
        lines = timeline.render(limit=5).splitlines()
        assert lines[0] == f"{'time':>9}  {'event':<12} {'from':>4}    {'to':<4} detail"
        assert lines[1] == "-" * len(lines[0])
        row = re.compile(r"^ *\d+\.\d{4}  \S+ +(r\d+|-) -> (r\d+|-) ")
        for line in lines[2:]:
            assert row.match(line), line

    def test_chrome_trace_export(self, traced_run):
        import json

        _, timeline = traced_run
        events = json.loads(timeline.chrome_trace())
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == len(timeline.events)
        assert {e["name"] for e in instants} >= {"prepare", "COMMIT", "view-change"}


class TestDescribe:
    def test_describe_covers_all_message_types(self):
        from repro.consensus.block import genesis_block
        from repro.consensus.messages import (
            ClientRequestBatch,
            Justify,
            PhaseMsg,
            ReplyBatch,
            SyncRequest,
            SyncResponse,
            ViewChangeMsg,
            VoteMsg,
        )
        from repro.consensus.qc import BlockSummary, Phase, genesis_qc
        from repro.crypto.hashing import digest_of

        qc = genesis_qc(genesis_block())
        summary = BlockSummary(digest=digest_of("x"), view=1, height=1, parent_view=0)
        cases = [
            PhaseMsg(phase=Phase.COMMIT, view=1, justify=Justify(qc)),
            VoteMsg(phase=Phase.PREPARE, view=1, block=summary, share=None),
            ViewChangeMsg(view=2, last_voted=summary, justify=Justify(qc), share=None),
            SyncRequest(digests=(digest_of("d"),)),
            SyncResponse(blocks=()),
            ClientRequestBatch(operations=()),
            ReplyBatch(replica=0, block_digest=digest_of("b"), op_keys=(), num_ops=3, reply_size=150),
            "unknown-payload",
        ]
        for payload in cases:
            kind, detail = describe(payload)
            assert isinstance(kind, str) and kind
