"""The wire codec: roundtrips for every protocol message type."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import EncodingError
from repro.consensus.block import Block, Operation, genesis_block, make_child
from repro.consensus.crypto_service import NullQuorumToken, NullShare
from repro.consensus.messages import (
    AggregateNewView,
    ClientReply,
    ClientRequest,
    ClientRequestBatch,
    Justify,
    LeaseAck,
    LeaseProbe,
    PhaseMsg,
    PrePrepareMsg,
    Proposal,
    ReadReply,
    ReadRequest,
    ReplyBatch,
    StateTransferRequest,
    StateTransferResponse,
    SyncRequest,
    SyncResponse,
    ViewChangeMsg,
    VoteMsg,
)
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.crypto.hashing import digest_of
from repro.crypto.multisig import MultiSignature
from repro.crypto.signatures import SigningKey
from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.network.codec import decode_message, encode_message, supports


def sample_block(num_ops: int = 2) -> Block:
    ops = tuple(
        Operation(client_id=i, sequence=i * 3, payload=b"payload-%d" % i, weight=i + 1)
        for i in range(num_ops)
    )
    return make_child(genesis_block(), 1, ops, digest_of("qc"))


def sample_summary(virtual: bool = False) -> BlockSummary:
    return BlockSummary(
        digest=digest_of(["s", virtual]),
        view=3,
        height=7,
        parent_view=2,
        is_virtual=virtual,
        justify_in_view=not virtual,
    )


def sample_qc(phase: Phase = Phase.PREPARE, signature=None) -> QuorumCertificate:
    return QuorumCertificate(
        phase=phase,
        view=3,
        block=sample_summary(),
        signature=signature or ThresholdSignature(123456789),
    )


def roundtrip(msg):
    assert supports(msg)
    return decode_message(encode_message(msg))


class TestMessageRoundtrips:
    def test_phase_msg_with_block(self):
        msg = PhaseMsg(
            phase=Phase.PREPARE, view=3, justify=Justify(sample_qc()), block=sample_block()
        )
        assert roundtrip(msg) == msg

    def test_phase_msg_qc_only(self):
        msg = PhaseMsg(phase=Phase.COMMIT, view=3, justify=Justify(sample_qc()))
        assert roundtrip(msg) == msg

    def test_phase_msg_composite_justify(self):
        virtual_summary = BlockSummary(
            digest=digest_of(["v"]), view=3, height=8, parent_view=2,
            is_virtual=True, justify_in_view=False,
        )
        ppqc = QuorumCertificate(
            phase=Phase.PRE_PREPARE, view=3, block=virtual_summary,
            signature=ThresholdSignature(42),
        )
        vc = QuorumCertificate(
            phase=Phase.PREPARE, view=2,
            block=BlockSummary(digest=digest_of(["p"]), view=2, height=7, parent_view=2),
            signature=ThresholdSignature(43),
        )
        msg = PhaseMsg(phase=Phase.PREPARE, view=3, justify=Justify(ppqc, vc))
        assert roundtrip(msg) == msg

    def test_vote_msg_with_locked_qc(self):
        msg = VoteMsg(
            phase=Phase.PRE_PREPARE,
            view=4,
            block=sample_summary(virtual=True),
            share=PartialSignature(signer=2, value=987654321),
            locked_qc=sample_qc(),
        )
        assert roundtrip(msg) == msg

    def test_pre_prepare_shadow(self):
        block = sample_block()
        qc = sample_qc()
        virtual = Block(
            parent_link=None,
            parent_view=1,
            view=2,
            height=block.height + 1,
            operations=block.operations,
            justify_digest=qc.digest,
        )
        msg = PrePrepareMsg(
            view=2,
            proposals=(Proposal(block, Justify(qc)), Proposal(virtual, Justify(qc))),
            shadow=True,
        )
        assert roundtrip(msg) == msg

    def test_view_change(self):
        msg = ViewChangeMsg(
            view=5,
            last_voted=sample_summary(),
            justify=Justify(sample_qc()),
            share=PartialSignature(signer=1, value=55),
        )
        assert roundtrip(msg) == msg

    def test_view_change_minimal(self):
        msg = ViewChangeMsg(view=5, last_voted=None, justify=None, share=None)
        assert roundtrip(msg) == msg

    def test_aggregate_new_view(self):
        proof = ViewChangeMsg(
            view=5,
            last_voted=sample_summary(),
            justify=Justify(sample_qc()),
            share=PartialSignature(signer=0, value=9),
        )
        msg = AggregateNewView(
            view=5, block=sample_block(), justify=Justify(sample_qc()),
            proofs=((0, proof), (2, proof)),
        )
        assert roundtrip(msg) == msg

    def test_sync_messages(self):
        req = SyncRequest(digests=(digest_of("a"), digest_of("b")))
        assert roundtrip(req) == req
        resp = SyncResponse(
            blocks=(sample_block(),),
            resolutions=((digest_of("v"), digest_of("p")),),
        )
        assert roundtrip(resp) == resp

    def test_client_messages(self):
        assert roundtrip(ClientRequest(client_id=9, sequence=3, payload=b"x")) == ClientRequest(
            client_id=9, sequence=3, payload=b"x"
        )
        assert roundtrip(
            ClientRequest(client_id=9, sequence=3, payload=b"x", weight=7)
        ) == ClientRequest(client_id=9, sequence=3, payload=b"x", weight=7)
        batch = ClientRequestBatch(
            operations=(Operation(client_id=1, sequence=2, payload=b"z", weight=5),)
        )
        assert roundtrip(batch) == batch
        reply = ClientReply(client_id=9, sequence=3, replica=1, result=b"ok")
        assert roundtrip(reply) == reply
        full_reply = ClientReply(
            client_id=9, sequence=3, replica=1, result=b"ok",
            result_digest=digest_of("r"), view=4, weight=3, reply_size=150,
        )
        assert roundtrip(full_reply) == full_reply
        rb = ReplyBatch(
            replica=2, block_digest=digest_of("b"), op_keys=((1, 2), (3, 4)),
            num_ops=10, reply_size=150,
        )
        assert roundtrip(rb) == rb
        rb_digests = ReplyBatch(
            replica=2, block_digest=digest_of("b"), op_keys=((1, 2), (3, 4)),
            num_ops=10, reply_size=150,
            result_digests=(digest_of("r1"), digest_of("r2")), view=6,
        )
        assert roundtrip(rb_digests) == rb_digests

    def test_read_and_lease_messages(self):
        req = ReadRequest(client_id=9, sequence=4, key=b"k", weight=2)
        assert roundtrip(req) == req
        redirect = ReadReply(client_id=9, sequence=4, replica=2, view=3, ok=False)
        assert roundtrip(redirect) == redirect
        served = ReadReply(
            client_id=9, sequence=4, replica=1, view=3, value=b"v", ok=True, weight=2
        )
        assert roundtrip(served) == served
        probe = LeaseProbe(leader=1, view=3, nonce=17)
        assert roundtrip(probe) == probe
        ack = LeaseAck(replica=2, view=3, nonce=17)
        assert roundtrip(ack) == ack


class TestSignatureUnion:
    def test_conventional_signature(self):
        sig = SigningKey.from_seed("k").sign(b"m")
        qc = sample_qc(signature=sig)
        msg = PhaseMsg(phase=Phase.COMMIT, view=3, justify=Justify(qc))
        assert roundtrip(msg).justify.qc.signature == sig

    def test_multisig(self):
        sigs = tuple((i, SigningKey.from_seed(f"k{i}").sign(b"m")) for i in range(3))
        bundle = MultiSignature(signatures=sigs, group_size=4)
        qc = sample_qc(signature=bundle)
        msg = PhaseMsg(phase=Phase.COMMIT, view=3, justify=Justify(qc))
        assert roundtrip(msg).justify.qc.signature == bundle

    def test_null_tokens(self):
        share = NullShare(signer=1, tag=digest_of("t"))
        vote = VoteMsg(phase=Phase.PREPARE, view=1, block=sample_summary(), share=share)
        assert roundtrip(vote).share == share
        token = NullQuorumToken(signers=frozenset({0, 1, 2}), tag=digest_of("t"))
        qc = sample_qc(signature=token)
        msg = PhaseMsg(phase=Phase.COMMIT, view=3, justify=Justify(qc))
        assert roundtrip(msg).justify.qc.signature == token

    def test_genesis_none_signature(self):
        from repro.consensus.qc import genesis_qc

        qc = genesis_qc(genesis_block())
        msg = PhaseMsg(phase=Phase.COMMIT, view=0, justify=Justify(qc))
        assert roundtrip(msg).justify.qc.signature is None


class TestGoldenWireFormat:
    """Every registered message type must encode byte-identically to the
    reference append-per-field encoder (the zero-copy fast path gate)."""

    @staticmethod
    def _samples():
        proof = ViewChangeMsg(
            view=5,
            last_voted=sample_summary(),
            justify=Justify(sample_qc()),
            share=PartialSignature(signer=0, value=9),
        )
        return [
            PhaseMsg(
                phase=Phase.PREPARE, view=3, justify=Justify(sample_qc()), block=sample_block()
            ),
            VoteMsg(
                phase=Phase.PRE_PREPARE,
                view=4,
                block=sample_summary(virtual=True),
                share=PartialSignature(signer=2, value=987654321),
                locked_qc=sample_qc(),
            ),
            PrePrepareMsg(
                view=2,
                proposals=(Proposal(sample_block(), Justify(sample_qc())),),
            ),
            proof,
            AggregateNewView(
                view=5, block=sample_block(), justify=Justify(sample_qc()),
                proofs=((0, proof), (2, proof)),
            ),
            StateTransferRequest(have_height=4),
            StateTransferResponse(
                committed_height=7,
                head=sample_block(),
                recent_blocks=(sample_block(),),
                app_entries=((b"k", b"v"),),
            ),
            SyncRequest(digests=(digest_of("a"), digest_of("b"))),
            SyncResponse(
                blocks=(sample_block(),),
                resolutions=((digest_of("v"), digest_of("p")),),
            ),
            ClientRequest(client_id=9, sequence=3, payload=b"x", weight=7),
            ClientRequestBatch(
                operations=(Operation(client_id=1, sequence=2, payload=b"z", weight=5),)
            ),
            ClientReply(
                client_id=9, sequence=3, replica=1, result=b"ok",
                result_digest=digest_of("r"), view=4, weight=3, reply_size=150,
            ),
            ReplyBatch(
                replica=2, block_digest=digest_of("b"), op_keys=((1, 2), (3, 4)),
                num_ops=10, reply_size=150,
                result_digests=(digest_of("r1"), digest_of("r2")), view=6,
            ),
            ReadRequest(client_id=9, sequence=4, key=b"k", weight=2),
            ReadReply(
                client_id=9, sequence=4, replica=1, view=3, value=b"v", ok=True, weight=2
            ),
            LeaseProbe(leader=1, view=3, nonce=17),
            LeaseAck(replica=2, view=3, nonce=17),
        ]

    def test_all_registered_types_sampled(self):
        # A new message type registered without a golden sample here must
        # fail loudly rather than silently escape the byte-identity gate.
        from repro.network import codec

        sampled = {type(msg) for msg in self._samples()}
        sampled.update({SyncRequest, SyncResponse})
        missing = set(codec._ENCODERS) - sampled
        assert not missing, f"message types without a golden sample: {missing}"

    def test_byte_identical_to_reference_encoder(self):
        from repro.network import codec
        from tests.test_encoding import reference_encode

        for msg in self._samples():
            tag, enc = codec._ENCODERS[type(msg)]
            assert encode_message(msg) == reference_encode([tag, enc(msg)]), (
                f"wire bytes drifted for {type(msg).__name__}"
            )


class TestErrors:
    def test_unsupported_payload(self):
        assert not supports("a plain string")
        with pytest.raises(EncodingError):
            encode_message("a plain string")

    def test_unknown_tag(self):
        from repro.common.encoding import encode

        with pytest.raises(EncodingError):
            decode_message(encode(["no-such-tag", []]))

    def test_digest_preserved_through_roundtrip(self):
        block = sample_block()
        msg = PhaseMsg(
            phase=Phase.PREPARE, view=3, justify=Justify(sample_qc()), block=block
        )
        assert roundtrip(msg).block.digest == block.digest


_ops = st.builds(
    Operation,
    client_id=st.integers(min_value=0, max_value=1000),
    sequence=st.integers(min_value=0, max_value=10**6),
    payload=st.binary(max_size=64),
    weight=st.integers(min_value=1, max_value=100),
)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(_ops, max_size=5), view=st.integers(min_value=1, max_value=100))
def test_property_block_roundtrip(ops, view):
    block = make_child(genesis_block(), view, tuple(ops), digest_of(["j", view]))
    msg = PhaseMsg(
        phase=Phase.PREPARE,
        view=view,
        justify=Justify(sample_qc()),
        block=block,
    )
    decoded = roundtrip(msg)
    assert decoded.block == block
    assert decoded.block.digest == block.digest
