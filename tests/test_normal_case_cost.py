"""Measured normal-case message complexity per committed block.

Theory for ``n`` replicas per committed block (broadcasts include the
leader's self-delivery):

* event-driven Marlin : prepare(n) + votes(n-ish) + commit(n) + votes + decide(n) ~ 5n
* event-driven HotStuff: two more phases ~ 7n
* chained variants    : one broadcast + one vote round ~ 2n (+ flush tails)
"""

from __future__ import annotations

import pytest

from repro.harness.scenarios import measure_normal_case_cost


@pytest.fixture(scope="module")
def costs():
    return {
        protocol: measure_normal_case_cost(protocol, 1)
        for protocol in ("marlin", "hotstuff", "chained-marlin", "chained-hotstuff")
    }


class TestPerBlockCost:
    def test_marlin_beats_hotstuff(self, costs):
        assert costs["marlin"].messages_per_block < costs["hotstuff"].messages_per_block
        assert (
            costs["marlin"].authenticators_per_block
            < costs["hotstuff"].authenticators_per_block
        )

    def test_ratio_tracks_phase_count(self, costs):
        """Marlin/HotStuff message ratio ~ 5/7 (two of three QC rounds)."""
        ratio = costs["marlin"].messages_per_block / costs["hotstuff"].messages_per_block
        assert 0.6 < ratio < 0.85

    def test_chaining_cuts_messages(self, costs):
        assert (
            costs["chained-marlin"].messages_per_block
            < costs["marlin"].messages_per_block
        )
        assert (
            costs["chained-hotstuff"].messages_per_block
            < costs["hotstuff"].messages_per_block
        )

    def test_chained_marlin_cheapest(self, costs):
        cheapest = min(costs.values(), key=lambda c: c.messages_per_block)
        assert cheapest.protocol == "chained-marlin"

    def test_absolute_counts_near_theory(self, costs):
        n = costs["marlin"].n
        assert costs["marlin"].messages_per_block == pytest.approx(5 * n, rel=0.25)
        assert costs["hotstuff"].messages_per_block == pytest.approx(7 * n, rel=0.25)

    def test_bytes_dominated_by_payload(self, costs):
        """All variants ship each block's payload once per replica, so
        bytes/block are within a few percent of each other."""
        values = [c.bytes_per_block for c in costs.values()]
        assert max(values) / min(values) < 1.1

    def test_enough_blocks_measured(self, costs):
        assert all(c.blocks >= 20 for c in costs.values())


class TestScaling:
    def test_messages_scale_linearly_with_n(self):
        small = measure_normal_case_cost("marlin", 1)
        large = measure_normal_case_cost("marlin", 2)
        per_n_small = small.messages_per_block / small.n
        per_n_large = large.messages_per_block / large.n
        assert per_n_large == pytest.approx(per_n_small, rel=0.3)
