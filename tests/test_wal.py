"""Write-ahead log: framing, replay, torn-record recovery."""

from __future__ import annotations

import os

import pytest

from repro.common.errors import StoreClosed
from repro.storage.wal import WriteAheadLog


class TestInMemory:
    def test_append_replay(self):
        wal = WriteAheadLog()
        wal.append(b"one")
        wal.append(b"two")
        assert list(wal.replay()) == [b"one", b"two"]

    def test_empty_replay(self):
        assert list(WriteAheadLog().replay()) == []

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append(b"x")
        wal.truncate()
        assert list(wal.replay()) == []
        assert wal.size_bytes() == 0

    def test_closed_rejects_ops(self):
        wal = WriteAheadLog()
        wal.close()
        with pytest.raises(StoreClosed):
            wal.append(b"x")

    def test_empty_record_roundtrip(self):
        wal = WriteAheadLog()
        wal.append(b"")
        wal.append(b"y")
        assert list(wal.replay()) == [b"", b"y"]

    def test_context_manager(self):
        with WriteAheadLog() as wal:
            wal.append(b"x")
        with pytest.raises(StoreClosed):
            wal.append(b"y")


class TestOnDisk:
    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append(b"alpha")
            wal.append(b"beta")
            wal.sync()
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [b"alpha", b"beta"]

    def test_torn_tail_discarded(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append(b"good-1")
            wal.append(b"good-2")
            wal.sync()
        # Simulate a crash mid-write: chop bytes off the last record.
        size = os.path.getsize(path)
        with open(path, "r+b") as fh:
            fh.truncate(size - 3)
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [b"good-1"]

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append(b"good")
            wal.append(b"willcorrupt")
            wal.sync()
        with open(path, "r+b") as fh:
            data = fh.read()
            index = data.index(b"willcorrupt")
            fh.seek(index)
            fh.write(b"X")
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [b"good"]

    def test_append_after_replay(self, tmp_path):
        path = str(tmp_path / "wal.log")
        with WriteAheadLog(path) as wal:
            wal.append(b"a")
        with WriteAheadLog(path) as wal:
            assert list(wal.replay()) == [b"a"]
            wal.append(b"b")
            assert list(wal.replay()) == [b"a", b"b"]
