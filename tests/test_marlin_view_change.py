"""Marlin view changes (paper Fig. 9): happy path, Cases V1/V2/V3, R1/R2/R3,
virtual blocks, and shadow-block bandwidth sharing."""

from __future__ import annotations


from repro.consensus.block import Block
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import (
    Justify,
    PhaseMsg,
    PrePrepareMsg,
    ViewChangeMsg,
    VoteMsg,
)
from repro.consensus.qc import BlockSummary, Phase

from tests.helpers import LocalNet, forge_qc


def booted_net(**kwargs) -> LocalNet:
    net = LocalNet(MarlinReplica, n=4, **kwargs)
    net.start()
    net.submit(0, [b"a", b"b", b"c"])
    net.pump()
    assert net.heights()[0] >= 1
    return net


class TestHappyPath:
    def test_crash_leader_happy_recovery(self):
        net = booted_net()
        net.crash(0)
        net.timeout_all()
        leader2 = net.replicas[1]
        assert leader2.stats["happy_view_changes"] == 1
        assert leader2.stats["unhappy_view_changes"] == 0
        # New view makes progress.
        before = net.heights()[1]
        net.submit(1, [b"after-vc"], client=90)
        net.pump()
        heights = [h for i, h in enumerate(net.heights()) if i != 0]
        assert len(set(heights)) == 1 and heights[0] > before

    def test_happy_path_is_two_phases(self):
        """No PRE-PREPARE message appears in a happy view change."""
        net = booted_net()
        net.crash(0)
        net.delivered.clear()
        net.timeout_all()
        assert not any(isinstance(p, PrePrepareMsg) for _, _, p in net.delivered)
        # The combined prepareQC drives a COMMIT broadcast directly.
        commits = [
            p for _, _, p in net.delivered
            if isinstance(p, PhaseMsg) and p.phase == Phase.COMMIT and p.view == 2
        ]
        assert commits

    def test_happy_qc_formed_in_new_view_for_old_block(self):
        net = booted_net()
        old_head = net.replicas[1].last_voted
        net.crash(0)
        net.timeout_all()
        qc = net.replicas[1].high_qc.qc
        assert qc.view >= 2  # formation view is the new view
        assert qc.block.digest == old_head.digest or qc.block.height >= old_head.height

    def test_force_unhappy_flag_skips_happy_path(self):
        net = booted_net(force_unhappy=True)
        net.crash(0)
        net.delivered.clear()
        net.timeout_all()
        leader2 = net.replicas[1]
        assert leader2.stats["unhappy_view_changes"] == 1
        assert any(isinstance(p, PrePrepareMsg) for _, _, p in net.delivered)
        net.submit(1, [b"post"], client=91)
        net.pump()
        heights = [h for i, h in enumerate(net.heights()) if i != 0]
        assert min(heights) >= 2


class TestUnhappyCases:
    def test_divergent_lb_triggers_unhappy_path(self):
        """Drop the last block's PREPARE to two replicas so lbs diverge."""
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        net.submit(0, [b"a"])
        net.pump()
        # Propose one more block, but only replica 1 sees the PREPARE.
        net.submit(0, [b"hidden"], client=77)

        def drop(src: int, dst: int, payload) -> bool:
            return (
                isinstance(payload, PhaseMsg)
                and payload.phase == Phase.PREPARE
                and payload.block is not None
                and payload.block.height == 2
                and dst in (2, 3)
            )

        net.pump(drop=drop)
        assert net.replicas[1].last_voted.height == 2
        assert net.replicas[2].last_voted.height == 1
        net.crash(0)
        net.timeout_all()
        leader2 = net.replicas[1]
        assert leader2.stats["unhappy_view_changes"] == 1
        net.submit(1, [b"post"], client=78)
        net.pump()
        heights = [h for i, h in enumerate(net.heights()) if i != 0]
        assert len(set(heights)) == 1 and heights[0] >= 2


class TestCaseV1:
    """Fig. 2c / Fig. 8a: the leader's snapshot hides a taller lb."""

    def setup_scenario(self):
        """Hand-build the leader-side state: highQCv = prepareQC(b1) while
        some replica reports lb = b2 (height+1, same view)."""
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        net.submit(0, [b"a"])
        net.pump()
        self.net = net
        self.crypto = net.crypto
        leader = net.replicas[2]  # leader of view 3
        self.qc_b1 = net.replicas[1].locked_qc  # prepareQC for height 1, view 1
        assert self.qc_b1.block.height == 1
        # b2: a block at height 2 that (we pretend) only one replica voted.
        self.b2 = Block(
            parent_link=self.qc_b1.block.digest,
            parent_view=self.qc_b1.block.view,
            view=1,
            height=2,
            operations=(),
            justify_digest=self.qc_b1.digest,
            proposer=0,
        )
        self.b2_summary = BlockSummary.of(self.b2, justify_in_view=True)
        self.qc_b2 = forge_qc(self.crypto, Phase.PREPARE, 1, self.b2_summary)
        # Advance everyone to view 3 (leader = replica 2) without pumping
        # the generated VIEW-CHANGE traffic.
        net.timeout_all(pump=False)
        for ctx in net.contexts:
            ctx.drain()
        net.timeout_all(pump=False)
        for ctx in net.contexts:
            ctx.drain()
        assert all(v == 3 for v in net.views())
        return leader

    def _vc(self, view: int, src: int, lb: BlockSummary, justify: Justify) -> ViewChangeMsg:
        share = self.crypto.sign_vote(src, Phase.PREPARE, view, lb)
        return ViewChangeMsg(view=view, last_voted=lb, justify=justify, share=share)

    def test_leader_proposes_shadow_normal_plus_virtual(self):
        leader = self.setup_scenario()
        justify_b1 = Justify(self.qc_b1)
        # Snapshot: r2 (leader), r3 report lb=b1; r0 reports lb=b2 but its
        # justify is still qc(b1) — so highQCv = qc(b1), bv = b2 -> Case V1.
        lb_b1 = self.qc_b1.block
        leader.on_message(2, self._vc(3, 2, lb_b1, justify_b1))
        leader.on_message(3, self._vc(3, 3, lb_b1, justify_b1))
        leader.on_message(0, self._vc(3, 0, self.b2_summary, justify_b1))
        assert leader.stats["case_v1"] == 1
        sent = [p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg)]
        assert len(sent) >= 1
        msg = sent[0]
        assert msg.shadow and len(msg.proposals) == 2
        normal, virtual = msg.proposals
        assert not normal.block.is_virtual
        assert normal.block.height == 2
        assert normal.block.parent_link == self.qc_b1.block.digest
        assert virtual.block.is_virtual
        assert virtual.block.height == 3  # qc.height + 2
        assert virtual.block.parent_view == self.qc_b1.view

    def test_shadow_blocks_share_payload_bytes(self):
        leader = self.setup_scenario()
        justify_b1 = Justify(self.qc_b1)
        lb_b1 = self.qc_b1.block
        # Give the leader a batch so the shadow saving is visible.
        from repro.consensus.block import Operation

        leader.pool.add(Operation(client_id=5, sequence=0, payload=b"z" * 64))
        leader.on_message(2, self._vc(3, 2, lb_b1, justify_b1))
        leader.on_message(3, self._vc(3, 3, lb_b1, justify_b1))
        leader.on_message(0, self._vc(3, 0, self.b2_summary, justify_b1))
        msg = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        both_full = sum(p.block.wire_size for p in msg.proposals)
        justifies = sum(p.justify.wire_size for p in msg.proposals)
        assert msg.wire_size < both_full + justifies + 8
        assert msg.proposals[0].block.operations == msg.proposals[1].block.operations

    def test_replica_locked_higher_votes_r2_with_attachment(self):
        """The Fig. 2c punchline: p1 (locked on qc(b2)) votes only for the
        virtual block and ships its lockedQC."""
        leader = self.setup_scenario()
        net = self.net
        locked_replica = net.replicas[1]
        locked_replica.locked_qc = self.qc_b2
        locked_replica.last_voted = self.b2_summary
        locked_replica.tree.add(self.b2)
        # Build the leader's V1 pre-prepare.
        justify_b1 = Justify(self.qc_b1)
        lb_b1 = self.qc_b1.block
        leader.on_message(2, self._vc(3, 2, lb_b1, justify_b1))
        leader.on_message(3, self._vc(3, 3, lb_b1, justify_b1))
        leader.on_message(0, self._vc(3, 0, self.b2_summary, justify_b1))
        pre_prepare = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        locked_replica.ctx.drain()
        locked_replica.on_message(2, pre_prepare)
        votes = [p for _, p in locked_replica.ctx.outbox if isinstance(p, VoteMsg)]
        assert len(votes) == 1  # R1 fails for both; R2 passes for virtual only
        vote = votes[0]
        assert vote.block.is_virtual
        assert vote.locked_qc == self.qc_b2
        assert locked_replica.stats["votes_r2"] == 1
        assert locked_replica.stats["votes_r1"] == 0

    def test_unlocked_replica_votes_both_shadow_proposals(self):
        leader = self.setup_scenario()
        net = self.net
        follower = net.replicas[3]
        justify_b1 = Justify(self.qc_b1)
        lb_b1 = self.qc_b1.block
        leader.on_message(2, self._vc(3, 2, lb_b1, justify_b1))
        leader.on_message(3, self._vc(3, 3, lb_b1, justify_b1))
        leader.on_message(0, self._vc(3, 0, self.b2_summary, justify_b1))
        pre_prepare = next(p for _, p in leader.ctx.outbox if isinstance(p, PrePrepareMsg))
        follower.ctx.drain()
        follower.on_message(2, pre_prepare)
        votes = [p for _, p in follower.ctx.outbox if isinstance(p, VoteMsg)]
        assert len(votes) == 2
        assert follower.stats["votes_r1"] == 2

    def test_virtual_block_commits_with_composite_justify(self):
        """Full V1 recovery: virtual pre-prepareQC + vc -> prepare ->
        commit, committing b2 (the virtual block's real parent) too."""
        leader = self.setup_scenario()
        net = self.net
        locked_replica = net.replicas[1]
        locked_replica.locked_qc = self.qc_b2
        locked_replica.last_voted = self.b2_summary
        locked_replica.tree.add(self.b2)
        justify_b1 = Justify(self.qc_b1)
        lb_b1 = self.qc_b1.block
        for ctx in net.contexts:
            ctx.drain()
        leader.on_message(2, self._vc(3, 2, lb_b1, justify_b1))
        leader.on_message(3, self._vc(3, 3, lb_b1, justify_b1))
        leader.on_message(0, self._vc(3, 0, self.b2_summary, justify_b1))
        net.crash(0)  # r0 stays silent from here (the faulty replica)
        net.pump()
        # All alive replicas commit the virtual block and its parent b2.
        for replica in (net.replicas[1], net.replicas[2], net.replicas[3]):
            assert replica.ledger.committed_height >= 3
            assert replica.ledger.is_committed(self.b2.digest)
        net.submit(2, [b"more"], client=99)
        net.pump()
        assert net.replicas[2].ledger.committed_height >= 4


class TestCaseV2:
    def test_equal_lb_with_force_unhappy_runs_v2(self):
        net = booted_net(force_unhappy=True)
        net.crash(0)
        net.delivered.clear()
        net.timeout_all()
        leader2 = net.replicas[1]
        assert leader2.stats["case_v2"] == 1
        msgs = [p for _, _, p in net.delivered if isinstance(p, PrePrepareMsg)]
        assert msgs and len(msgs[0].proposals) == 1
        assert not msgs[0].proposals[0].block.is_virtual


class TestSuccessiveViewChanges:
    def test_two_leader_crashes(self):
        net = booted_net()
        net.crash(0)
        net.timeout_all()
        net.submit(1, [b"v2-block"], client=95)
        net.pump()
        net.crash(1)
        net.timeout_all()
        net.submit(2, [b"v3-block"], client=96)
        net.pump()
        alive = [net.replicas[2], net.replicas[3]]
        heights = [r.ledger.committed_height for r in alive]
        assert len(set(heights)) == 1 and heights[0] >= 3
        assert all(r.cview == 3 for r in alive)

    def test_view_change_with_nothing_committed(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        net.crash(0)
        net.timeout_all()
        net.submit(1, [b"first"], client=97)
        net.pump()
        heights = [h for i, h in enumerate(net.heights()) if i != 0]
        assert len(set(heights)) == 1 and heights[0] >= 1


class TestViewChangeValidation:
    def test_leader_ignores_stale_view_change(self):
        net = booted_net()
        leader = net.replicas[0]
        before = {k: v for k, v in leader.stats.items() if k != "messages_handled"}
        stale = ViewChangeMsg(view=1, last_voted=None, justify=None, share=None)
        leader.on_message(1, stale)
        after = {k: v for k, v in leader.stats.items() if k != "messages_handled"}
        assert after == before

    def test_leader_rejects_bad_share(self):
        net = booted_net()
        net.crash(0)
        # Replica 1 becomes leader of view 2; feed it a VC with a bogus share.
        leader2 = net.replicas[1]
        lb = leader2.last_voted
        bad = ViewChangeMsg(
            view=2,
            last_voted=lb,
            justify=leader2.high_qc,
            share=net.crypto.sign_vote(3, Phase.PREPARE, 7, lb),  # wrong view
        )
        leader2._advance_view(2)
        bucket_before = len(leader2._vc_messages.get(2, {}))
        leader2.on_message(3, bad)
        assert len(leader2._vc_messages.get(2, {})) == bucket_before
