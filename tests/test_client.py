"""The client subsystem: sessions, reply certificates, dedup, reads.

Unit tests drive the sans-io pieces (collector, tracker, session table,
session) directly; integration tests run real protocol clients over the
DES and over the asyncio runtime, including the adversarial cases the
subsystem exists for — forged replies, duplicate delivery, and leader
changes mid-request.
"""

from __future__ import annotations

import asyncio
from collections import Counter

import pytest

from repro.client import (
    ClientConfig,
    ClientService,
    ClientSession,
    LeaderTracker,
    ReplyCollector,
    SessionTable,
    result_digest_of,
)
from repro.common.errors import ConfigError
from repro.consensus.context import LocalContext
from repro.consensus.messages import ClientReply, ClientRequest, ReadReply
from repro.crypto.hashing import digest_of


def reply(client=9, seq=1, replica=0, result=b"", digest=None, view=1):
    return ClientReply(
        client_id=client,
        sequence=seq,
        replica=replica,
        result=result,
        result_digest=digest
        if digest is not None
        else result_digest_of(client, seq, result),
        view=view,
    )


class TestClientConfig:
    def test_defaults_valid(self):
        config = ClientConfig()
        assert config.mode == "hub" and config.reads == "commit"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "fake"},
            {"reads": "dirty"},
            {"retry_timeout": 0.0},
            {"backoff": 0.5},
            {"max_backoff": 0.1},
            {"jitter": -0.1},
            {"lease_duration": -1.0},
            {"coalesce": -0.001},
            {"max_inflight": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            ClientConfig(**kwargs)


class TestReplyCollector:
    def test_certifies_at_f_plus_one_matching(self):
        collector = ReplyCollector(f=1)
        digest = result_digest_of(9, 1, b"r")
        assert collector.add(9, 1, 0, digest, view=1, result=b"r") is None
        cert = collector.add(9, 1, 2, digest, view=1, result=b"r")
        assert cert is not None
        assert cert.replicas == frozenset({0, 2})
        assert cert.result_digest == digest
        assert cert.result == b"r"

    def test_forged_minority_never_certifies(self):
        # f colluding forgers agree on a forged digest; that is still one
        # reply short of a certificate, forever.
        collector = ReplyCollector(f=1)
        forged = digest_of("forged")
        assert collector.add(9, 1, 3, forged, view=1) is None
        honest = result_digest_of(9, 1, b"")
        assert collector.add(9, 1, 0, honest, view=1) is None
        cert = collector.add(9, 1, 1, honest, view=1)
        assert cert is not None
        assert cert.result_digest == honest
        assert 3 not in cert.replicas
        assert collector.mismatches >= 1

    def test_one_vote_per_replica(self):
        # A replica re-sending a different digest cannot vote twice.
        collector = ReplyCollector(f=1)
        a, b = digest_of("a"), digest_of("b")
        assert collector.add(9, 1, 0, a, view=1) is None
        assert collector.add(9, 1, 0, b, view=1) is None  # contradiction
        assert collector.mismatches == 1
        assert collector.add(9, 1, 0, a, view=1) is None  # still one vote

    def test_certifies_once(self):
        collector = ReplyCollector(f=1)
        digest = result_digest_of(9, 1, b"")
        collector.add(9, 1, 0, digest, view=1)
        assert collector.add(9, 1, 1, digest, view=1) is not None
        assert collector.add(9, 1, 2, digest, view=1) is None

    def test_certificate_view_is_max_matching(self):
        collector = ReplyCollector(f=1)
        digest = result_digest_of(9, 1, b"")
        collector.add(9, 1, 0, digest, view=2)
        cert = collector.add(9, 1, 1, digest, view=3)
        assert cert.view == 3


class TestLeaderTracker:
    def test_routes_to_believed_leader(self):
        tracker = LeaderTracker(num_replicas=4)
        assert tracker.target() == tracker.leader_of(1) == 0

    def test_observe_advances_view(self):
        tracker = LeaderTracker(num_replicas=4)
        assert tracker.observe(3)
        assert tracker.target() == tracker.leader_of(3) == 2
        assert not tracker.observe(2)  # views never go backward
        assert tracker.view == 3

    def test_timeout_falls_back_to_broadcast(self):
        tracker = LeaderTracker(num_replicas=4)
        tracker.on_timeout()
        assert tracker.target() == LeaderTracker.BROADCAST

    def test_certification_restores_unicast(self):
        tracker = LeaderTracker(num_replicas=4)
        tracker.on_timeout()
        tracker.on_certified(2)
        assert tracker.target() == 1


class TestSessionTable:
    def test_records_and_replays(self):
        table = SessionTable()
        digest = result_digest_of(9, 1, b"r")
        table.record(9, 1, b"r", digest)
        assert table.committed(9, 1)
        assert table.cached_reply(9, 1) == (b"r", digest)
        assert not table.committed(9, 2)

    def test_older_sequences_stay_committed(self):
        table = SessionTable()
        table.record(9, 5, b"r5", digest_of("r5"))
        assert table.committed(9, 3)  # monotonic sequences: 3 < 5 committed
        assert table.cached_reply(9, 3) is None  # but its reply is gone
        table.record(9, 4, b"r4", digest_of("r4"))  # stale record ignored
        assert table.last_sequence(9) == 5


class TestClientSession:
    def make(self, config=None, f=1, n=4):
        ctx = LocalContext(9, n)
        results = []
        session = ClientSession(
            9,
            ctx,
            config or ClientConfig(mode="real"),
            n,
            f,
            on_result=lambda seq, outcome, latency: results.append((seq, outcome)),
        )
        return session, ctx, results

    def test_submit_targets_leader_and_arms_timer(self):
        session, ctx, _ = self.make()
        seq = session.submit(b"op")
        assert seq == 1
        assert ctx.drain() == [(0, ClientRequest(client_id=9, sequence=1, payload=b"op"))]
        assert session._timer_name in ctx.timers

    def test_certificate_completes_request(self):
        session, ctx, results = self.make()
        session.submit(b"op")
        ctx.drain()
        session.on_message(0, reply(replica=0))
        assert results == []
        session.on_message(1, reply(replica=1))
        assert len(results) == 1
        seq, cert = results[0]
        assert seq == 1 and cert.replicas == frozenset({0, 1})
        assert not session.inflight
        assert session._timer_name not in ctx.timers  # idle: timer cancelled

    def test_forged_replies_never_complete(self):
        session, ctx, results = self.make()
        session.submit(b"op")
        ctx.drain()
        session.on_message(3, reply(replica=3, digest=digest_of("forged")))
        session.on_message(0, reply(replica=0))
        assert results == []  # forged + honest disagree: no quorum yet
        session.on_message(1, reply(replica=1))
        assert len(results) == 1
        assert 3 not in results[0][1].replicas
        assert session.collector.mismatches >= 1

    def test_timeout_retransmits_to_all_with_backoff(self):
        session, ctx, _ = self.make(ClientConfig(mode="real", jitter=0.0))
        session.submit(b"op")
        ctx.drain()
        ctx.fire_timer(session._timer_name)
        sends = ctx.drain()
        assert [dst for dst, _ in sends] == [0, 1, 2, 3]
        assert session.retransmits == 1
        assert session.tracker.target() == LeaderTracker.BROADCAST
        deadline, _ = ctx.timers[session._timer_name]
        # Second delay is backed off (2s -> 4s by default).
        assert deadline - ctx.now == pytest.approx(4.0)

    def test_commit_read_orders_a_get(self):
        from repro.common.encoding import encode

        session, ctx, _ = self.make(ClientConfig(mode="real", reads="commit"))
        session.read(b"k")
        sends = ctx.drain()
        assert isinstance(sends[0][1], ClientRequest)
        assert sends[0][1].payload == encode(["get", b"k"])

    def test_lease_read_redirects_once_then_serves(self):
        session, ctx, results = self.make(
            ClientConfig(mode="real", reads="leader-lease")
        )
        seq = session.read(b"k")
        ctx.drain()
        session.on_message(
            2, ReadReply(client_id=9, sequence=seq, replica=2, view=3, ok=False)
        )
        # Redirect re-aims at the leader of the reported view.
        assert ctx.drain()[0][0] == session.tracker.leader_of(3) == 2
        session.on_message(
            2,
            ReadReply(
                client_id=9, sequence=seq, replica=2, view=3, value=b"v", ok=True
            ),
        )
        assert results == [(seq, b"v")]
        assert session.redirects == 1 and session.reads_served == 1


# ---------------------------------------------------------------------------
# DES integration


def _des_cluster(f=1, seed=1, base_timeout=120.0, protocol="marlin"):
    from repro.harness.des_runtime import DESCluster
    from repro.harness.scenarios import _experiment

    experiment = _experiment(f, seed=seed, base_timeout=base_timeout, max_timeout=240.0)
    return DESCluster(experiment, protocol=protocol, crypto_mode="null")


def _closed_loop_endpoints(cluster, count, config, first_id=None):
    """Closed-loop DES protocol clients: each result releases the next op."""
    from repro.client.runtime import DESClientEndpoint

    n = cluster.experiment.cluster.num_replicas
    first_id = first_id if first_id is not None else n
    endpoints = []
    results: list[tuple[float, int, int]] = []  # (time, client, seq)

    def make_sink(index):
        def sink(seq, outcome, latency):
            results.append((cluster.sim.now, index, seq))
            endpoints[index].session.submit(b"op")

        return sink

    for index in range(count):
        endpoints.append(
            DESClientEndpoint(
                cluster, first_id + index, config, on_result=make_sink(index)
            )
        )
    return endpoints, results


class TestClientDES:
    def test_real_mode_agrees_with_hub(self):
        """Acceptance: same throughput through real clients as the hub model."""
        from repro.harness.workload import ClosedLoopClients

        measured = {}
        for mode in ("hub", "real"):
            cluster = _des_cluster()
            pool = ClosedLoopClients(
                cluster, num_clients=32, token_weight=1, target="leader",
                warmup=3.0, mode=mode,
                client_config=ClientConfig(mode="real") if mode == "real" else None,
            )
            cluster.start()
            cluster.sim.schedule(0.01, pool.start)
            cluster.run(until=8.0)
            cluster.assert_safety()
            measured[mode] = pool.throughput.throughput(duration=5.0)
        assert measured["real"] == pytest.approx(measured["hub"], rel=0.05)

    def test_duplicate_delivery_commits_once(self):
        """A replayed request is answered from cache, never re-committed."""
        cluster = _des_cluster()
        services = [
            ClientService(r, ClientConfig(mode="real")).install()
            for r in cluster.replicas
        ]
        config = ClientConfig(mode="real")
        endpoints, results = _closed_loop_endpoints(cluster, 2, config)
        commits: Counter = Counter()
        cluster.replicas[1].commit_listeners.append(
            lambda block, when: commits.update(
                (op.client_id, op.sequence) for op in block.operations
            )
        )
        cluster.start()
        cluster.sim.schedule(0.05, lambda: [e.session.submit(b"op") for e in endpoints])

        def replay_first_request():
            # Re-deliver client 4's first request, verbatim, to everyone.
            request = ClientRequest(
                client_id=endpoints[0].client_id, sequence=1, payload=b"op"
            )
            for rid in range(4):
                endpoints[0].ctx.send(rid, request)

        cluster.sim.schedule_at(3.0, replay_first_request)
        cluster.run(until=6.0)
        cluster.assert_safety()
        assert results, "clients made no progress"
        assert max(commits.values()) == 1  # no (client, seq) committed twice
        assert sum(s.sessions.replays for s in services) >= 4

    def test_reply_forger_never_certifies(self):
        """Satellite: a forged reply never enters any certificate."""
        from repro.harness.failures import ReplyForger, make_byzantine

        cluster = _des_cluster()
        for replica in cluster.replicas:
            ClientService(replica, ClientConfig(mode="real")).install()
        certificates = []
        config = ClientConfig(mode="real")
        endpoints, _ = _closed_loop_endpoints(cluster, 4, config)
        for endpoint in endpoints:
            inner = endpoint.session.on_result

            def capture(seq, outcome, latency, inner=inner):
                certificates.append(outcome)
                inner(seq, outcome, latency)

            endpoint.session.on_result = capture
        make_byzantine(cluster, 2, ReplyForger())
        cluster.start()
        cluster.sim.schedule(0.05, lambda: [e.session.submit(b"op") for e in endpoints])
        cluster.run(until=6.0)
        cluster.assert_safety()
        assert len(certificates) > 10
        for cert in certificates:
            assert 2 not in cert.replicas
            assert cert.result_digest == result_digest_of(
                cert.client_id, cert.sequence, b""
            )
        assert sum(e.session.collector.mismatches for e in endpoints) > 0

    def test_view_change_redirection(self):
        """Satellite: clients converge on the new leader after a crash."""
        cluster = _des_cluster(base_timeout=1.0)
        for replica in cluster.replicas:
            ClientService(replica, ClientConfig(mode="real")).install()
        config = ClientConfig(mode="real", retry_timeout=1.0)
        endpoints, results = _closed_loop_endpoints(cluster, 4, config)
        cluster.start()
        cluster.sim.schedule(0.05, lambda: [e.session.submit(b"op") for e in endpoints])
        cluster.crash_at(0, 2.0)
        cluster.run(until=10.0)
        cluster.assert_safety()
        new_view = max(r.cview for r in cluster.replicas[1:])
        assert new_view >= 2
        post_crash = [t for t, _, _ in results if t > 5.0]
        assert post_crash, "no progress after the view change"
        for endpoint in endpoints:
            session = endpoint.session
            # Converged: believed leader matches the cluster, unicast again.
            assert session.tracker.view == new_view
            assert session.tracker.strikes == 0
            assert session.tracker.target() == session.tracker.leader_of(new_view)
            # One outage, a couple of retransmit rounds at most.
            assert 1 <= session.retransmits <= 4

    def test_lease_read_never_served_stale_across_view_change(self):
        """Satellite: a deposed leader cannot serve a leader-lease read.

        Partition the view-1 leader away, keep writing through the new
        leader, and aim a read at the old one.  The old leader's quorum
        check can never complete, so the read is only ever served — with
        fresh state — after redirection to the real leader.
        """
        from repro.client.runtime import DESClientEndpoint

        cluster = _des_cluster(seed=2, base_timeout=1.0)
        read_config = ClientConfig(
            mode="real", reads="leader-lease", retry_timeout=2.5
        )
        for replica in cluster.replicas:
            ClientService(
                replica,
                read_config,
                read_fn=lambda key, r=replica: b"%d" % r.ledger.committed_height,
            ).install()

        writer = DESClientEndpoint(
            cluster, 4, ClientConfig(mode="real", retry_timeout=0.6)
        )
        writer.session.on_result = lambda seq, outcome, latency: writer.session.submit(b"w")
        reads: list[bytes] = []
        reader = DESClientEndpoint(
            cluster, 5, read_config,
            on_result=lambda seq, outcome, latency: reads.append(outcome),
        )

        state = {}
        cluster.start()
        cluster.sim.schedule(0.05, lambda: writer.session.submit(b"w"))

        def isolate_leader():
            state["h0"] = cluster.replicas[0].ledger.committed_height
            cluster.network.partition([0], [1, 2, 3])

        cluster.sim.schedule_at(2.0, isolate_leader)
        cluster.sim.schedule_at(2.05, lambda: reader.session.read(b"k"))
        cluster.sim.schedule_at(5.5, lambda: reader.session.read(b"k"))
        cluster.run(until=9.0)
        cluster.assert_safety()

        # The deposed leader parked the read and never served it.
        assert cluster.replicas[0].client_service.reads_served == 0
        assert reader.session.redirects >= 1
        assert len(reads) == 2
        # The second read (after commits resumed in the new view) must see
        # state past the old leader's frozen height — the stale answer the
        # quorum check exists to prevent.
        assert int(reads[1]) > state["h0"]

    def test_admission_window_sheds_and_recovers(self):
        """Overload sheds beyond max_inflight; backoff retries still land."""
        from repro.harness.workload import ClosedLoopClients

        cluster = _des_cluster()
        pool = ClosedLoopClients(
            cluster, num_clients=16, token_weight=1, target="leader",
            warmup=0.0, mode="real",
            client_config=ClientConfig(mode="real", retry_timeout=1.0, max_inflight=4),
        )
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=10.0)
        cluster.assert_safety()
        assert pool.shed > 0
        assert pool.certified > 0


# ---------------------------------------------------------------------------
# Asyncio runtime integration


def run(coro):
    return asyncio.run(coro)


async def _wait_all_applied(cluster, count, timeout=10.0):
    deadline = asyncio.get_event_loop().time() + timeout
    while any(node.app.applied < count for node in cluster.nodes if node.alive):
        if asyncio.get_event_loop().time() > deadline:
            raise TimeoutError("replicas never applied the expected ops")
        await asyncio.sleep(0.02)


class TestClientAsyncio:
    def test_local_client_certifies_and_reads(self):
        from repro.runtime.app import KVStateMachine
        from repro.runtime.cluster import LocalCluster

        async def main():
            async with LocalCluster(f=1, protocol="marlin", batch_size=4) as cluster:
                client = cluster.client()
                cert = await client.submit(KVStateMachine.encode_set(b"k", b"v"))
                assert cert.replicas and len(cert.replicas) >= 2
                assert cert.result_digest == result_digest_of(
                    client.client_id, cert.sequence, b""
                )
                read_cert = await client.read(b"k")
                assert read_cert.result == b"v"

        run(main())

    def test_duplicate_delivery_applies_once(self):
        """Satellite: replayed request — applied count and digest unchanged."""
        from repro.runtime.app import KVStateMachine
        from repro.runtime.cluster import LocalCluster

        async def main():
            async with LocalCluster(f=1, protocol="marlin", batch_size=4) as cluster:
                client = cluster.client()
                payload = KVStateMachine.encode_set(b"k", b"v")
                cert = await client.submit(payload)
                await _wait_all_applied(cluster, 1)
                applied_before = [n.app.applied for n in cluster.nodes]
                digests_before = cluster.state_digests()

                request = ClientRequest(
                    client_id=client.client_id, sequence=cert.sequence, payload=payload
                )
                for rid in range(4):
                    client.ctx.send(rid, request)
                await asyncio.sleep(0.3)

                assert [n.app.applied for n in cluster.nodes] == applied_before
                assert cluster.state_digests() == digests_before
                replays = [
                    n.replica.client_service.sessions.replays for n in cluster.nodes
                ]
                assert all(count >= 1 for count in replays)

        run(main())

    def test_view_change_redirection(self):
        """Satellite: the asyncio client re-aims at the post-crash leader."""
        from repro.runtime.cluster import LocalCluster

        async def main():
            async with LocalCluster(
                f=1, protocol="marlin", batch_size=4, base_timeout=0.4
            ) as cluster:
                client = cluster.client(
                    config=ClientConfig(mode="real", retry_timeout=0.5)
                )
                await client.submit(b"")
                cluster.crash(0)
                cert = await client.submit(b"")
                assert cert is not None
                tracker = client.session.tracker
                assert tracker.view >= 2
                assert tracker.strikes == 0
                assert tracker.target() == tracker.leader_of(tracker.view)

        run(main())

    def test_forger_plus_crashed_leader_exactly_once(self):
        """Acceptance: ReplyForger + crashed leader; every request certifies
        exactly once, state digests agree, zero double-applies."""
        from repro.harness.failures import ReplyForger
        from repro.runtime.app import KVStateMachine
        from repro.runtime.cluster import LocalCluster

        async def main():
            async with LocalCluster(
                f=1, protocol="marlin", batch_size=4, base_timeout=0.4
            ) as cluster:
                forger = ReplyForger()
                ctx = cluster.nodes[3].replica.ctx
                original_send = ctx.send
                ctx.send = lambda dst, payload: forger.outbound(
                    0.0, dst, payload, original_send
                )
                cluster.crash(0)

                client = cluster.client(
                    config=ClientConfig(mode="real", retry_timeout=0.5)
                )
                total = 5
                for index in range(total):
                    cert = await client.submit(
                        KVStateMachine.encode_set(b"k%d" % index, b"v")
                    )
                    assert cert.sequence == index + 1
                    assert 3 not in cert.replicas  # forged replies never count

                assert client.session.certified == total
                await _wait_all_applied(cluster, total)
                alive = [n for n in cluster.nodes[1:]]
                assert all(n.app.applied == total for n in alive)  # no double-applies
                digests = {n.app.state_digest() for n in alive}
                assert len(digests) == 1

        run(main())
