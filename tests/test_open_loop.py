"""The open-loop (Poisson) load generator."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.common.errors import ConfigError
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import OpenLoopClients


def run_rate(rate: float, sim_time: float = 20.0, **kwargs):
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=30000, base_timeout=60.0), seed=3
    )
    cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
    pool = OpenLoopClients(cluster, rate_tps=rate, token_weight=64, warmup=5.0, **kwargs)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.run(until=sim_time)
    cluster.assert_safety()
    return cluster, pool


class TestOpenLoop:
    def test_delivers_offered_load_below_saturation(self):
        _, pool = run_rate(20_000)
        assert pool.summary()["throughput_tps"] == pytest.approx(20_000, rel=0.08)
        assert pool.summary()["mean_latency"] < 0.6

    def test_rate_conservation(self):
        _, pool = run_rate(10_000)
        # generated = acknowledged + backlog (nothing lost or duplicated).
        assert pool.generated_ops == pool.acknowledged_ops + pool.backlog_ops

    def test_latency_grows_with_offered_load(self):
        _, low = run_rate(5_000)
        _, high = run_rate(40_000)
        assert high.summary()["mean_latency"] > low.summary()["mean_latency"]

    def test_overload_builds_backlog(self):
        """Offering far beyond the saturation point must queue, not crash."""
        _, pool = run_rate(200_000, sim_time=15.0)
        assert pool.backlog_ops > 50_000
        # The system still makes progress at its capacity.
        assert pool.completed_ops > 100_000

    def test_invalid_parameters(self):
        experiment = ExperimentConfig(cluster=ClusterConfig.for_f(1))
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
        with pytest.raises(ConfigError):
            OpenLoopClients(cluster, rate_tps=0)
        with pytest.raises(ConfigError):
            OpenLoopClients(cluster, rate_tps=10, target="moon")

    def test_open_and_closed_loop_agree_at_light_load(self):
        """Both methodologies must measure the same uncongested latency."""
        from repro.harness.workload import ClosedLoopClients

        _, open_pool = run_rate(2_000)
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=30000, base_timeout=60.0), seed=3
        )
        cluster = DESCluster(experiment, protocol="marlin", crypto_mode="null")
        closed = ClosedLoopClients(cluster, num_clients=640, token_weight=64, warmup=5.0)
        cluster.start()
        cluster.sim.schedule(0.01, closed.start)
        cluster.run(until=20.0)
        open_lat = open_pool.summary()["mean_latency"]
        closed_lat = closed.summary()["mean_latency"]
        assert open_lat == pytest.approx(closed_lat, rel=0.35)
