"""Test harness utilities: a synchronous in-memory network and QC forging.

:class:`LocalNet` runs ``n`` replicas over
:class:`~repro.consensus.context.LocalContext` and pumps their outboxes in
deterministic rounds, with optional message filtering — the tool used to
construct the paper's Fig. 2 view-change snapshots exactly.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.config import ClusterConfig
from repro.consensus.context import LocalContext
from repro.consensus.crypto_service import CryptoService, ThresholdCryptoService
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.consensus.replica_base import TIMER_VIEW, ReplicaBase
from repro.crypto.keys import KeyRegistry

DropRule = Callable[[int, int, Any], bool]
"""drop(src, dst, payload) -> True to drop the message."""


def make_crypto(n: int = 4) -> ThresholdCryptoService:
    config = ClusterConfig.for_f((n - 1) // 3)
    return ThresholdCryptoService(KeyRegistry(n, config.quorum, seed=b"localnet"))


def forge_qc(
    crypto: CryptoService, phase: Phase, view: int, block: BlockSummary, signers: list[int] | None = None
) -> QuorumCertificate:
    """Build a genuine QC by having a quorum of replicas sign."""
    signers = signers if signers is not None else list(range(crypto.quorum))
    acc = crypto.accumulator(phase, view, block)
    for signer in signers:
        acc.add(signer, crypto.sign_vote(signer, phase, view, block))
    return crypto.make_qc(phase, view, block, acc)


class LocalNet:
    """Deterministic synchronous message pump over LocalContext replicas."""

    def __init__(
        self,
        replica_cls: type[ReplicaBase],
        n: int = 4,
        crypto: CryptoService | None = None,
        config: ClusterConfig | None = None,
        **replica_kwargs: Any,
    ) -> None:
        self.config = config or ClusterConfig.for_f((n - 1) // 3, batch_size=8)
        self.crypto = crypto or make_crypto(n)
        self.contexts = [LocalContext(i, n) for i in range(n)]
        self.replicas = [
            replica_cls(
                replica_id=i,
                config=self.config,
                ctx=self.contexts[i],
                crypto=self.crypto,
                **replica_kwargs,
            )
            for i in range(n)
        ]
        self.crashed: set[int] = set()
        self.delivered: list[tuple[int, int, Any]] = []

    def start(self, pump: bool = True) -> None:
        for replica in self.replicas:
            replica.start()
        if pump:
            self.pump()

    def crash(self, replica_id: int) -> None:
        self.crashed.add(replica_id)

    def pump(self, drop: DropRule | None = None, max_rounds: int = 200) -> int:
        """Deliver queued messages round by round until quiescent.

        Returns the number of messages delivered.  ``drop`` filters
        individual deliveries (the snapshot-construction tool).  When the
        network quiesces with sync-retry timers armed, those fire (block
        fetch is timer-driven) before declaring quiescence.
        """
        count = 0
        sync_rounds = 0
        for _ in range(max_rounds):
            batch: list[tuple[int, int, Any]] = []
            for src, ctx in enumerate(self.contexts):
                for dst, payload in ctx.drain():
                    batch.append((src, dst, payload))
            if not batch:
                if sync_rounds < 8 and self._fire_sync_retries():
                    sync_rounds += 1
                    continue
                return count
            for src, dst, payload in batch:
                if src in self.crashed or dst in self.crashed:
                    continue
                if drop is not None and drop(src, dst, payload):
                    continue
                self.delivered.append((src, dst, payload))
                self.replicas[dst].on_message(src, payload)
                count += 1
        raise AssertionError("pump did not quiesce (possible message storm)")

    def _fire_sync_retries(self) -> bool:
        fired = False
        for replica_id, ctx in enumerate(self.contexts):
            if replica_id in self.crashed:
                continue
            if "sync-retry" in ctx.timers:
                ctx.fire_timer("sync-retry")
                fired = True
        return fired

    def timeout_all(self, pump: bool = True, drop: DropRule | None = None) -> None:
        """Fire every live replica's view timer (simultaneous timeout)."""
        for replica_id, ctx in enumerate(self.contexts):
            if replica_id in self.crashed:
                continue
            if TIMER_VIEW in ctx.timers:
                ctx.fire_timer(TIMER_VIEW)
        if pump:
            self.pump(drop=drop)

    def submit(self, replica_id: int, payloads: list[bytes], client: int = 50) -> None:
        from repro.consensus.messages import ClientRequest

        replica = self.replicas[replica_id]
        for seq, payload in enumerate(payloads):
            replica.on_message(-1, ClientRequest(client_id=client, sequence=seq, payload=payload))

    def heights(self) -> list[int]:
        return [r.ledger.committed_height for r in self.replicas]

    def views(self) -> list[int]:
        return [r.cview for r in self.replicas]
