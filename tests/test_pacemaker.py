"""Pacemaker behaviour: back-off, progress resets, rotation mode."""

from __future__ import annotations

import pytest

from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.replica_base import TIMER_VIEW

from tests.helpers import LocalNet


class TestExponentialBackoff:
    def test_timeout_grows_geometrically(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start(pump=False)
        for ctx in net.contexts:
            ctx.drain()
        replica = net.replicas[3]
        base = replica.config.base_timeout
        multiplier = replica.config.timeout_multiplier
        timeouts = [replica.current_timeout]
        for _ in range(4):
            net.contexts[3].fire_timer(TIMER_VIEW)
            net.contexts[3].drain()
            timeouts.append(replica.current_timeout)
        assert timeouts[0] == base
        for previous, current in zip(timeouts, timeouts[1:]):
            assert current == pytest.approx(previous * multiplier)

    def test_backoff_capped_at_max(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start(pump=False)
        for ctx in net.contexts:
            ctx.drain()
        replica = net.replicas[3]
        for _ in range(40):
            net.contexts[3].fire_timer(TIMER_VIEW)
            net.contexts[3].drain()
        assert replica.current_timeout == replica.config.max_timeout

    def test_progress_resets_backoff(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        # Back off replica 1's timer a couple of times without real VCs.
        replica = net.replicas[1]
        replica.current_timeout = replica.config.base_timeout * 4
        net.submit(0, [b"progress"])
        net.pump()
        assert replica.current_timeout == replica.config.base_timeout

    def test_timer_rearmed_on_view_entry(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        for replica_id, ctx in enumerate(net.contexts):
            assert TIMER_VIEW in ctx.timers, f"r{replica_id} has no view timer"


class TestRotationMode:
    def make_net(self):
        net = LocalNet(MarlinReplica, n=4, rotation_interval=1.0)
        net.start()
        return net

    def test_rotation_fires_regardless_of_progress(self):
        net = self.make_net()
        # Commit progress...
        net.submit(0, [b"op"])
        net.pump()
        replica = net.replicas[1]
        deadline, _ = replica.ctx.timers[TIMER_VIEW]
        # ...must NOT defer the rotation deadline.
        net.submit(0, [b"op2"], client=60)
        net.pump()
        deadline_after, _ = replica.ctx.timers[TIMER_VIEW]
        assert deadline_after == deadline

    def test_rotation_advances_views(self):
        net = self.make_net()
        net.timeout_all()
        assert all(v == 2 for v in net.views())
        net.timeout_all()
        assert all(v == 3 for v in net.views())

    def test_rotation_does_not_back_off(self):
        net = self.make_net()
        replica = net.replicas[2]
        before = replica.current_timeout
        net.timeout_all()
        assert replica.current_timeout == before


class TestViewMonotonicity:
    def test_advance_view_never_goes_backwards(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        replica = net.replicas[1]
        replica._advance_view(5)
        assert replica.cview == 5
        replica._advance_view(3)
        assert replica.cview == 5
        replica._advance_view(5)
        assert replica.cview == 5

    def test_view_change_stat_counts(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        replica = net.replicas[1]
        entered = replica.stats["views_entered"]
        changes = replica.stats["view_changes"]
        replica._advance_view(2)
        replica._advance_view(2)  # duplicate: no-op
        # A QC-driven advance enters a view but is not a "view change"
        # (those count only timeout/failure-triggered transitions).
        assert replica.stats["views_entered"] == entered + 1
        assert replica.stats["view_changes"] == changes

    def test_timeout_counts_as_view_change(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        replica = net.replicas[1]
        entered = replica.stats["views_entered"]
        changes = replica.stats["view_changes"]
        replica._advance_view(replica.cview + 1, reason="timeout")
        assert replica.stats["views_entered"] == entered + 1
        assert replica.stats["view_changes"] == changes + 1
