"""Closed-loop clients, metrics, and op conservation."""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, NetworkProfile
from repro.common.errors import ConfigError
from repro.common.utils import chunked, format_bytes, mean, percentile
from repro.harness.des_runtime import DESCluster
from repro.harness.metrics import LatencyRecorder, RunResult, ThroughputMeter
from repro.harness.workload import ClosedLoopClients


class TestLatencyRecorder:
    def test_mean_weighted(self):
        rec = LatencyRecorder()
        rec.record(1.0, 0.1, weight=1)
        rec.record(2.0, 0.3, weight=3)
        assert rec.mean() == pytest.approx(0.25)
        assert rec.count == 4

    def test_window_filters(self):
        rec = LatencyRecorder(window_start=5.0, window_end=10.0)
        rec.record(1.0, 0.1)
        rec.record(6.0, 0.2)
        rec.record(11.0, 0.3)
        assert rec.count == 1
        assert rec.mean() == pytest.approx(0.2)

    def test_percentiles(self):
        rec = LatencyRecorder()
        for i in range(100):
            rec.record(1.0, i / 100.0)
        assert rec.p50() == pytest.approx(0.5, abs=0.02)
        assert rec.p99() >= 0.97

    def test_empty(self):
        rec = LatencyRecorder()
        assert rec.mean() == 0.0 and rec.p50() == 0.0


class TestThroughputMeter:
    def test_rate_over_window(self):
        meter = ThroughputMeter()
        meter.record(1.0, 100)
        meter.record(3.0, 100)
        assert meter.throughput() == pytest.approx(100.0)
        assert meter.throughput(duration=4.0) == pytest.approx(50.0)

    def test_window_excludes_warmup(self):
        meter = ThroughputMeter(window_start=2.0)
        meter.record(1.0, 999)
        meter.record(3.0, 10)
        assert meter.ops == 10

    def test_empty(self):
        assert ThroughputMeter().throughput() == 0.0


class TestUtils:
    def test_percentile_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile([], 50) == 0.0

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_mean_empty(self):
        assert mean([]) == 0.0

    def test_chunked(self):
        assert [list(c) for c in chunked([1, 2, 3, 4, 5], 2)] == [[1, 2], [3, 4], [5]]
        with pytest.raises(ValueError):
            list(chunked([1], 0))

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2048) == "2.0 KiB"

    def test_run_result_row(self):
        row = RunResult(
            clients=100,
            throughput_tps=12345.0,
            mean_latency=0.1,
            p50_latency=0.1,
            p99_latency=0.2,
            blocks_committed=10,
            sim_time=5.0,
        ).as_row()
        assert "12.35" in row and "100" in row


class TestClosedLoopClients:
    def _cluster(self, **kwargs):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=100),
            network=NetworkProfile.lan(),
            seed=3,
        )
        return DESCluster(experiment, protocol="marlin", crypto_mode="null", **kwargs)

    def test_in_flight_never_exceeds_population(self):
        cluster = self._cluster()
        pool = ClosedLoopClients(cluster, num_clients=10, token_weight=1)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=2.0)
        outstanding = len(pool._submit_time)
        assert outstanding <= pool.num_tokens
        assert pool.completed_ops > 0

    def test_token_weight_scales_ops(self):
        cluster = self._cluster()
        pool = ClosedLoopClients(cluster, num_clients=40, token_weight=10)
        assert pool.num_tokens == 4
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=2.0)
        assert pool.completed_ops % 10 == 0
        assert pool.completed_ops > 0

    def test_acks_require_f_plus_one(self):
        cluster = self._cluster()
        pool = ClosedLoopClients(cluster, num_clients=4, token_weight=1)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=1.0)
        # Latency samples only exist for ops with >= f+1 replica replies.
        assert pool.latency.count == pool.completed_ops

    def test_noop_workload(self):
        cluster = self._cluster()
        pool = ClosedLoopClients(cluster, num_clients=8, token_weight=1, request_size=0, reply_size=0)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=2.0)
        assert pool.completed_ops > 0

    def test_invalid_parameters(self):
        cluster = self._cluster()
        with pytest.raises(ConfigError):
            ClosedLoopClients(cluster, num_clients=0)
        with pytest.raises(ConfigError):
            ClosedLoopClients(cluster, num_clients=4, target="nowhere")

    def test_summary_keys(self):
        cluster = self._cluster()
        pool = ClosedLoopClients(cluster, num_clients=4, token_weight=1)
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.run(until=1.0)
        summary = pool.summary()
        assert set(summary) == {"throughput_tps", "mean_latency", "p50_latency", "p99_latency"}
        assert summary["mean_latency"] > 0
