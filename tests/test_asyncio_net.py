"""Asyncio transports: in-process queues and TCP framing."""

from __future__ import annotations

import asyncio

import pytest

from repro.common.errors import NetworkError, UnknownPeer
from repro.network.asyncio_net import AsyncioNetwork, TcpNetwork


def run(coro):
    return asyncio.run(coro)


class TestAsyncioNetwork:
    def test_delivery(self):
        async def main():
            net = AsyncioNetwork()
            inbox: list[tuple[int, object]] = []
            net.register(0, lambda s, p: inbox.append((s, p)))
            net.register(1, lambda s, p: inbox.append((s, p)))
            net.send(0, 1, "hello")
            await asyncio.sleep(0.01)
            await net.close()
            assert inbox == [(0, "hello")]

        run(main())

    def test_fifo_per_pair(self):
        async def main():
            net = AsyncioNetwork()
            inbox: list[object] = []
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: inbox.append(p))
            for i in range(20):
                net.send(0, 1, i)
            await asyncio.sleep(0.02)
            await net.close()
            assert inbox == list(range(20))

        run(main())

    def test_unknown_peer(self):
        async def main():
            net = AsyncioNetwork()
            net.register(0, lambda s, p: None)
            with pytest.raises(UnknownPeer):
                net.send(0, 9, "x")
            await net.close()

        run(main())

    def test_delay(self):
        async def main():
            net = AsyncioNetwork(delay=0.05)
            inbox: list[float] = []
            loop = asyncio.get_event_loop()
            start = loop.time()
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: inbox.append(loop.time() - start))
            net.send(0, 1, "later")
            await asyncio.sleep(0.15)
            await net.close()
            assert inbox and inbox[0] >= 0.045

        run(main())

    def test_loss(self):
        async def main():
            net = AsyncioNetwork(loss_rate=0.5, seed=1)
            inbox: list[object] = []
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: inbox.append(p))
            for i in range(100):
                net.send(0, 1, i)
            await asyncio.sleep(0.05)
            await net.close()
            assert 20 < len(inbox) < 80

        run(main())

    def test_send_after_close_is_noop(self):
        async def main():
            net = AsyncioNetwork()
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: None)
            await net.close()
            net.send(0, 1, "dropped")  # must not raise

        run(main())


class TestTcpNetwork:
    def test_roundtrip(self):
        async def main():
            net = TcpNetwork(base_port=38100)
            inbox: list[tuple[int, object]] = []
            net.register(0, lambda s, p: inbox.append((s, p)))
            net.register(1, lambda s, p: inbox.append((s, p)))
            await net.start()
            await net.connect_all()
            net.send(0, 1, {"k": "v"})
            net.send(1, 0, [1, 2, 3])
            await asyncio.sleep(0.1)
            await net.close()
            assert (0, {"k": "v"}) in inbox
            assert (1, [1, 2, 3]) in inbox

        run(main())

    def test_send_before_connect_raises(self):
        async def main():
            net = TcpNetwork(base_port=38200)
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: None)
            with pytest.raises(NetworkError):
                net.send(0, 1, "too early")

        run(main())

    def test_self_send(self):
        async def main():
            net = TcpNetwork(base_port=38300)
            inbox: list[object] = []
            net.register(0, lambda s, p: inbox.append(p))
            await net.start()
            await net.connect_all()
            net.send(0, 0, "loopback")
            await asyncio.sleep(0.05)
            await net.close()
            assert inbox == ["loopback"]

        run(main())

    def test_large_frame(self):
        async def main():
            net = TcpNetwork(base_port=38400)
            inbox: list[bytes] = []
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: inbox.append(p))
            await net.start()
            await net.connect_all()
            blob = b"z" * 1_000_000
            net.send(0, 1, blob)
            for _ in range(100):
                if inbox:
                    break
                await asyncio.sleep(0.02)
            await net.close()
            assert inbox and inbox[0] == blob

        run(main())
