"""End-to-end latency phase counts (paper Section II).

The paper: HotStuff's client-to-client latency is 9 one-way hops, the
two-phase variants (Marlin) 7.  At very low load on a latency-dominated
network the measured mean latencies must sit near those hop counts, and
their ratio near 7/9.
"""

from __future__ import annotations

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig, NetworkProfile
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import ClosedLoopClients

HOP = 0.040


def measure(protocol: str) -> float:
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=64),
        network=NetworkProfile(one_way_latency=HOP, bandwidth_bps=1e9, nic_bps=1e10, jitter=0.0),
        seed=2,
    )
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null", use_cost_model=False)
    pool = ClosedLoopClients(cluster, num_clients=1, token_weight=1, warmup=3.0)
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.run(until=20.0)
    cluster.assert_safety()
    assert pool.completed_ops > 5
    return pool.latency.mean()


class TestHopCounts:
    def test_marlin_seven_hops(self):
        """request + PREPARE + vote + COMMIT + vote + DECIDE + reply = 7."""
        latency = measure("marlin")
        assert latency == pytest.approx(7 * HOP, rel=0.15)

    def test_hotstuff_nine_hops(self):
        """request + 4 leader phases + 3 vote phases + reply = 9."""
        latency = measure("hotstuff")
        assert latency == pytest.approx(9 * HOP, rel=0.15)

    def test_ratio_seven_ninths(self):
        marlin = measure("marlin")
        hotstuff = measure("hotstuff")
        assert marlin < hotstuff
        assert marlin / hotstuff == pytest.approx(7.0 / 9.0, rel=0.12)
