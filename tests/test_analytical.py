"""Table I accounting: authenticator counting and measured linearity."""

from __future__ import annotations

import pytest

from repro.consensus.block import genesis_block, make_child
from repro.consensus.messages import (
    Justify,
    PhaseMsg,
    PrePrepareMsg,
    Proposal,
    SyncRequest,
    ViewChangeMsg,
    VoteMsg,
)
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.crypto.hashing import digest_of
from repro.harness.analytical import (
    TABLE_I,
    authenticators_in,
    expected_view_change_messages,
)


def _summary(view=1, height=1, virtual=False):
    return BlockSummary(
        digest=digest_of(["s", view, height, virtual]),
        view=view,
        height=height,
        parent_view=0,
        is_virtual=virtual,
    )


def _qc(phase=Phase.PREPARE, view=1, height=1, virtual=False):
    return QuorumCertificate(
        phase=phase, view=view, block=_summary(view, height, virtual), signature=None
    )


class TestAuthenticatorCounting:
    def test_vote_is_one(self):
        vote = VoteMsg(phase=Phase.PREPARE, view=1, block=_summary(), share=b"s")
        assert authenticators_in(vote) == 1

    def test_r2_vote_is_two(self):
        vote = VoteMsg(
            phase=Phase.PRE_PREPARE, view=2, block=_summary(virtual=True), share=b"s",
            locked_qc=_qc(),
        )
        assert authenticators_in(vote) == 2

    def test_phase_msg_counts_justify(self):
        single = PhaseMsg(phase=Phase.COMMIT, view=1, justify=Justify(_qc()))
        assert authenticators_in(single) == 1
        composite = PhaseMsg(
            phase=Phase.PREPARE,
            view=2,
            justify=Justify(_qc(Phase.PRE_PREPARE, 2, 3, virtual=True), _qc(Phase.PREPARE, 1, 2)),
            block=make_child(genesis_block(), 2, (), digest_of("j")),
        )
        assert authenticators_in(composite) == 2

    def test_view_change_counts_share_plus_justify(self):
        msg = ViewChangeMsg(view=2, last_voted=_summary(), justify=Justify(_qc()), share=b"s")
        assert authenticators_in(msg) == 2

    def test_view_change_without_share(self):
        msg = ViewChangeMsg(view=2, last_voted=_summary(), justify=Justify(_qc()), share=None)
        assert authenticators_in(msg) == 1

    def test_pre_prepare_dedups_shared_qc(self):
        qc = _qc()
        block_a = make_child(genesis_block(), 2, (), qc.digest)
        proposal_a = Proposal(block_a, Justify(qc))
        proposal_b = Proposal(block_a, Justify(qc))
        msg = PrePrepareMsg(view=2, proposals=(proposal_a, proposal_b), shadow=True)
        assert authenticators_in(msg) == 1

    def test_sync_messages_free(self):
        assert authenticators_in(SyncRequest(digests=(b"\0" * 32,))) == 0

    def test_unknown_payload_zero(self):
        assert authenticators_in("not a protocol message") == 0


class TestTableI:
    def test_rows_present(self):
        protocols = [row.protocol for row in TABLE_I]
        assert protocols == ["HotStuff", "Fast-HotStuff", "Jolteon", "Wendy", "Marlin"]

    def test_only_hotstuff_and_marlin_are_linear(self):
        linear = {row.protocol for row in TABLE_I if row.linear}
        assert linear == {"HotStuff", "Marlin"}

    def test_marlin_phase_count(self):
        marlin = next(row for row in TABLE_I if row.protocol == "Marlin")
        assert marlin.vc_phases == "2 or 3"
        hotstuff = next(row for row in TABLE_I if row.protocol == "HotStuff")
        assert hotstuff.vc_phases == "3"

    def test_expected_message_bounds(self):
        low, high = expected_view_change_messages("marlin", 4, happy=True)
        assert low < high
        with pytest.raises(ValueError):
            expected_view_change_messages("wendy", 4, happy=True)


class TestMeasuredLinearity:
    """The headline claim: Marlin's view change is Theta(n) messages."""

    @pytest.mark.parametrize("f", [1, 2])
    def test_marlin_happy_vc_is_linear(self, f):
        from repro.harness.scenarios import measure_view_change_cost

        cost = measure_view_change_cost("marlin", f)
        n = cost.n
        low, high = expected_view_change_messages("marlin", n, happy=True)
        assert low <= cost.messages <= high, (
            f"f={f}: {cost.messages} messages outside [{low}, {high}]"
        )
        assert cost.phases_to_commit == 2

    def test_marlin_unhappy_vc_is_linear(self):
        from repro.harness.scenarios import measure_view_change_cost

        cost = measure_view_change_cost("marlin", 1, force_unhappy=True)
        low, high = expected_view_change_messages("marlin", cost.n, happy=False)
        assert low <= cost.messages <= high
        assert cost.phases_to_commit == 3

    def test_hotstuff_vc_is_linear(self):
        from repro.harness.scenarios import measure_view_change_cost

        cost = measure_view_change_cost("hotstuff", 1)
        low, high = expected_view_change_messages("hotstuff", cost.n, happy=False)
        assert low <= cost.messages <= high

    def test_authenticators_scale_linearly(self):
        from repro.harness.scenarios import measure_view_change_cost

        small = measure_view_change_cost("marlin", 1)
        large = measure_view_change_cost("marlin", 3)
        ratio = large.authenticators / small.authenticators
        n_ratio = large.n / small.n
        # Linear: authenticators grow ~ n, certainly not ~ n^2.
        assert ratio < n_ratio**2 * 0.6
