"""Checkpoint-based recovery: snapshot restore and peer state transfer."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.app import KVStateMachine
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import Node


def run(coro):
    return asyncio.run(coro)


def make_dirs(tmp_path, n=4):
    return [str(tmp_path / f"node{i}") for i in range(n)]


class TestLedgerSnapshot:
    def test_install_snapshot_resets_frontier(self):
        from repro.consensus.block import genesis_block, make_child
        from repro.consensus.blocktree import BlockTree
        from repro.consensus.ledger import Ledger
        from repro.crypto.hashing import digest_of

        tree = BlockTree(genesis_block())
        head = make_child(genesis_block(), 3, (), digest_of("q"))
        ledger = Ledger(tree)
        ledger.install_snapshot(head)
        assert ledger.committed_head == head
        assert ledger.committed_height == 1
        # Future commits extend the snapshot head normally.
        child = make_child(head, 3, (), digest_of("q2"))
        tree.add(child)
        committed = ledger.commit(child)
        assert [b.height for b in committed] == [2]

    def test_snapshot_below_head_rejected(self):
        from repro.common.errors import SafetyViolation
        from repro.consensus.block import genesis_block, make_child
        from repro.consensus.blocktree import BlockTree
        from repro.consensus.ledger import Ledger
        from repro.crypto.hashing import digest_of

        tree = BlockTree(genesis_block())
        a = make_child(genesis_block(), 1, (), digest_of("a"))
        b = make_child(a, 1, (), digest_of("b"))
        tree.add(a)
        tree.add(b)
        ledger = Ledger(tree)
        ledger.commit(b)
        stale = make_child(genesis_block(), 2, (), digest_of("s"))
        with pytest.raises(SafetyViolation):
            ledger.install_snapshot(stale)


class TestPrunedHistoryRestart:
    def test_restart_after_checkpoint_pruning(self, tmp_path):
        """With aggressive checkpointing, a restart cannot replay from
        genesis; it must restore from the newest contiguous suffix."""

        async def main():
            dirs = make_dirs(tmp_path)
            async with LocalCluster(
                f=1,
                batch_size=2,
                data_dirs=dirs,
            ) as cluster:
                # Aggressive GC so history is pruned quickly.
                for node in cluster.nodes:
                    node.checkpoints._interval = 3
                    node.checkpoints._keep_window = 2
                for i in range(24):
                    await cluster.submit(
                        KVStateMachine.encode_set(b"k%02d" % i, b"v%02d" % i)
                    )
                await cluster.wait_for_height(8, timeout=20, quorum_only=False)
                node1 = cluster.nodes[1]
                assert node1.checkpoints.checkpoints_taken >= 1
                height_before = node1.committed_height
                digest_before = node1.app.state_digest()
            # Rebuild node 1 from its (pruned) directory.
            from repro.network.asyncio_net import AsyncioNetwork
            from repro.consensus.crypto_service import ThresholdCryptoService
            from repro.crypto.keys import KeyRegistry
            from repro.common.config import ClusterConfig

            config = ClusterConfig.for_f(1, batch_size=2)
            crypto = ThresholdCryptoService(KeyRegistry(4, 3, seed="0"))
            network = AsyncioNetwork()
            node = Node(1, config, network, crypto, data_dir=dirs[1])
            assert node.committed_height == height_before
            assert node.app.state_digest() == digest_before
            assert node.app.get(b"k00") == b"v00"  # app state survives pruning
            node.stop()
            await network.close()

        run(main())


class TestPeerStateTransfer:
    def test_fresh_node_bootstraps_from_peers(self, tmp_path):
        """A replica with an empty disk installs a quorum-backed snapshot."""

        async def main():
            dirs = make_dirs(tmp_path)
            async with LocalCluster(f=1, batch_size=4, data_dirs=dirs) as cluster:
                for i in range(12):
                    await cluster.submit(
                        KVStateMachine.encode_set(b"key%d" % i, b"val%d" % i)
                    )
                await cluster.wait_for_height(3, timeout=20)
                target = max(cluster.committed_heights()[:3])
                reference = cluster.nodes[1].app.state_digest()

                # Node 3 loses its disk entirely.
                fresh_dir = str(tmp_path / "node3-fresh")
                cluster.crash(3)
                cluster._data_dirs[3] = fresh_dir
                node = await cluster.restart(3)
                assert node.committed_height == 0
                node.request_state_transfer()
                deadline = asyncio.get_event_loop().time() + 20
                while node.committed_height == 0:
                    if asyncio.get_event_loop().time() > deadline:
                        raise TimeoutError("state transfer never completed")
                    await asyncio.sleep(0.02)
                assert node.committed_height >= target - 2
                assert node.app.state_digest() == reference
                assert node.app.get(b"key0") == b"val0"

        run(main())

    def test_server_ignores_requests_from_ahead_peers(self, tmp_path):
        async def main():
            dirs = make_dirs(tmp_path)
            async with LocalCluster(f=1, batch_size=4, data_dirs=dirs) as cluster:
                await cluster.submit(b"")
                await cluster.wait_for_height(1, timeout=15)
                from repro.consensus.messages import StateTransferRequest

                node = cluster.nodes[1]
                sent_before = len(cluster.nodes[2]._st_responses)
                # Peer claims to be ahead: no response should be sent.
                node._on_message(2, StateTransferRequest(have_height=10_000))
                await asyncio.sleep(0.05)
                assert len(cluster.nodes[2]._st_responses) == sent_before

        run(main())
