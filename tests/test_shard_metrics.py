"""Per-group metrics isolation on the sharded runtime.

Each :class:`ShardGroup` owns its own :class:`MetricsRegistry` — replica
ids repeat across groups, so sharing one registry would silently merge
different replicas' series under one label set.  These tests pin the
isolation (same metric names, independent values per group) and the
cluster roll-up: ``ShardedCluster.metrics_snapshot()`` re-labels every
group's series with ``shard=<gid>`` and folds them into one aggregate
whose totals equal the per-group sums exactly.
"""

from __future__ import annotations

import json

from repro.cli import main as cli_main
from repro.common.config import ClusterConfig, ExperimentConfig
from repro.harness.workload import ShardedClosedLoopClients
from repro.obs.metrics import MetricsRegistry
from repro.shard import ShardConfig, ShardedCluster


def _experiment(seed: int = 3) -> ExperimentConfig:
    cluster = ClusterConfig.for_f(1, base_timeout=120.0, max_timeout=240.0)
    return ExperimentConfig(cluster=cluster, seed=seed)


def _counter_total(snapshot: dict, name: str) -> float:
    return sum(s["value"] for s in snapshot["counters"].get(name, []))


def _run_sharded(shards: int = 2) -> ShardedCluster:
    sharded = ShardedCluster(
        _experiment(), shard=ShardConfig(shards=shards), metrics=True
    )
    pool = ShardedClosedLoopClients(sharded, num_clients=128, token_weight=4)
    sharded.start()
    sharded.sim.schedule(0.01, pool.start)
    sharded.run(until=6.0)
    sharded.assert_safety()
    return sharded


class TestMergeFrom:
    def test_counters_gauges_histograms(self):
        source = MetricsRegistry()
        source.counter("requests_total", "reqs", replica=0).inc(5)
        source.gauge("depth", "queue depth", replica=0).inc(3)
        source.histogram("lat", "latency", buckets=(0.1, 1.0), replica=0).observe(0.05)
        target = MetricsRegistry()
        target.merge_from(source, shard=7)
        snap = target.snapshot()
        [series] = snap["counters"]["requests_total"]
        assert series["labels"] == {"replica": "0", "shard": "7"}
        assert series["value"] == 5
        [gauge] = snap["gauges"]["depth"]
        assert gauge["value"] == 3
        [hist] = snap["histograms"]["lat"]
        assert hist["count"] == 1
        assert hist["labels"] == {"replica": "0", "shard": "7"}

    def test_merge_sums_into_existing_series(self):
        a = MetricsRegistry()
        a.counter("ops_total", "", replica=0).inc(2)
        b = MetricsRegistry()
        b.counter("ops_total", "", replica=0).inc(3)
        target = MetricsRegistry()
        target.merge_from(a, shard=0).merge_from(b, shard=0)
        assert _counter_total(target.snapshot(), "ops_total") == 5


class TestShardedRegistryIsolation:
    def test_groups_get_disjoint_registries(self):
        sharded = _run_sharded()
        registries = [g.observability.registry for g in sharded.groups]
        assert len({id(r) for r in registries}) == len(registries)
        # The same metric names and replica labels exist in every group
        # — only separate registries keep those series from colliding.
        snaps = [r.snapshot() for r in registries]
        for snap in snaps:
            assert "replica_blocks_committed_total" in snap["counters"]
        labels0 = {
            tuple(sorted(s["labels"].items()))
            for s in snaps[0]["counters"]["replica_blocks_committed_total"]
        }
        labels1 = {
            tuple(sorted(s["labels"].items()))
            for s in snaps[1]["counters"]["replica_blocks_committed_total"]
        }
        assert labels0 == labels1  # identical label space per group...
        committed = [
            _counter_total(snap, "replica_ops_committed_total") for snap in snaps
        ]
        assert all(c > 0 for c in committed)  # ...but independent values

    def test_snapshot_aggregate_equals_per_group_sum(self):
        sharded = _run_sharded()
        snapshot = sharded.metrics_snapshot()
        assert set(snapshot["shards"]) == {"0", "1"}
        for name in (
            "replica_ops_committed_total",
            "replica_blocks_committed_total",
            "replica_messages_handled_total",
            "net_messages_sent_total",
        ):
            per_group = sum(
                _counter_total(shard_snap, name)
                for shard_snap in snapshot["shards"].values()
            )
            assert _counter_total(snapshot["cluster"], name) == per_group
            assert per_group > 0

    def test_cluster_view_drops_shard_and_replica_labels(self):
        sharded = _run_sharded()
        cluster_snap = sharded.metrics_snapshot()["cluster"]
        for series_list in cluster_snap["counters"].values():
            for series in series_list:
                assert "shard" not in series["labels"]
                assert "replica" not in series["labels"]

    def test_metrics_off_by_default(self):
        sharded = ShardedCluster(_experiment(), shard=ShardConfig(shards=2))
        assert sharded.metrics_snapshot() == {"shards": {}, "cluster": {
            "counters": {}, "gauges": {}, "histograms": {},
        }}


class TestShardMetricsCLI:
    def test_metrics_out_writes_views(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = cli_main(
            [
                "shard",
                "--shards", "2",
                "--clients", "128",
                "--sim-time", "6",
                "--warmup", "2",
                "--metrics-out", str(out),
            ]
        )
        assert code == 0
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert set(payload["shards"]) == {"0", "1"}
        name = "replica_ops_committed_total"
        total = sum(
            _counter_total(snap, name) for snap in payload["shards"].values()
        )
        assert _counter_total(payload["cluster"], name) == total > 0
