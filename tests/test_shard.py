"""The sharded runtime: routing, determinism, misroute rejection, api.

Covers the multi-group subsystem end to end: the client-layer
:class:`ShardRouter`, :class:`ShardConfig`/:class:`Scenario` topology
validation, the shared-simulator :class:`ShardedCluster` (including the
per-group misroute guards), cross-shard workloads through the facade and
the parallel sweep engine (byte-identical traces regardless of ``jobs``),
and the asyncio :class:`ShardedLocalCluster`.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import Scenario, load_point
from repro.client.config import ClientConfig
from repro.client.router import ShardRouter
from repro.client.session import ClientSession
from repro.client.tracker import LeaderTracker
from repro.common.config import ClusterConfig, ExperimentConfig
from repro.common.errors import ConfigError
from repro.consensus.messages import ClientRequest
from repro.harness.parallel import SweepExecutor
from repro.harness.workload import ClosedLoopClients, ShardedClosedLoopClients
from repro.shard import ShardConfig, ShardedCluster, ShardedLocalCluster


def run(coro):
    return asyncio.run(coro)


def _experiment(seed: int = 3) -> ExperimentConfig:
    cluster = ClusterConfig.for_f(1, base_timeout=120.0, max_timeout=240.0)
    return ExperimentConfig(cluster=cluster, seed=seed)


# ---------------------------------------------------------------------------
# ShardRouter


class TestShardRouter:
    def test_deterministic_across_instances(self):
        a = ShardRouter(8, seed=5)
        b = ShardRouter(8, seed=5)
        keys = [ShardRouter.key_of_client(i) for i in range(200)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]

    def test_seed_repartitions(self):
        a = ShardRouter(8, seed=0)
        b = ShardRouter(8, seed=1)
        placements_a = [a.shard_of_client(i) for i in range(200)]
        placements_b = [b.shard_of_client(i) for i in range(200)]
        assert placements_a != placements_b

    def test_hash_scheme_covers_every_shard(self):
        router = ShardRouter(4)
        hit = {router.shard_of_client(i) for i in range(200)}
        assert hit == {0, 1, 2, 3}

    def test_modulo_scheme_is_transparent(self):
        router = ShardRouter(4, scheme="modulo")
        assert [router.shard_of_client(i) for i in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_single_shard_short_circuit(self):
        router = ShardRouter(1)
        assert router.shard_of_client(12345) == 0

    def test_partition_preserves_order_and_totality(self):
        router = ShardRouter(3)
        ids = list(range(50))
        groups = router.partition_clients(ids)
        assert sorted(sum(groups, [])) == ids
        for shard_id, members in enumerate(groups):
            assert members == sorted(members)
            assert all(router.shard_of_client(c) == shard_id for c in members)

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardRouter(0)
        with pytest.raises(ConfigError):
            ShardRouter(2, scheme="rendezvous")


class TestShardConfig:
    def test_errors_name_the_field(self):
        with pytest.raises(ConfigError, match="ShardConfig.shards"):
            ShardConfig(shards=0)
        with pytest.raises(ConfigError, match="ShardConfig.router"):
            ShardConfig(router="rendezvous")

    def test_make_router_matches_config(self):
        router = ShardConfig(shards=4, router="modulo", router_seed=2).make_router()
        assert (router.shards, router.scheme, router.seed) == (4, "modulo", 2)


# ---------------------------------------------------------------------------
# Scenario topology surface


class TestScenarioTopology:
    def test_shards_sugar(self):
        assert Scenario(shards=4).resolved_shard() == ShardConfig(shards=4)
        explicit = ShardConfig(shards=2, router="modulo")
        assert Scenario(shard=explicit).resolved_shard() is explicit

    def test_contradictory_shard_fields_rejected(self):
        with pytest.raises(ConfigError, match="Scenario.shards"):
            Scenario(shard=ShardConfig(shards=2), shards=4)

    def test_errors_name_the_field(self):
        with pytest.raises(ConfigError, match="Scenario.protocol"):
            Scenario(protocol="raft")
        with pytest.raises(ConfigError, match="Scenario.sim_time"):
            Scenario(sim_time=1.0, warmup=2.0)
        with pytest.raises(ConfigError, match="Scenario.shards"):
            Scenario(shards=0)

    def test_explicit_cluster_is_authoritative(self):
        cluster = ClusterConfig.for_f(2)
        assert Scenario(cluster=cluster).cluster is cluster
        assert Scenario(cluster=cluster, f=2).f == 2
        with pytest.raises(ConfigError, match="Scenario.f"):
            Scenario(cluster=cluster, f=3)

    def test_with_overrides_replaces_and_revalidates(self):
        base = Scenario(protocol="marlin", clients=64)
        wide = base.with_overrides(f=2, shards=4)
        assert (wide.f, wide.shards, wide.clients) == (2, 4, 64)
        assert base.shards == 1  # frozen original untouched
        with pytest.raises(ConfigError, match="Scenario.f"):
            base.with_overrides(f=0)

    def test_with_overrides_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="sharrds"):
            Scenario().with_overrides(sharrds=2)


# ---------------------------------------------------------------------------
# ShardedCluster (DES)


class TestShardedCluster:
    def test_groups_share_simulator_and_crypto(self):
        sharded = ShardedCluster(_experiment(), shard=ShardConfig(shards=3))
        assert len(sharded.groups) == 3
        for group in sharded.groups:
            assert group.cluster.sim is sharded.sim
            assert group.cluster.crypto is sharded.crypto
        # Private networks: endpoint registrations never collide.
        nets = {id(group.cluster.network) for group in sharded.groups}
        assert len(nets) == 3

    def test_every_group_commits_under_routed_load(self):
        sharded = ShardedCluster(_experiment(), shard=ShardConfig(shards=2))
        pool = ShardedClosedLoopClients(sharded, num_clients=128, token_weight=4)
        sharded.start()
        pool.start()
        sharded.run(until=6.0)
        sharded.assert_safety()
        per_shard = sharded.ops_committed_per_shard()
        assert all(ops > 0 for ops in per_shard)
        assert sharded.total_ops_committed() == sum(per_shard)
        assert sharded.misrouted_rejected == 0
        assert pool.completed_ops > 0

    def test_commit_trace_is_reproducible(self):
        def trace():
            sharded = ShardedCluster(_experiment(seed=7), shard=ShardConfig(shards=2))
            pool = ShardedClosedLoopClients(sharded, num_clients=64, token_weight=2)
            sharded.start()
            sharded.sim.schedule(0.01, pool.start)
            sharded.run(until=5.0)
            return sharded.commit_trace()

        first, second = trace(), trace()
        assert first == second
        assert first, "the run must commit something for the comparison to bite"
        shards_seen = {row[0] for row in first}
        assert shards_seen == {0, 1}

    def test_misrouted_request_rejected_not_committed(self):
        sharded = ShardedCluster(_experiment(), shard=ShardConfig(shards=2))
        router = sharded.router
        foreign = next(c for c in range(100, 200) if router.shard_of_client(c) == 1)
        native = next(c for c in range(100, 200) if router.shard_of_client(c) == 0)
        committed_ids: set[int] = set()
        for replica in sharded.groups[0].cluster.replicas:
            replica.commit_listeners.append(
                lambda block, when: committed_ids.update(
                    op.client_id for op in block.operations
                )
            )
        group0_net = sharded.groups[0].cluster.network
        sender = 500
        group0_net.register(sender, lambda src, payload: None)
        sharded.start()

        def inject() -> None:
            # Both requests hit shard 0's leader; only the native one may
            # commit there.
            for client_id in (foreign, native):
                group0_net.send(
                    sender,
                    0,
                    ClientRequest(client_id=client_id, sequence=1, payload=b"op", weight=3),
                )

        sharded.sim.schedule(0.05, inject)
        sharded.run(until=5.0)
        sharded.assert_safety()
        assert native in committed_ids
        assert foreign not in committed_ids
        assert sharded.groups[0].misrouted_ops == 3  # weighted, never silent
        assert sharded.groups[1].misrouted_ops == 0
        assert sharded.misrouted_rejected == 3

    def test_guard_can_be_disabled(self):
        sharded = ShardedCluster(
            _experiment(), shard=ShardConfig(shards=2, reject_misrouted=False)
        )
        assert all(
            group.cluster._inbound_filter is None for group in sharded.groups
        )

    def test_per_group_audit(self):
        sharded = ShardedCluster(_experiment(), shard=ShardConfig(shards=2), audit=True)
        pool = ShardedClosedLoopClients(sharded, num_clients=64, token_weight=2)
        sharded.start()
        pool.start()
        sharded.run(until=4.0)
        reports = sharded.audit_reports()
        assert len(reports) == 2
        assert all(report["ok"] for report in reports)
        assert sharded.audit_violations() == 0


# ---------------------------------------------------------------------------
# Workload plumbing


class TestWorkloadClientIds:
    def test_default_ids_unchanged(self):
        from repro.harness.des_runtime import DESCluster

        cluster = DESCluster(_experiment(), crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=8, token_weight=2)
        assert pool.client_ids == [0, 1, 2, 3]

    def test_explicit_ids_must_match_tokens(self):
        from repro.harness.des_runtime import DESCluster

        cluster = DESCluster(_experiment(), crypto_mode="null")
        with pytest.raises(ConfigError, match="client_ids"):
            ClosedLoopClients(
                cluster, num_clients=8, token_weight=2, client_ids=[10, 11, 12]
            )

    def test_sharded_pool_partitions_by_router(self):
        sharded = ShardedCluster(_experiment(), shard=ShardConfig(shards=2))
        pool = ShardedClosedLoopClients(sharded, num_clients=32, token_weight=2)
        for shard_id, sub in enumerate(pool.pools):
            if sub is None:
                continue
            assert all(
                sharded.router.shard_of_client(c) == shard_id for c in sub.client_ids
            )
        populated = [sub for sub in pool.pools if sub is not None]
        assert sum(len(sub.client_ids) for sub in populated) == pool.num_tokens


# ---------------------------------------------------------------------------
# Facade + sweep engine


SHARD_TASK = dict(
    protocol="marlin",
    f=1,
    sim_time=4.0,
    warmup=1.5,
    request_size=64,
    reply_size=64,
    seed=3,
    crypto="null",
    pipeline=None,
    shard=ShardConfig(shards=2),
)


class TestShardedFacade:
    def test_load_point_reports_aggregate(self):
        result = load_point(
            Scenario(shards=2, clients=128, sim_time=5.0, warmup=1.5, seed=3)
        )
        assert result.shards == 2
        assert result.per_shard_tps is not None and len(result.per_shard_tps) == 2
        assert result.throughput_tps == pytest.approx(sum(result.per_shard_tps))
        assert result.throughput_tps > 0

    def test_observability_incompatible_with_sharding(self):
        from repro.obs.observer import RunObservability

        with pytest.raises(ConfigError, match="shard"):
            load_point(
                Scenario(shards=2, clients=64, sim_time=4.0, warmup=1.0),
                observability=RunObservability(),
            )

    def test_sharded_traces_identical_regardless_of_jobs(self):
        tasks = [{**SHARD_TASK, "clients": clients} for clients in (64, 128)]
        with SweepExecutor(jobs=1) as executor:
            inline = executor._run_raw(tasks)
        with SweepExecutor(jobs=2) as executor:
            fanned = executor._run_raw(tasks)
        # Byte-identity across process fan-out: RunResult fields and the
        # SHA-256 over the [shard, replica, height, digest, time] trace.
        assert fanned == inline
        assert all(v["trace_sha256"] for v in inline)
        assert all(v["result"]["shards"] == 2 for v in inline)

    def test_sharded_points_cache_roundtrip(self, tmp_path):
        from repro.harness.parallel import ResultCache

        counts = [64]
        cache = ResultCache(tmp_path)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            cold = executor.run_curve(SHARD_TASK, counts, 1e9)
        warm_cache = ResultCache(tmp_path)
        with SweepExecutor(jobs=1, cache=warm_cache) as executor:
            warm = executor.run_curve(SHARD_TASK, counts, 1e9)
        assert (warm_cache.hits, warm_cache.misses) == (1, 0)
        assert warm == cold
        assert warm[0].shards == 2


# ---------------------------------------------------------------------------
# Shard-aware client sessions


class TestShardAwareSession:
    class _Ctx:
        now = 0.0

        def send(self, dst, payload):  # pragma: no cover - plumbing stub
            pass

        def set_timer(self, name, delay, callback):
            pass

        def cancel_timer(self, name):
            pass

    def test_session_learns_its_shard_from_the_router(self):
        router = ShardRouter(4)
        client_id = 37
        session = ClientSession(
            client_id, self._Ctx(), ClientConfig(mode="real"), 4, 1, router=router
        )
        assert session.shard == router.shard_of_client(client_id)
        assert session.tracker.shard == session.shard

    def test_session_refuses_foreign_binding(self):
        router = ShardRouter(4)
        client_id = 37
        wrong = (router.shard_of_client(client_id) + 1) % 4
        with pytest.raises(ValueError, match="routes to shard"):
            ClientSession(
                client_id, self._Ctx(), ClientConfig(mode="real"), 4, 1,
                router=router, shard=wrong,
            )

    def test_tracker_default_is_unsharded(self):
        assert LeaderTracker(4).shard is None


# ---------------------------------------------------------------------------
# ShardedLocalCluster (asyncio)


class TestShardedLocalCluster:
    def test_routed_submission_commits_on_owner_only(self):
        async def scenario():
            sharded = ShardedLocalCluster(f=1, shard=ShardConfig(shards=2), seed=9)
            # One key setup for both groups.
            assert sharded.groups[1].crypto is sharded.groups[0].crypto
            async with sharded:
                client_id = 7
                owner = sharded.shard_of(client_id)
                other = 1 - owner
                await sharded.submit(b"payload", client_id=client_id)
                await sharded.wait_for_height(1, timeout=30.0, shard_id=owner)
                assert max(sharded.committed_heights()[owner]) >= 1
                assert max(sharded.committed_heights()[other]) == 0
                with pytest.raises(ConfigError, match="misrouted"):
                    await sharded.submit(b"payload", client_id=client_id, shard_id=other)

        run(scenario())


# ---------------------------------------------------------------------------
# Recovery surface through the facade


class TestRecoverySurface:
    def test_restart_replica_via_api(self, tmp_path):
        from repro.api import restart_replica
        from repro.runtime.cluster import LocalCluster

        async def scenario():
            dirs = [str(tmp_path / f"n{i}") for i in range(4)]
            cluster = LocalCluster(f=1, data_dirs=dirs, base_timeout=0.3)
            async with cluster:
                await cluster.submit(b"before-crash")
                await cluster.wait_for_height(1)
                cluster.crash(3)
                node = await restart_replica(cluster, 3)
                assert node is cluster.nodes[3]
                await cluster.wait_for_height(1)

        run(scenario())

    def test_trigger_state_transfer_via_api(self, tmp_path):
        from repro.api import trigger_state_transfer
        from repro.runtime.app import KVStateMachine
        from repro.runtime.cluster import LocalCluster

        async def scenario():
            dirs = [str(tmp_path / f"n{i}") for i in range(4)]
            cluster = LocalCluster(f=1, data_dirs=dirs, batch_size=4)
            async with cluster:
                for i in range(6):
                    await cluster.submit(
                        KVStateMachine.encode_set(b"k%d" % i, b"v%d" % i)
                    )
                await cluster.wait_for_height(2, timeout=15)
                trigger_state_transfer(cluster, 3)
                await asyncio.sleep(0.1)
                # The node asked its peers for a snapshot; liveness holds.
                for i in range(6):
                    await cluster.submit(
                        KVStateMachine.encode_set(b"p%d" % i, b"v%d" % i)
                    )
                await cluster.wait_for_height(3, timeout=15)

        run(scenario())
