"""Reproducibility: the DES is a deterministic function of its seed."""

from __future__ import annotations

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.consensus.pipeline import PipelineConfig
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import ClosedLoopClients


def run_once(
    seed: int, protocol: str = "marlin", pipeline: PipelineConfig | None = None
) -> tuple:
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.6), seed=seed
    )
    cluster = DESCluster(experiment, protocol=protocol, crypto_mode="null", pipeline=pipeline)
    pool = ClosedLoopClients(cluster, num_clients=24, token_weight=1, target="all")
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.crash_at(0, 2.0)
    cluster.run(until=8.0)
    cluster.assert_safety()
    commit_trace = tuple(
        (rid, height, digest) for rid, height, digest, _ in cluster.auditor.commits
    )
    return (
        commit_trace,
        tuple(cluster.committed_heights()),
        cluster.sim.events_processed,
        pool.completed_ops,
    )


class TestDeterminism:
    def test_identical_runs_identical_traces(self):
        assert run_once(17) == run_once(17)

    def test_different_seeds_diverge(self):
        # Jitter differs -> event interleaving differs -> traces differ.
        a = run_once(17)
        b = run_once(18)
        assert a != b

    def test_determinism_across_protocols(self):
        assert run_once(5, "hotstuff") == run_once(5, "hotstuff")
        assert run_once(5, "chained-marlin") == run_once(5, "chained-marlin")

    def test_scenario_functions_deterministic(self):
        from repro.harness.scenarios import view_change_latency

        a = view_change_latency("marlin", 1, seed=9)
        b = view_change_latency("marlin", 1, seed=9)
        assert a.latency == b.latency
        assert a.vc_start == b.vc_start


class TestPipelinedDeterminism:
    """Pipelining (vote batching + speculation) must keep the DES a pure
    function of its seed: same seed, same commit trace, and byte-identical
    exported traces."""

    def test_identical_runs_identical_traces(self):
        pipeline = PipelineConfig()
        assert run_once(17, pipeline=pipeline) == run_once(17, pipeline=pipeline)

    def test_pipelined_across_protocols(self):
        pipeline = PipelineConfig(adaptive_batch=True)
        for protocol in ("hotstuff", "chained-marlin"):
            assert run_once(5, protocol, pipeline) == run_once(5, protocol, pipeline)

    def test_trace_export_byte_identical(self):
        from repro.api import Scenario, traced_run

        traces = []
        for _ in range(2):
            _, obs = traced_run(
                Scenario(protocol="marlin", f=1, seed=3, pipeline=PipelineConfig()),
                sim_time=2.0,
            )
            traces.append(obs.tracer.chrome_trace())
        assert traces[0] == traces[1]

    def test_threads_verifier_forced_inline_in_des(self):
        # A config asking for real threads must still be deterministic in
        # the DES (DESCluster forces the verifier inline via for_des()).
        pipeline = PipelineConfig(verifier="threads", verifier_workers=8)
        assert run_once(11, pipeline=pipeline) == run_once(11, pipeline=pipeline)
