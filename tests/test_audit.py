"""Flight recorder, online auditor, observatory, and audited runs."""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.harness.audit import audited_run, complexity_sweep
from repro.obs.audit import OnlineAuditor
from repro.obs.complexity import ComplexityObservatory, SlopeFit, fit_loglog_slope
from repro.obs.flight import (
    FlightRecorder,
    decode_blackbox,
    encode_blackbox,
    read_blackbox,
)


class TestFlightRecorder:
    def test_records_in_order(self):
        recorder = FlightRecorder(0, capacity=8)
        recorder.record(0.1, "view", 1)
        recorder.record(0.2, "commit", 1, 1, b"\x01", "3")
        events = recorder.events()
        assert [e.kind for e in events] == ["view", "commit"]
        assert events[1].height == 1 and events[1].digest == b"\x01"
        assert events[0].seq == 0 and events[1].seq == 1

    def test_ring_is_bounded_and_keeps_newest(self):
        recorder = FlightRecorder(0, capacity=4)
        for i in range(10):
            recorder.record(float(i), "view", i)
        assert len(recorder) == 4
        assert recorder.total_recorded == 10
        views = [e.view for e in recorder.events()]
        assert views == [6, 7, 8, 9]
        seqs = [e.seq for e in recorder.events()]
        assert seqs == [6, 7, 8, 9]

    def test_window_filters(self):
        recorder = FlightRecorder(0, capacity=16)
        for i in range(6):
            recorder.record(float(i), "view", i)
        assert [e.view for e in recorder.window(last=2)] == [4, 5]
        assert [e.view for e in recorder.window(since=3.0)] == [3, 4, 5]
        assert [e.view for e in recorder.window(last=2, since=1.0)] == [4, 5]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(0, capacity=0)


class TestBlackbox:
    def _recorders(self) -> dict[int, FlightRecorder]:
        recorders = {}
        for rid in (1, 0):
            recorder = FlightRecorder(rid, capacity=8)
            recorder.record(0.5 + rid, "view", 1, detail="start")
            recorder.record(1.25 + rid, "commit", 1, 3, bytes([rid]) * 4)
            recorders[rid] = recorder
        return recorders

    def test_roundtrip(self):
        meta = {"protocol": "marlin", "n": 4, "seed": 7}
        payload = encode_blackbox(self._recorders(), meta)
        decoded_meta, per_replica = decode_blackbox(payload)
        assert decoded_meta == meta
        assert sorted(per_replica) == [0, 1]
        events = per_replica[0]
        assert [e.kind for e in events] == ["view", "commit"]
        assert events[1].time == pytest.approx(1.25)
        assert events[1].digest == b"\x00\x00\x00\x00"

    def test_deterministic_bytes(self):
        assert encode_blackbox(self._recorders(), {"n": 4}) == encode_blackbox(
            self._recorders(), {"n": 4}
        )

    def test_rejects_wrong_magic(self):
        from repro.common.encoding import encode

        with pytest.raises(ValueError):
            decode_blackbox(encode(["not-a-blackbox", {}, []]))


class TestOnlineAuditor:
    def _auditor(self) -> OnlineAuditor:
        auditor = OnlineAuditor()
        auditor.configure(4, 3)
        return auditor

    def test_clean_stream_is_ok(self):
        auditor = self._auditor()
        for replica in range(4):
            auditor.on_view_entered(replica, 1, 0.0)
            auditor.on_prepare(replica, b"\x01", 1, 1, 0.1)
            auditor.on_commit(replica, b"\x01", 1, 1, 0.2)
        assert auditor.ok
        assert auditor.events_audited == 12

    def test_conflicting_commit_flagged_once(self):
        auditor = self._auditor()
        auditor.on_commit(0, b"\x01", 1, 1, 0.1)
        auditor.on_commit(1, b"\x02", 1, 1, 0.2)
        auditor.on_commit(2, b"\x02", 1, 1, 0.3)
        kinds = [v.kind for v in auditor.violations]
        assert kinds == ["conflicting-commit"]
        assert auditor.violations[0].severity == "safety"
        assert auditor.violations[0].replicas == (0, 1)

    def test_equivocation_flagged(self):
        auditor = self._auditor()
        auditor.on_prepare(1, b"\x01", 1, 1, 0.1)
        auditor.on_prepare(2, b"\x02", 1, 1, 0.2)
        assert [v.kind for v in auditor.violations] == ["equivocation"]

    def test_non_monotone_view_flagged(self):
        auditor = self._auditor()
        auditor.on_view_entered(0, 3, 0.1)
        auditor.on_view_entered(0, 2, 0.2)
        assert [v.kind for v in auditor.violations] == ["non-monotone-view"]

    def test_duplicate_execution_flagged(self):
        from repro.consensus.block import Block, Operation

        auditor = self._auditor()
        op = Operation(client_id=9, sequence=1, payload=b"x")
        block_a = Block(
            parent_link=None, parent_view=0, view=1, height=1,
            operations=(op,), justify_digest=b"",
        )
        block_b = Block(
            parent_link=None, parent_view=0, view=1, height=2,
            operations=(op,), justify_digest=b"",
        )
        auditor.on_commit_block(0, block_a, 0.1)
        auditor.on_commit_block(0, block_b, 0.2)
        assert [v.kind for v in auditor.violations] == ["duplicate-execution"]

    def test_violation_embeds_recorder_window(self):
        auditor = self._auditor()
        recorder = FlightRecorder(0, capacity=8)
        recorder.record(0.05, "view", 1)
        auditor.recorders = {0: recorder}
        auditor.on_commit(0, b"\x01", 1, 1, 0.1)
        auditor.on_commit(0, b"\x01", 1, 1, 0.2)  # duplicate digest
        (violation,) = auditor.violations
        assert violation.kind == "duplicate-commit"
        window = dict(violation.window)
        assert [e.kind for e in window[0]] == ["view"]
        rendered = violation.to_dict()
        assert rendered["window"]["0"][0]["kind"] == "view"


class TestComplexityObservatory:
    def test_fit_loglog_slope_units(self):
        linear = [(n, 7.0 * n) for n in (4, 16, 64)]
        quadratic = [(n, 3.0 * n * n) for n in (4, 16, 64)]
        assert fit_loglog_slope(linear) == pytest.approx(1.0)
        assert fit_loglog_slope(quadratic) == pytest.approx(2.0)
        assert math.isnan(fit_loglog_slope([(4, 10.0)]))
        assert math.isnan(fit_loglog_slope([(4, 0.0), (8, 0.0)]))

    def test_slope_fit_verdict(self):
        fit = SlopeFit("bytes", [(4, 40.0), (16, 160.0), (64, 640.0)])
        assert fit.linear and "O(n)" in fit.render()
        quad = SlopeFit("bytes", [(4, 16.0), (16, 256.0), (64, 4096.0)])
        assert not quad.linear

    def test_tap_attributes_phases_and_views(self):
        from repro.consensus.block import Block, genesis_block
        from repro.consensus.messages import ClientRequest, Justify, PhaseMsg, VoteMsg
        from repro.consensus.qc import BlockSummary, Phase, genesis_qc
        from repro.network.message import Envelope

        genesis = genesis_block()
        justify = Justify(qc=genesis_qc(genesis))
        block = Block(
            parent_link=genesis.digest, parent_view=0, view=2, height=1,
            operations=(), justify_digest=genesis.digest,
        )
        observatory = ComplexityObservatory(num_replicas=4)
        proposal = PhaseMsg(phase=Phase.PREPARE, view=2, justify=justify, block=block)
        vote = VoteMsg(
            phase=Phase.COMMIT, view=2, block=BlockSummary.of(block), share=b"s"
        )
        request = ClientRequest(client_id=5, sequence=0, payload=b"p")
        observatory.tap(Envelope(0, 1, proposal, 100, 0.1))
        observatory.tap(Envelope(1, 0, vote, 10, 0.2))
        observatory.tap(Envelope(9, 0, request, 50, 0.3))
        assert observatory.per_phase["prepare"].messages == 1
        assert observatory.per_phase["commit"].messages == 1
        assert observatory.per_phase["client"].bytes == 50
        assert observatory.consensus.messages == 2
        assert observatory.client.messages == 1
        # Client traffic is not attributed to a consensus view.
        assert observatory.per_view[2].messages == 2
        assert observatory.views_observed() == 1
        snapshot = observatory.snapshot()
        assert snapshot["per_type"]["VoteMsg"]["authenticators"] == 1

    def test_disarm_stops_attribution(self):
        from repro.consensus.messages import ClientRequest
        from repro.network.message import Envelope

        observatory = ComplexityObservatory()
        observatory.disarm()
        observatory.tap(Envelope(0, 1, ClientRequest(1, 0, b""), 10, 0.0))
        assert observatory.total.messages == 0
        observatory.arm()
        observatory.tap(Envelope(0, 1, ClientRequest(1, 0, b""), 10, 0.0))
        assert observatory.total.messages == 1


class TestAuditedRuns:
    CLEAN_PROTOCOLS = ("marlin", "hotstuff", "fast-hotstuff")

    @pytest.mark.parametrize("protocol", CLEAN_PROTOCOLS)
    def test_clean_run_zero_violations(self, protocol):
        report = audited_run(protocol, n=4, sim_time=6.0, dump="never")
        assert report.ok, report.render()
        assert report.audit["violations"] == []
        assert report.committed_height > 0
        assert not report.stalled
        # Every replica's flight recorder saw protocol events.
        assert all(count > 0 for count in report.events_recorded.values())

    def test_equivocator_produces_violation_with_window(self):
        report = audited_run(
            "marlin", n=4, sim_time=6.0, byzantine="equivocator", dump="never"
        )
        assert not report.audit["ok"]
        kinds = report.audit["violations_by_kind"]
        assert kinds.get("equivocation", 0) >= 1
        violation = next(
            v for v in report.violations if v["kind"] == "equivocation"
        )
        assert violation["severity"] == "byzantine"
        # The structured report embeds a non-empty flight-recorder window.
        assert any(events for events in violation["window"].values())
        # Safety holds: the conflicting proposals never both commit.
        assert "conflicting-commit" not in kinds
        assert report.committed_height > 0

    def test_reply_forger_produces_divergence_with_window(self):
        report = audited_run(
            "marlin", n=4, sim_time=6.0, byzantine="reply-forger", dump="never"
        )
        kinds = report.audit["violations_by_kind"]
        assert kinds.get("reply-divergence", 0) >= 1
        violation = next(
            v for v in report.violations if v["kind"] == "reply-divergence"
        )
        assert violation["severity"] == "byzantine"
        assert any(events for events in violation["window"].values())
        assert "conflicting-commit" not in kinds

    def test_blackbox_dump_deterministic_across_reruns(self, tmp_path):
        kwargs = dict(
            protocol="marlin", n=4, sim_time=6.0, byzantine="equivocator",
            dump="always",
        )
        first = audited_run(dump_dir=str(tmp_path / "a"), **kwargs)
        second = audited_run(dump_dir=str(tmp_path / "b"), **kwargs)
        assert first.blackbox_path and second.blackbox_path
        blob_a = open(first.blackbox_path, "rb").read()
        blob_b = open(second.blackbox_path, "rb").read()
        assert blob_a == blob_b
        meta, per_replica = read_blackbox(first.blackbox_path)
        assert meta["protocol"] == "marlin" and meta["byzantine"] == "equivocator"
        assert sorted(per_replica) == [0, 1, 2, 3]
        assert all(events for events in per_replica.values())

    def test_client_admissions_recorded(self):
        # Real client mode routes requests through ClientService.intake,
        # which reports each newly admitted operation to the observer.
        report = audited_run(
            "marlin", n=4, sim_time=6.0, byzantine="reply-forger", dump="never"
        )
        meta_events = sum(report.events_recorded.values())
        assert meta_events > 0

    def test_complexity_sweep_small(self):
        sweep = complexity_sweep("marlin", sizes=(4, 16), seed=3)
        assert sweep.sizes == [4, 16]
        assert all(p.bytes > 0 for p in sweep.happy)
        assert all(p.messages > 0 for p in sweep.view_change)
        payload = sweep.to_dict()
        assert len(payload["fits"]) == 4
        # Two sizes fit an exact line; the verdict machinery must run.
        assert all(fit["slope"] == fit["slope"] for fit in payload["fits"])


class TestAsyncioTrafficStats:
    def test_stats_mirror_simnet_counters(self):
        from repro.network.asyncio_net import AsyncioNetwork

        async def main():
            net = AsyncioNetwork()
            net.register(0, lambda s, p: None)
            net.register(1, lambda s, p: None)
            seen = []
            net.add_tap(seen.append)
            net.send(0, 1, b"xxxx")
            net.send(1, 0, b"yy")
            await asyncio.sleep(0.01)
            stats = net.stats
            assert stats.messages == 2
            assert stats.per_pair[(0, 1)] == 1
            assert stats.per_pair_bytes[(0, 1)] > 0
            assert len(seen) == 2
            assert {(e.src, e.dst) for e in seen} == {(0, 1), (1, 0)}
            net.reset_stats()
            assert net.stats.messages == 0
            net.set_recording(False)
            net.send(0, 1, b"zz")
            await asyncio.sleep(0.01)
            assert net.stats.messages == 0
            await net.close()

        asyncio.run(main())


class TestAsyncioAuditWiring:
    def test_local_cluster_clean_run_zero_violations(self):
        from repro.obs.observer import RunObservability
        from repro.runtime.cluster import LocalCluster

        async def main():
            observability = RunObservability(trace=False, flight=True, audit=True)
            cluster = LocalCluster(f=1, observability=observability)
            async with cluster:
                for i in range(3):
                    await cluster.submit(b"op-%d" % i)
                await cluster.wait_for_height(1, timeout=10.0)
            return observability

        observability = asyncio.run(main())
        report = observability.audit_report()
        assert report["ok"], report
        assert report["events_audited"] > 0
        # The transport mirrored simnet's TrafficStats.
        assert all(rec.total_recorded > 0 for rec in observability.recorders.values())
