"""Cost models, node contexts, and crypto cost tracking."""

from __future__ import annotations

import pytest

from repro.common.config import MachineProfile
from repro.consensus.block import Operation, genesis_block, make_child
from repro.consensus.context import LocalContext
from repro.consensus.costs import PaperCostModel, ZeroCostModel
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.crypto.cost_model import CryptoCostTracker, CryptoOp
from repro.crypto.hashing import digest_of


def _block(num_ops: int):
    ops = tuple(Operation(client_id=1, sequence=i, payload=b"x" * 150) for i in range(num_ops))
    return make_child(genesis_block(), 1, ops, digest_of("qc"))


def _qc(view: int = 1):
    return QuorumCertificate(
        phase=Phase.PREPARE,
        view=view,
        block=BlockSummary(digest=b"\0" * 32, view=view, height=1, parent_view=0),
        signature=None,
    )


class TestZeroCostModel:
    def test_everything_free(self):
        model = ZeroCostModel()
        assert model.verify_block(_block(10)) == 0.0
        assert model.verify_qc(_qc()) == 0.0
        assert model.sign_vote() == 0.0
        assert model.db_write(_block(1)) == 0.0


class TestPaperCostModel:
    def test_client_sigs_off_critical_path_by_default(self):
        """Default model: block admission is hash-only (the paper's ops
        are opaque payloads; no per-op signature verification)."""
        machine = MachineProfile.paper_testbed()
        model = PaperCostModel(machine, scheme="threshold", quorum=3)
        assert model.verify_block(_block(160)) < machine.verify_cost

    def test_client_sig_ablation_parallelised(self):
        machine = MachineProfile.paper_testbed()
        model = PaperCostModel(machine, scheme="threshold", quorum=3, verify_client_sigs=True)
        serial_estimate = 160 * machine.verify_cost
        assert model.verify_block(_block(160)) == pytest.approx(
            serial_estimate / machine.cores, rel=0.1
        )

    def test_threshold_qc_costs_one_pairing(self):
        machine = MachineProfile.paper_testbed()
        model = PaperCostModel(machine, scheme="threshold", quorum=21)
        assert model.verify_qc(_qc()) == pytest.approx(machine.pairing_cost)

    def test_multisig_qc_scales_with_quorum(self):
        machine = MachineProfile.paper_testbed()
        small = PaperCostModel(machine, scheme="multisig", quorum=3)
        large = PaperCostModel(machine, scheme="multisig", quorum=21)
        assert large.verify_qc(_qc()) > small.verify_qc(_qc())

    def test_genesis_qc_free(self):
        model = PaperCostModel(MachineProfile.paper_testbed())
        assert model.verify_qc(_qc(view=0)) == 0.0

    def test_empty_block_free_verify(self):
        model = PaperCostModel(MachineProfile.paper_testbed())
        assert model.verify_block(_block(0)) == 0.0

    def test_db_write_grows_with_size(self):
        model = PaperCostModel(MachineProfile.paper_testbed())
        assert model.db_write(_block(100)) > model.db_write(_block(1))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            PaperCostModel(MachineProfile.paper_testbed(), scheme="quantum")

    def test_combine_null_scheme_maps_to_threshold(self):
        model = PaperCostModel(MachineProfile.paper_testbed(), scheme="null")
        assert model.scheme == "threshold"


class TestCryptoCostTracker:
    def test_counts_and_time(self):
        tracker = CryptoCostTracker()
        tracker.sign()
        tracker.verify(3)
        tracker.pairing()
        tracker.combine(21)
        snapshot = tracker.snapshot()
        assert snapshot["sign"] == 1
        assert snapshot["verify"] == 3
        assert snapshot["pairing"] == 1
        assert snapshot["combine"] == 21
        assert tracker.total_time > 0

    def test_reset(self):
        tracker = CryptoCostTracker()
        tracker.sign()
        tracker.reset()
        assert tracker.snapshot() == {}
        assert tracker.total_time == 0.0

    def test_hash_cost_scales(self):
        tracker = CryptoCostTracker()
        small = tracker.hash_data(100)
        large = tracker.hash_data(100_000)
        assert large > small
        assert tracker.counts[CryptoOp.HASH] == 2


class TestLocalContext:
    def test_outbox_and_broadcast(self):
        ctx = LocalContext(replica_id=0, num_replicas=4)
        ctx.send(2, "direct")
        ctx.broadcast("wide")
        assert (2, "direct") in ctx.outbox
        assert sum(1 for _, p in ctx.outbox if p == "wide") == 4

    def test_timers_manual_fire(self):
        ctx = LocalContext(0, 4)
        fired = []
        ctx.set_timer("t", 1.0, lambda: fired.append(ctx.now))
        ctx.fire_timer("t")
        assert fired == [1.0]
        assert "t" not in ctx.timers

    def test_cancel_timer(self):
        ctx = LocalContext(0, 4)
        ctx.set_timer("t", 1.0, lambda: None)
        ctx.cancel_timer("t")
        assert "t" not in ctx.timers

    def test_charge_accumulates(self):
        ctx = LocalContext(0, 4)
        ctx.charge(0.5)
        ctx.charge(0.25)
        assert ctx.cpu_charged == pytest.approx(0.75)

    def test_drain_clears(self):
        ctx = LocalContext(0, 4)
        ctx.send(1, "x")
        assert ctx.drain() == [(1, "x")]
        assert ctx.outbox == []
