"""Quorum multi-signatures (the 'group of n signatures' instantiation)."""

from __future__ import annotations

import pytest

from repro.common.errors import CryptoError, InvalidSignature
from repro.crypto.multisig import MultiSigAccumulator, MultiSignature
from repro.crypto.signatures import SigningKey


def _sig(i: int, msg: bytes = b"m"):
    return SigningKey.from_seed(f"k{i}").sign(msg)


class TestAccumulator:
    def test_quorum_detection(self):
        acc = MultiSigAccumulator(group_size=4, quorum=3)
        assert not acc.add(0, _sig(0))
        assert not acc.add(1, _sig(1))
        assert acc.add(2, _sig(2))
        assert acc.complete

    def test_duplicates_ignored(self):
        acc = MultiSigAccumulator(group_size=4, quorum=3)
        acc.add(0, _sig(0))
        acc.add(0, _sig(0))
        assert acc.count == 1

    def test_first_signature_wins(self):
        acc = MultiSigAccumulator(group_size=4, quorum=1)
        first = _sig(0, b"a")
        acc.add(0, first)
        acc.add(0, _sig(0, b"b"))
        assert acc.finish().signatures[0][1] == first

    def test_finish_before_quorum_raises(self):
        acc = MultiSigAccumulator(group_size=4, quorum=3)
        acc.add(0, _sig(0))
        with pytest.raises(InvalidSignature):
            acc.finish()

    def test_finish_takes_exactly_quorum(self):
        acc = MultiSigAccumulator(group_size=4, quorum=3)
        for i in range(4):
            acc.add(i, _sig(i))
        bundle = acc.finish()
        assert len(bundle.signatures) == 3

    def test_out_of_group_signer(self):
        acc = MultiSigAccumulator(group_size=4, quorum=3)
        with pytest.raises(CryptoError):
            acc.add(7, _sig(7))

    def test_invalid_quorum(self):
        with pytest.raises(CryptoError):
            MultiSigAccumulator(group_size=4, quorum=5)


class TestMultiSignature:
    def test_authenticator_count(self):
        bundle = MultiSignature(
            signatures=((0, _sig(0)), (1, _sig(1)), (2, _sig(2))), group_size=4
        )
        assert bundle.num_authenticators == 3
        assert bundle.signers == {0, 1, 2}

    def test_wire_size_includes_bitmap(self):
        bundle = MultiSignature(signatures=((0, _sig(0)),), group_size=16)
        assert bundle.wire_size == 64 + 2

    def test_duplicate_signer_rejected(self):
        with pytest.raises(CryptoError):
            MultiSignature(signatures=((0, _sig(0)), (0, _sig(0))), group_size=4)

    def test_out_of_range_signer_rejected(self):
        with pytest.raises(CryptoError):
            MultiSignature(signatures=((9, _sig(9)),), group_size=4)
