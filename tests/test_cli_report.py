"""The CLI and report formatting."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.harness.report import format_table, ktx, ms, ratio_str


class TestReportHelpers:
    def test_format_table_alignment(self):
        table = format_table("title", ["a", "bb"], [["1", "2"], ["333", "4"]])
        assert "title" in table
        lines = table.splitlines()
        assert any("333" in line for line in lines)

    def test_ktx(self):
        assert ktx(12345.0) == "12.35"

    def test_ms(self):
        assert ms(0.1234) == "123.4"

    def test_ratio(self):
        assert ratio_str(110, 100) == "+10.0%"
        assert ratio_str(90, 100) == "-10.0%"
        assert ratio_str(1, 0) == "n/a"


class TestCliParser:
    def test_all_subcommands_parse(self):
        parser = build_parser()
        for argv in (
            ["point", "--protocol", "marlin", "--clients", "100"],
            ["curve", "--f", "2"],
            ["peak"],
            ["viewchange", "--unhappy"],
            ["rotate", "--crashed", "1"],
            ["table1"],
            ["fuzz", "--seed", "5"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["point", "--protocol", "raft"])


class TestCliExecution:
    def test_point_runs(self, capsys):
        assert main(["point", "--clients", "64", "--sim-time", "6", "--warmup", "2"]) == 0
        out = capsys.readouterr().out
        assert "marlin f=1" in out

    def test_viewchange_runs(self, capsys):
        assert main(["viewchange", "--sim-time", "10"]) == 0
        assert "view change latency" in capsys.readouterr().out

    def test_fuzz_runs(self, capsys):
        assert main(["fuzz", "--seed", "1", "--sim-time", "8"]) == 0
        assert "safety           : OK" in capsys.readouterr().out
