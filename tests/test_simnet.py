"""The simulated network: latency, shaping, partitions, accounting."""

from __future__ import annotations

import pytest

from repro.common.config import NetworkProfile
from repro.common.errors import UnknownPeer
from repro.des.simulator import Simulator
from repro.network.simnet import SimNetwork


def make_net(sim: Simulator, **profile_kwargs) -> SimNetwork:
    defaults = dict(one_way_latency=0.040, bandwidth_bps=1e9, nic_bps=1e10, jitter=0.0)
    defaults.update(profile_kwargs)
    return SimNetwork(sim, NetworkProfile(**defaults))


class Sink:
    def __init__(self) -> None:
        self.received: list[tuple[float, int, object]] = []

    def handler(self, sim: Simulator):
        def handle(src: int, payload: object) -> None:
            self.received.append((sim.now, src, payload))

        return handle


class TestDelivery:
    def test_latency_applied(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.send(0, 1, "hello")
        sim.run()
        assert len(sink.received) == 1
        when, src, payload = sink.received[0]
        assert src == 0 and payload == "hello"
        assert when == pytest.approx(0.040, abs=1e-3)

    def test_loopback_fast(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.send(0, 0, "self")
        sim.run()
        assert sink.received[0][0] < 1e-3

    def test_unknown_destination(self):
        sim = Simulator()
        net = make_net(sim)
        net.register(0, lambda s, p: None)
        with pytest.raises(UnknownPeer):
            net.send(0, 9, "x")

    def test_fifo_per_link(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        for i in range(10):
            net.send(0, 1, i)
        sim.run()
        assert [p for _, _, p in sink.received] == list(range(10))


class TestBatchedDelivery:
    """Same-instant deliveries on one link share one heap event but are
    still counted (and delivered) individually."""

    def test_burst_coalesces_heap_events_but_counts_each_delivery(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.set_unshaped(0)  # constant latency: one arrival instant
        for i in range(10):
            net.send(0, 1, i)
        assert sim.pending == 1  # ten deliveries, one scheduled drain
        sim.run()
        assert [p for _, _, p in sink.received] == list(range(10))
        assert sim.events_processed == 10  # deliveries counted individually

    def test_loopback_burst_coalesces(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        for i in range(5):
            net.send(0, 0, i)
        assert sim.pending == 1
        sim.run()
        assert [p for _, _, p in sink.received] == list(range(5))
        assert sim.events_processed == 5

    def test_distinct_links_not_coalesced(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        for i in range(3):
            net.register(i, sink.handler(sim))
        net.set_unshaped(0)
        net.send(0, 1, "a")
        net.send(0, 2, "b")
        assert sim.pending == 2
        sim.run()
        assert sim.events_processed == 2

    def test_later_send_opens_new_batch(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.set_unshaped(0)
        net.send(0, 1, "early")
        sim.schedule(0.010, lambda: net.send(0, 1, "late"))
        sim.run()
        assert [p for _, _, p in sink.received] == ["early", "late"]
        times = [t for t, _, _ in sink.received]
        assert times[0] != times[1]

    def test_metrics_and_taps_see_every_delivery(self):
        sim = Simulator()
        net = make_net(sim)
        seen = []
        net.register(0, lambda s, p: None)
        net.register(1, lambda s, p: None)
        net.set_unshaped(0)
        net.add_tap(lambda env: seen.append(env.payload))
        for i in range(4):
            net.send(0, 1, i)
        sim.run()
        assert seen == [0, 1, 2, 3]


class TestBandwidth:
    def test_link_serialisation_delay(self):
        # 1 MB at 8 Mbps link = 1 second of serialisation.
        sim = Simulator()
        net = make_net(sim, bandwidth_bps=8e6)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))

        class Big:
            wire_size = 1_000_000

        net.send(0, 1, Big())
        sim.run()
        assert sink.received[0][0] == pytest.approx(1.0 + 0.040, rel=0.02)

    def test_nic_shared_across_destinations(self):
        # Broadcasting two 1 MB messages through an 8 Mbps NIC serialises
        # them back to back: the second arrives ~1 s after the first.
        sim = Simulator()
        net = make_net(sim, bandwidth_bps=1e12, nic_bps=8e6)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.register(2, sink.handler(sim))

        class Big:
            wire_size = 1_000_000

        net.send(0, 1, Big())
        net.send(0, 2, Big())
        sim.run()
        times = sorted(t for t, _, _ in sink.received)
        assert times[1] - times[0] == pytest.approx(1.0, rel=0.02)

    def test_unshaped_endpoint_skips_queues(self):
        sim = Simulator()
        net = make_net(sim, bandwidth_bps=8e6, nic_bps=8e6)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.set_unshaped(0)

        class Big:
            wire_size = 1_000_000

        net.send(0, 1, Big())
        sim.run()
        assert sink.received[0][0] == pytest.approx(0.040, abs=1e-3)


class TestFaults:
    def test_cut_and_heal(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.cut(0, 1)
        net.send(0, 1, "lost")
        sim.run()
        assert sink.received == []
        assert net.stats.dropped == 1
        net.heal(0, 1)
        net.send(0, 1, "found")
        sim.run()
        assert [p for _, _, p in sink.received] == ["found"]

    def test_partition(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        for i in range(4):
            net.register(i, sink.handler(sim))
        net.partition([0, 1], [2, 3])
        net.send(0, 2, "x")
        net.send(3, 1, "y")
        net.send(0, 1, "ok")
        sim.run()
        assert [p for _, _, p in sink.received] == ["ok"]
        net.heal_all()
        net.send(0, 2, "back")
        sim.run()
        assert sink.received[-1][2] == "back"

    def test_loss_rate(self):
        sim = Simulator(seed=1)
        net = make_net(sim, loss_rate=0.5)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        for _ in range(200):
            net.send(0, 1, "m")
        sim.run()
        assert 40 < len(sink.received) < 160


class TestAccounting:
    def test_stats_counts(self):
        sim = Simulator()
        net = make_net(sim)
        net.register(0, lambda s, p: None)
        net.register(1, lambda s, p: None)
        net.send(0, 1, "a")
        net.send(0, 1, "b")
        assert net.stats.messages == 2
        assert net.stats.bytes > 0
        assert net.stats.per_pair[(0, 1)] == 2

    def test_stats_per_pair_bytes(self):
        sim = Simulator()
        net = make_net(sim)
        net.register(0, lambda s, p: None)
        net.register(1, lambda s, p: None)
        net.send(0, 1, "a")
        net.send(0, 1, "b")
        net.send(1, 0, "c")
        # Byte counters mirror the message counters per directed link and
        # sum to the aggregate.
        assert set(net.stats.per_pair_bytes) == set(net.stats.per_pair)
        assert net.stats.per_pair_bytes[(0, 1)] > net.stats.per_pair_bytes[(1, 0)]
        assert sum(net.stats.per_pair_bytes.values()) == net.stats.bytes

    def test_sizer_fallback_counted_and_warned_once(self, caplog):
        import logging

        from repro.network.message import WireSizer

        class Mystery:
            pass

        sizer = WireSizer()
        with caplog.at_level(logging.WARNING, logger="repro.network.sizer"):
            for _ in range(3):
                sizer.size_of(Mystery())  # fresh object defeats the memo
        assert sizer.fallback_count == 3
        assert sizer.fallback_types == {"Mystery": 3}
        warnings_seen = [r for r in caplog.records if "Mystery" in r.getMessage()]
        assert len(warnings_seen) == 1  # warned once per type, not per payload

    def test_sizer_fallback_counter_binding(self):
        from repro.network.message import WireSizer

        class Counter:
            value = 0

            def inc(self) -> None:
                self.value += 1

        class Mystery:
            pass

        sizer = WireSizer()
        counter = Counter()
        sizer.bind_fallback_counter(counter)
        sizer.size_of(Mystery())
        sizer.size_of(Mystery())
        assert counter.value == 2

    def test_cluster_binds_sizer_fallback_counter(self):
        from repro.common.config import ClusterConfig, ExperimentConfig
        from repro.harness.des_runtime import DESCluster
        from repro.obs.observer import RunObservability

        obs = RunObservability(trace=False)
        cluster = DESCluster(
            ExperimentConfig(cluster=ClusterConfig.for_f(1), seed=1),
            protocol="marlin",
            crypto_mode="null",
            observability=obs,
        )
        assert cluster.network._sizer._fallback_counter is not None

        class Mystery:
            pass

        cluster.network._sizer.size_of(Mystery())
        assert cluster.network._sizer._fallback_counter.value == 1

    def test_recording_toggle(self):
        sim = Simulator()
        net = make_net(sim)
        net.register(0, lambda s, p: None)
        net.register(1, lambda s, p: None)
        net.set_recording(False)
        net.send(0, 1, "a")
        assert net.stats.messages == 0

    def test_tap_sees_deliveries(self):
        sim = Simulator()
        net = make_net(sim)
        seen = []
        net.register(0, lambda s, p: None)
        net.register(1, lambda s, p: None)
        net.add_tap(lambda env: seen.append(env.payload))
        net.send(0, 1, "x")
        sim.run()
        assert seen == ["x"]

    def test_extra_link_latency(self):
        sim = Simulator()
        net = make_net(sim)
        sink = Sink()
        net.register(0, sink.handler(sim))
        net.register(1, sink.handler(sim))
        net.link(0, 1).extra_latency = 0.5
        net.send(0, 1, "slow")
        sim.run()
        assert sink.received[0][0] == pytest.approx(0.540, abs=1e-2)
