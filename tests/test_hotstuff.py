"""Basic HotStuff: three phases, precommit locking, view changes."""

from __future__ import annotations

from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.messages import Justify, PhaseMsg, ViewChangeMsg, VoteMsg
from repro.consensus.qc import Phase

from tests.helpers import LocalNet


def make_net(**kwargs) -> LocalNet:
    net = LocalNet(HotStuffReplica, n=4, **kwargs)
    net.start()
    return net


class TestNormalCase:
    def test_bootstrap_and_commit(self):
        net = make_net()
        assert net.views() == [1, 1, 1, 1]
        net.submit(0, [b"x", b"y"])
        net.pump()
        heights = net.heights()
        assert len(set(heights)) == 1 and heights[0] >= 1
        assert all(r.ledger.ops_committed == 2 for r in net.replicas)

    def test_three_phase_sequence(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        phases = [
            p.phase
            for src, dst, p in net.delivered
            if isinstance(p, PhaseMsg) and src == 0 and dst == 1
        ]
        first_prepare = phases.index(Phase.PREPARE)
        tail = phases[first_prepare : first_prepare + 4]
        assert tail == [Phase.PREPARE, Phase.PRECOMMIT, Phase.COMMIT, Phase.DECIDE]

    def test_lock_is_precommit_qc(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        for replica in net.replicas:
            assert replica.locked_qc.phase in (Phase.PRECOMMIT,)
        # highQC is the newest prepareQC.
        assert all(r.prepare_qc.phase == Phase.PREPARE for r in net.replicas)

    def test_one_more_phase_than_marlin(self):
        """HotStuff needs strictly more messages per block than Marlin."""
        from repro.consensus.marlin.replica import MarlinReplica

        hs = make_net()
        hs.delivered.clear()
        hs.submit(0, [b"x"])
        hs.pump()
        hs_msgs = len(hs.delivered)

        marlin = LocalNet(MarlinReplica, n=4)
        marlin.start()
        marlin.delivered.clear()
        marlin.submit(0, [b"x"])
        marlin.pump()
        assert hs_msgs > len(marlin.delivered)

    def test_vote_once_per_height(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        replica = net.replicas[1]
        qc = replica.prepare_qc
        from repro.consensus.block import Block

        votes_before = replica.stats["votes_sent"]
        for salt in (1, 2):
            block = Block(
                parent_link=qc.block.digest,
                parent_view=qc.block.view,
                view=1,
                height=qc.block.height + 1,
                operations=(),
                justify_digest=qc.digest,
                proposer=salt,
            )
            replica.on_message(0, PhaseMsg(phase=Phase.PREPARE, view=1, justify=Justify(qc), block=block))
        assert replica.stats["votes_sent"] == votes_before + 1


class TestViewChange:
    def test_crash_leader_recovery(self):
        net = make_net()
        net.submit(0, [b"pre"])
        net.pump()
        before = net.heights()[1]
        net.crash(0)
        net.timeout_all()
        net.submit(1, [b"post"], client=80)
        net.pump()
        alive_heights = [h for i, h in enumerate(net.heights()) if i != 0]
        assert len(set(alive_heights)) == 1 and alive_heights[0] > before
        assert all(r.cview == 2 for i, r in enumerate(net.replicas) if i != 0)

    def test_new_view_carries_prepare_qc(self):
        net = make_net()
        net.submit(0, [b"pre"])
        net.pump()
        net.crash(0)
        net.delivered.clear()
        net.timeout_all()
        new_views = [
            p for _, dst, p in net.delivered if isinstance(p, ViewChangeMsg) and dst == 1
        ]
        assert new_views
        assert all(m.justify.qc.phase == Phase.PREPARE for m in new_views)

    def test_leader_extends_highest_prepare_qc(self):
        net = make_net()
        net.submit(0, [b"pre"])
        net.pump()
        tip = net.replicas[1].prepare_qc
        net.crash(0)
        net.timeout_all()
        leader2 = net.replicas[1]
        assert leader2.prepare_qc.block.height >= tip.block.height

    def test_successive_crashes(self):
        net = make_net()
        net.submit(0, [b"one"])
        net.pump()
        net.crash(0)
        net.timeout_all()
        net.crash(1)
        net.timeout_all()
        net.submit(2, [b"two"], client=81)
        net.pump()
        alive = [net.replicas[2], net.replicas[3]]
        heights = [r.ledger.committed_height for r in alive]
        assert len(set(heights)) == 1 and heights[0] >= 1

    def test_unlock_via_higher_view_justify(self):
        """A replica locked in view 1 accepts a view-2 proposal whose
        justify has a higher view (the safeNode liveness rule)."""
        net = make_net()
        net.submit(0, [b"one"])
        net.pump()
        replica = net.replicas[3]
        assert replica.locked_qc.view == 1
        net.crash(0)
        net.timeout_all()
        net.submit(1, [b"two"], client=82)
        net.pump()
        assert replica.ledger.committed_height >= 2


class TestVoteHandling:
    def test_leader_ignores_votes_for_other_views(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        leader = net.replicas[0]
        vote = VoteMsg(
            phase=Phase.PREPARE,
            view=9,
            block=leader.prepare_qc.block,
            share=net.crypto.sign_vote(1, Phase.PREPARE, 9, leader.prepare_qc.block),
        )
        before = leader.stats["proposals_sent"]
        leader.on_message(1, vote)
        assert leader.stats["proposals_sent"] == before

    def test_forged_share_rejected(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        leader = net.replicas[0]
        block = leader.prepare_qc.block
        forged = VoteMsg(
            phase=Phase.COMMIT,
            view=1,
            block=block,
            share=net.crypto.sign_vote(2, Phase.COMMIT, 1, block),  # claims src 1
        )
        collector_before = leader.collector.votes_for(Phase.COMMIT, 1, block.digest)
        leader.on_message(1, forged)
        assert leader.collector.votes_for(Phase.COMMIT, 1, block.digest) == collector_before
