"""Durable replica recovery: crash a node, restart it from disk, rejoin."""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.app import KVStateMachine
from repro.runtime.cluster import LocalCluster
from repro.runtime.node import Node


def run(coro):
    return asyncio.run(coro)


def make_dirs(tmp_path, n=4):
    return [str(tmp_path / f"node{i}") for i in range(n)]


class TestColdRestart:
    def test_state_restored_from_disk(self, tmp_path):
        """Stop the whole cluster; a re-created node sees its old state."""

        async def main():
            dirs = make_dirs(tmp_path)
            async with LocalCluster(f=1, batch_size=4, data_dirs=dirs) as cluster:
                for i in range(6):
                    await cluster.submit(
                        KVStateMachine.encode_set(b"k%d" % i, b"v%d" % i)
                    )
                await cluster.wait_for_height(2, timeout=15, quorum_only=False)
                height_before = cluster.nodes[1].committed_height
                digest_before = cluster.nodes[1].app.state_digest()
                view_before = cluster.nodes[1].replica.cview
            # Everything shut down.  Rebuild node 1 from its directory.
            from repro.network.asyncio_net import AsyncioNetwork
            from repro.consensus.crypto_service import ThresholdCryptoService
            from repro.crypto.keys import KeyRegistry
            from repro.common.config import ClusterConfig

            config = ClusterConfig.for_f(1, batch_size=4)
            crypto = ThresholdCryptoService(KeyRegistry(4, 3, seed="0"))
            network = AsyncioNetwork()
            node = Node(1, config, network, crypto, data_dir=dirs[1])
            assert node.committed_height == height_before
            assert node.app.state_digest() == digest_before
            assert node._recovered_view == view_before
            assert node.app.get(b"k0") == b"v0"
            node.stop()
            await network.close()

        run(main())

    def test_fresh_directory_starts_clean(self, tmp_path):
        async def main():
            from repro.network.asyncio_net import AsyncioNetwork
            from repro.consensus.crypto_service import ThresholdCryptoService
            from repro.crypto.keys import KeyRegistry
            from repro.common.config import ClusterConfig

            config = ClusterConfig.for_f(1)
            crypto = ThresholdCryptoService(KeyRegistry(4, 3, seed="0"))
            network = AsyncioNetwork()
            node = Node(0, config, network, crypto, data_dir=str(tmp_path / "fresh"))
            assert node.committed_height == 0
            assert node._recovered_view is None
            node.stop()
            await network.close()

        run(main())


class TestLiveRejoin:
    def test_crashed_node_rejoins_and_catches_up(self, tmp_path):
        async def main():
            dirs = make_dirs(tmp_path)
            async with LocalCluster(
                f=1, batch_size=4, base_timeout=0.4, data_dirs=dirs
            ) as cluster:
                for i in range(6):
                    await cluster.submit(KVStateMachine.encode_add(b"acct", 1))
                await cluster.wait_for_height(2, timeout=15, quorum_only=False)
                # Crash a NON-leader; the cluster keeps going without it.
                cluster.crash(3)
                height_at_crash = cluster.nodes[3].committed_height
                for i in range(8):
                    await cluster.submit(KVStateMachine.encode_add(b"acct", 1))
                await cluster.wait_for_height(height_at_crash + 1, timeout=15)

                # Restart node 3 from disk; it must recover and catch up.
                node = await cluster.restart(3)
                assert node.committed_height >= height_at_crash
                target = max(n.committed_height for n in cluster.nodes[:3])
                deadline = asyncio.get_event_loop().time() + 20
                while node.committed_height < target:
                    if asyncio.get_event_loop().time() > deadline:
                        raise TimeoutError(
                            f"rejoined node stuck at {node.committed_height} < {target}"
                        )
                    # Keep a trickle of traffic flowing so catch-up
                    # messages (and new commits) reach the rejoiner.
                    await cluster.submit(KVStateMachine.encode_add(b"acct", 0))
                    await asyncio.sleep(0.05)
                assert node.app.balance(b"acct") == cluster.nodes[1].app.balance(b"acct")

        run(main())

    def test_recovered_ledger_refuses_forks(self, tmp_path):
        """mark_committed (the restore path) enforces chain linkage."""
        from repro.common.errors import SafetyViolation
        from repro.consensus.block import genesis_block, make_child
        from repro.consensus.blocktree import BlockTree
        from repro.consensus.ledger import Ledger
        from repro.crypto.hashing import digest_of

        tree = BlockTree(genesis_block())
        a = make_child(tree.genesis, 1, (), digest_of("qa"))
        orphan = make_child(a, 1, (), digest_of("qb"))
        tree.add(a)
        tree.add(orphan)
        ledger = Ledger(tree)
        with pytest.raises(SafetyViolation):
            ledger.mark_committed(orphan)  # skips height 1
        ledger.mark_committed(a)
        ledger.mark_committed(orphan)
        assert ledger.committed_height == 2
