"""Fast-HotStuff / Jolteon: two-phase commit, quadratic view change."""

from __future__ import annotations


from repro.common.config import ClusterConfig, ExperimentConfig
from repro.consensus.fasthotstuff import FastHotStuffReplica
from repro.consensus.messages import AggregateNewView
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import ClosedLoopClients

from tests.helpers import LocalNet
from tests.test_insecure_liveness import (
    advance_one_view,
    build_unsafe_snapshot_scenario,
)


class TestNormalCase:
    def test_two_phase_commit_inherited(self):
        net = LocalNet(FastHotStuffReplica, n=4)
        net.start()
        net.submit(0, [f"op-{i}".encode() for i in range(12)])
        net.pump()
        heights = net.heights()
        assert len(set(heights)) == 1 and heights[0] >= 2
        assert all(r.ledger.ops_committed == 12 for r in net.replicas)


class TestQuadraticViewChange:
    def test_crash_recovery_via_aggregate(self):
        net = LocalNet(FastHotStuffReplica, n=4)
        net.start()
        net.submit(0, [b"pre"])
        net.pump()
        net.crash(0)
        net.delivered.clear()
        net.timeout_all()
        aggregates = [
            p for _, _, p in net.delivered if isinstance(p, AggregateNewView)
        ]
        assert aggregates, "the view change must use the aggregate broadcast"
        assert len(aggregates[0].proofs) >= 3  # the full quorum travels
        net.submit(1, [b"post"], client=70)
        net.pump()
        alive = net.replicas[1:]
        assert all(r.ledger.ops_committed == 2 for r in alive)

    def test_unsafe_snapshot_recovers_by_unlock(self):
        """Where the *insecure* strawman stalls forever, Fast-HotStuff
        recovers: the quorum evidence forcibly unlocks the locked replica
        (at quadratic cost — Marlin achieves the same recovery linearly)."""
        net = build_unsafe_snapshot_scenario(FastHotStuffReplica)
        advance_one_view(net)
        alive = net.replicas[1:]
        heights = [r.ledger.committed_height for r in alive]
        assert min(heights) >= net.b1_height
        # The previously locked replica voted again (it was unlocked).
        leader_id = net.config.leader_of(max(net.views()))
        net.submit(leader_id, [b"onwards"], client=90)
        net.pump()
        assert min(r.ledger.committed_height for r in alive) > net.b1_height

    def test_aggregate_without_quorum_rejected(self):
        net = LocalNet(FastHotStuffReplica, n=4)
        net.start()
        net.submit(0, [b"x"])
        net.pump()
        replica = net.replicas[1]
        # Craft an aggregate with a single proof: must be ignored.
        from repro.consensus.messages import Justify, ViewChangeMsg
        from repro.consensus.qc import Phase
        from repro.consensus.block import Block

        qc = replica.locked_qc
        lb = qc.block
        proof = ViewChangeMsg(
            view=2, last_voted=lb, justify=Justify(qc),
            share=net.crypto.sign_vote(3, Phase.PREPARE, 2, lb),
        )
        block = Block(
            parent_link=qc.block.digest,
            parent_view=qc.block.view,
            view=2,
            height=qc.block.height + 1,
            operations=(),
            justify_digest=qc.digest,
            proposer=1,
        )
        votes_before = replica.stats["votes_sent"]
        replica.on_message(
            1,
            AggregateNewView(view=2, block=block, justify=Justify(qc), proofs=((3, proof),)),
        )
        assert replica.stats["votes_sent"] == votes_before

    def test_view_change_bytes_grow_quadratically_vs_marlin(self):
        """The measured Table I contrast: Fast-HotStuff's view-change
        bytes grow ~n times faster than Marlin's."""
        from repro.harness.scenarios import measure_view_change_cost

        marlin_small = measure_view_change_cost("marlin", 1)
        marlin_large = measure_view_change_cost("marlin", 3)
        fhs_small = measure_view_change_cost("fast-hotstuff", 1)
        fhs_large = measure_view_change_cost("fast-hotstuff", 3)
        # VC-specific authenticators: Marlin ~ Theta(n) (each of n
        # VIEW-CHANGE messages carries O(1)); Fast-HotStuff ~ Theta(n^2)
        # (n aggregate broadcasts each embedding n proofs).
        marlin_growth = marlin_large.vc_authenticators / marlin_small.vc_authenticators
        fhs_growth = fhs_large.vc_authenticators / fhs_small.vc_authenticators
        n_ratio = fhs_large.n / fhs_small.n  # 2.5
        assert marlin_growth < n_ratio * 1.4, f"Marlin not linear: {marlin_growth:.2f}"
        assert fhs_growth > n_ratio * 1.6, f"FHS not quadratic: {fhs_growth:.2f}"
        # And at the same n, FHS moves strictly more VC bytes.
        assert fhs_large.vc_bytes > marlin_large.vc_bytes


class TestOnDES:
    def test_end_to_end_with_crash(self):
        experiment = ExperimentConfig(
            cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.5),
            seed=41,
        )
        cluster = DESCluster(experiment, protocol="fast-hotstuff", crypto_mode="null")
        pool = ClosedLoopClients(cluster, num_clients=16, token_weight=1, target="all")
        cluster.start()
        cluster.sim.schedule(0.01, pool.start)
        cluster.crash_at(0, 2.0)
        cluster.run(until=12.0)
        cluster.assert_safety()
        post = [when for rid, _, _, when in cluster.auditor.commits if when > 2.5 and rid != 0]
        assert post
