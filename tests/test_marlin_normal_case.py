"""Marlin normal case (paper Fig. 6/7): two phases, locking, pipelining."""

from __future__ import annotations

from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import PhaseMsg, VoteMsg
from repro.consensus.qc import Phase

from tests.helpers import LocalNet


def make_net(**kwargs) -> LocalNet:
    net = LocalNet(MarlinReplica, n=4, **kwargs)
    net.start()
    return net


class TestBootstrap:
    def test_view_one_via_happy_view_change(self):
        net = make_net()
        assert net.views() == [1, 1, 1, 1]
        leader = net.replicas[0]
        assert leader.stats["happy_view_changes"] == 1
        assert leader._leader_ready

    def test_genesis_committed_at_bootstrap(self):
        # The happy-path COMMIT of the shared lb (genesis) completes but
        # commits nothing (genesis is committed by construction).
        net = make_net()
        assert net.heights() == [0, 0, 0, 0]


class TestTwoPhaseCommit:
    def test_all_ops_commit_on_all_replicas(self):
        net = make_net()
        net.submit(0, [b"op-a", b"op-b"])
        net.pump()
        # The first request proposes immediately; the second batches into
        # the next pipelined block — so two blocks, two ops, everywhere.
        assert net.heights() == [2, 2, 2, 2]
        ops = [r.ledger.ops_committed for r in net.replicas]
        assert ops == [2, 2, 2, 2]

    def test_phase_sequence_is_prepare_commit_decide(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        phases = [
            p.phase
            for src, dst, p in net.delivered
            if isinstance(p, PhaseMsg) and src == 0 and dst == 1 and p.view == 1
        ]
        # Bootstrap COMMIT/DECIDE for genesis, then the block's cycle.
        assert phases[-3:] == [Phase.PREPARE, Phase.COMMIT, Phase.DECIDE]

    def test_no_precommit_phase_ever(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        assert not any(
            isinstance(p, (PhaseMsg, VoteMsg)) and p.phase == Phase.PRECOMMIT
            for _, _, p in net.delivered
        )

    def test_multiple_blocks_same_view(self):
        net = make_net()
        for round_ in range(3):
            net.submit(0, [f"round-{round_}-{i}".encode() for i in range(4)], client=60 + round_)
            net.pump()
        heights = net.heights()
        assert len(set(heights)) == 1 and heights[0] >= 3
        assert all(r.cview == 1 for r in net.replicas)
        assert all(r.ledger.ops_committed == 12 for r in net.replicas)

    def test_batching_respects_cap(self):
        net = make_net()
        net.submit(0, [f"op-{i}".encode() for i in range(20)])
        net.pump()
        # batch_size=8, first request proposes alone: 1 + 8 + 8 + 3 ops.
        assert net.heights() == [4, 4, 4, 4]
        assert all(r.ledger.ops_committed == 20 for r in net.replicas)


class TestLocking:
    def test_replicas_lock_on_prepare_qc(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        for replica in net.replicas:
            assert replica.locked_qc.phase == Phase.PREPARE
            assert replica.locked_qc.view == 1
            assert replica.locked_qc.block.height == 1

    def test_lock_rank_monotone(self):
        net = make_net()
        locks = []
        for i in range(3):
            net.submit(0, [f"b{i}".encode()], client=70 + i)
            net.pump()
            locks.append(net.replicas[1].locked_qc.block.height)
        assert locks == sorted(locks)

    def test_last_voted_updates(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        for replica in net.replicas:
            assert replica.last_voted.height == 1
            assert replica.last_voted.view == 1


class TestVoteRules:
    def test_replica_rejects_equivocating_second_proposal(self):
        """A Byzantine leader proposing two blocks at one height gets at
        most one voted per replica (block rank rule)."""
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        leader = net.replicas[0]
        replica = net.replicas[1]
        # Forge a conflicting sibling of the committed block at height 1.
        from repro.consensus.block import Block
        from repro.consensus.messages import Justify

        qc = leader.high_qc.qc  # prepareQC for height 1
        # The replica voted height 1 already; a fresh height-2 extension is
        # votable, but a *second* height-2 extension must be refused.
        votes_before = replica.stats["votes_sent"]
        for salt in (b"first", b"second"):
            block = Block(
                parent_link=qc.block.digest,
                parent_view=qc.block.view,
                view=1,
                height=qc.block.height + 1,
                operations=(),
                justify_digest=qc.digest,
                proposer=0,
            )
            block = Block(
                parent_link=qc.block.digest,
                parent_view=qc.block.view,
                view=1,
                height=qc.block.height + 1,
                operations=tuple(),
                justify_digest=qc.digest,
                proposer=salt[0],
            )
            replica.on_message(0, PhaseMsg(phase=Phase.PREPARE, view=1, justify=Justify(qc), block=block))
        assert replica.stats["votes_sent"] == votes_before + 1

    def test_replica_ignores_non_leader_proposals(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        replica = net.replicas[1]
        qc = replica.high_qc.qc
        from repro.consensus.block import Block
        from repro.consensus.messages import Justify

        block = Block(
            parent_link=qc.block.digest,
            parent_view=qc.block.view,
            view=1,
            height=qc.block.height + 1,
            operations=(),
            justify_digest=qc.digest,
            proposer=2,
        )
        votes_before = replica.stats["votes_sent"]
        replica.on_message(2, PhaseMsg(phase=Phase.PREPARE, view=1, justify=Justify(qc), block=block))
        assert replica.stats["votes_sent"] == votes_before

    def test_commit_requires_current_view_qc(self):
        net = make_net()
        net.submit(0, [b"x"])
        net.pump()
        replica = net.replicas[1]
        stale = replica.genesis_qc
        from repro.consensus.messages import Justify

        votes_before = replica.stats["votes_sent"]
        replica.on_message(0, PhaseMsg(phase=Phase.COMMIT, view=1, justify=Justify(stale)))
        assert replica.stats["votes_sent"] == votes_before


class TestPipelining:
    def test_one_outstanding_prepare(self):
        net = LocalNet(MarlinReplica, n=4)
        net.start()
        # Submit enough for several blocks, pumping only partially so the
        # pipeline state is observable.
        net.submit(0, [f"op-{i}".encode() for i in range(24)])
        leader = net.replicas[0]
        assert leader._outstanding_prepare is not None
        net.pump()
        assert leader._outstanding_prepare is None
        # 1 + 8 + 8 + 7 ops across four pipelined blocks.
        assert net.heights() == [4, 4, 4, 4]
