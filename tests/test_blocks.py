"""Blocks, operations, batching."""

from __future__ import annotations

import pytest

from repro.common.errors import InvalidBlock
from repro.consensus.block import (
    BatchPool,
    Block,
    Operation,
    genesis_block,
    make_child,
)
from repro.crypto.hashing import digest_of


def op(seq: int, weight: int = 1, client: int = 1) -> Operation:
    return Operation(client_id=client, sequence=seq, payload=b"pay", weight=weight)


class TestOperation:
    def test_key(self):
        assert op(5, client=2).key() == (2, 5)

    def test_weighted_wire_size(self):
        single = op(0).wire_size
        assert op(0, weight=10).wire_size == 10 * single

    def test_weight_must_be_positive(self):
        with pytest.raises(InvalidBlock):
            Operation(client_id=0, sequence=0, weight=0)


class TestBlock:
    def test_genesis(self):
        g = genesis_block()
        assert g.is_genesis and not g.is_virtual
        assert g.height == 0 and g.view == 0

    def test_genesis_digest_stable(self):
        assert genesis_block().digest == genesis_block().digest

    def test_make_child(self):
        g = genesis_block()
        child = make_child(g, view=1, operations=(op(0),), justify_digest=digest_of("qc"))
        assert child.parent_link == g.digest
        assert child.height == 1
        assert child.parent_view == 0

    def test_digest_covers_all_fields(self):
        g = genesis_block()
        base = make_child(g, 1, (op(0),), digest_of("qc"))
        variants = [
            make_child(g, 2, (op(0),), digest_of("qc")),
            make_child(g, 1, (op(1),), digest_of("qc")),
            make_child(g, 1, (op(0),), digest_of("other")),
        ]
        digests = {base.digest} | {v.digest for v in variants}
        assert len(digests) == 4

    def test_virtual_block(self):
        block = Block(
            parent_link=None,
            parent_view=1,
            view=2,
            height=3,
            operations=(),
            justify_digest=digest_of("qc"),
        )
        assert block.is_virtual and not block.is_genesis

    def test_parent_view_cannot_exceed_view(self):
        with pytest.raises(InvalidBlock):
            Block(
                parent_link=None,
                parent_view=5,
                view=2,
                height=3,
                operations=(),
                justify_digest=digest_of("qc"),
            )

    def test_bad_parent_link_length(self):
        with pytest.raises(InvalidBlock):
            Block(
                parent_link=b"short",
                parent_view=0,
                view=1,
                height=1,
                operations=(),
                justify_digest=digest_of("qc"),
            )

    def test_num_ops_weighted(self):
        g = genesis_block()
        block = make_child(g, 1, (op(0, weight=5), op(1, weight=3)), digest_of("qc"))
        assert block.num_ops == 8

    def test_wire_size_decomposition(self):
        g = genesis_block()
        block = make_child(g, 1, (op(0), op(1)), digest_of("qc"))
        assert block.wire_size == block.header_size + block.payload_size


class TestBatchPool:
    def test_fifo_batching(self):
        pool = BatchPool(max_batch=2)
        for i in range(5):
            pool.add(op(i))
        assert [o.sequence for o in pool.next_batch()] == [0, 1]
        assert [o.sequence for o in pool.next_batch()] == [2, 3]
        assert [o.sequence for o in pool.next_batch()] == [4]
        assert pool.next_batch() == ()

    def test_duplicates_dropped(self):
        pool = BatchPool()
        assert pool.add(op(1))
        assert not pool.add(op(1))
        assert len(pool) == 1

    def test_weighted_cap(self):
        pool = BatchPool(max_batch=10)
        pool.add(op(0, weight=6))
        pool.add(op(1, weight=6))
        batch = pool.next_batch()
        assert [o.sequence for o in batch] == [0]

    def test_oversized_single_op_still_proposed(self):
        pool = BatchPool(max_batch=1)
        pool.add(op(0, weight=100))
        assert len(pool.next_batch()) == 1

    def test_forget_prunes_pending_but_not_dedup(self):
        pool = BatchPool()
        pool.add(op(0))
        pool.add(op(1))
        pool.forget((op(0),))
        assert len(pool) == 1
        assert not pool.add(op(0))  # still deduplicated

    def test_requeue(self):
        pool = BatchPool(max_batch=10)
        pool.add(op(0))
        pool.add(op(1))
        batch = pool.next_batch()
        pool.requeue(batch)
        assert [o.sequence for o in pool.next_batch()] == [0, 1]

    def test_pending_ops_weighted(self):
        pool = BatchPool()
        pool.add(op(0, weight=7))
        assert pool.pending_ops == 7
