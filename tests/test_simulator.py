"""The discrete-event simulator core, timers and processes."""

from __future__ import annotations

import pytest

from repro.des.process import Process
from repro.des.simulator import SimulationError, Simulator
from repro.des.timers import Timer, TimerWheel


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order: list[str] = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        order: list[int] = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen: list[float] = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_run_until_stops_clock_exactly(self):
        sim = Simulator()
        fired: list[float] = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert fired == []
        sim.run(until=10.0)
        assert fired == [5.0]

    def test_cancelled_events_skipped(self):
        sim = Simulator()
        fired: list[str] = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_events_scheduled_from_events(self):
        sim = Simulator()
        order: list[str] = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_max_events_bound(self):
        sim = Simulator()

        def rearm():
            sim.schedule(0.1, rearm)

        sim.schedule(0.1, rearm)
        sim.run(max_events=50)
        assert sim.events_processed == 50

    def test_determinism_across_runs(self):
        def run_once(seed: int) -> list[float]:
            sim = Simulator(seed=seed)
            log: list[float] = []

            def tick():
                log.append(sim.now + sim.rng.random())
                if len(log) < 10:
                    sim.schedule(sim.rng.uniform(0, 1), tick)

            sim.schedule(0.0, tick)
            sim.run()
            return log

        assert run_once(7) == run_once(7)
        assert run_once(7) != run_once(8)

    def test_step(self):
        sim = Simulator()
        fired: list[int] = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step()
        assert fired == [1]
        assert sim.step()
        assert not sim.step()

    @staticmethod
    def _inject_stale_event(sim: Simulator, time: float) -> None:
        # Corrupt the queue the way a scheduling bug would: an entry
        # behind the clock (schedule() itself refuses to create one).
        from heapq import heappush

        from repro.des.simulator import Event

        event = Event(time, sim._seq, lambda: None)
        heappush(sim._queue, (time, event.seq, event))

    def test_step_rejects_backwards_event(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert sim.now == 2.0
        self._inject_stale_event(sim, 1.0)
        with pytest.raises(SimulationError):
            sim.step()

    def test_run_rejects_backwards_event(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        self._inject_stale_event(sim, 1.0)
        with pytest.raises(SimulationError):
            sim.run()


class TestCompaction:
    """Mass-cancel storms must not grow the heap without bound."""

    def test_mass_cancel_compacts_heap(self):
        sim = Simulator()
        events = [sim.schedule(100.0 + i, lambda: None) for i in range(4000)]
        for event in events:
            event.cancel()
        # Without compaction all 4000 tombstones would sit in the queue
        # until popped; the >50% sweep keeps only a small residue.
        assert sim.pending < 300

    def test_view_change_storm_keeps_pending_bounded(self):
        # A view-change storm rearms timers over and over: each round
        # schedules a batch and cancels it.  pending must stay bounded
        # by the live set, not grow with the number of rounds.
        sim = Simulator()
        sim.schedule(1e9, lambda: None)  # one live event outlasting the storm
        peak = 0
        for _ in range(50):
            batch = [sim.schedule(1000.0, lambda: None) for _ in range(200)]
            for event in batch:
                event.cancel()
            peak = max(peak, sim.pending)
        assert sim.pending < 600
        assert peak < 600

    def test_compaction_preserves_behaviour(self):
        sim = Simulator()
        fired: list[int] = []
        for i in range(10):
            sim.schedule(5.0 + i * 0.001, lambda i=i: fired.append(i))
        doomed = [sim.schedule(50.0, lambda: fired.append(-1)) for _ in range(1000)]
        for event in doomed:
            event.cancel()
        sim.run()
        assert fired == list(range(10))

    def test_cancel_after_fire_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        event.cancel()
        event.cancel()
        assert sim.pending == 0


class TestTimers:
    def test_timer_fires(self):
        sim = Simulator()
        fired: list[float] = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        assert fired == [1.0]

    def test_restart_supersedes(self):
        sim = Simulator()
        fired: list[float] = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.start(3.0)
        sim.run()
        assert fired == [3.0]

    def test_cancel(self):
        sim = Simulator()
        fired: list[float] = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed

    def test_wheel_named_timers(self):
        sim = Simulator()
        fired: list[str] = []
        wheel = TimerWheel(sim)
        wheel.set("a", 1.0, lambda: fired.append("a"))
        wheel.set("b", 2.0, lambda: fired.append("b"))
        wheel.cancel("a")
        sim.run()
        assert fired == ["b"]

    def test_wheel_rearm_replaces_callback(self):
        sim = Simulator()
        fired: list[str] = []
        wheel = TimerWheel(sim)
        wheel.set("t", 1.0, lambda: fired.append("old"))
        wheel.set("t", 1.0, lambda: fired.append("new"))
        sim.run()
        assert fired == ["new"]


class TestProcess:
    def test_cpu_serialises_work(self):
        sim = Simulator()
        process = Process(sim, "p")
        end1 = process.charge(1.0)
        end2 = process.charge(2.0)
        assert end1 == pytest.approx(1.0)
        assert end2 == pytest.approx(3.0)
        assert process.cpu_busy_total == pytest.approx(3.0)

    def test_run_after_cpu(self):
        sim = Simulator()
        process = Process(sim, "p")
        done: list[float] = []
        process.run_after_cpu(0.5, lambda: done.append(sim.now))
        process.run_after_cpu(0.5, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_crash_drops_callbacks(self):
        sim = Simulator()
        process = Process(sim, "p")
        done: list[float] = []
        process.run_after(1.0, lambda: done.append(sim.now))
        process.crash()
        sim.run()
        assert done == []
        assert not process.alive

    def test_recover(self):
        sim = Simulator()
        process = Process(sim, "p")
        process.crash()
        process.recover()
        done: list[float] = []
        process.run_after(1.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [1.0]

    def test_cpu_idle_gap(self):
        sim = Simulator()
        process = Process(sim, "p")
        done: list[float] = []
        sim.schedule(5.0, lambda: process.run_after_cpu(1.0, lambda: done.append(sim.now)))
        sim.run()
        assert done == [pytest.approx(6.0)]

    def test_negative_charge_rejected(self):
        sim = Simulator()
        process = Process(sim, "p")
        with pytest.raises(ValueError):
            process.charge(-1.0)
