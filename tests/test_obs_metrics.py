"""The metrics registry: counters, gauges, histograms and exposition."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
    NetworkMetrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "ops")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_rejects_decrease(self):
        counter = MetricsRegistry().counter("ops_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_memoized_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("msgs_total", replica=0)
        b = registry.counter("msgs_total", replica=0)
        c = registry.counter("msgs_total", replica=1)
        assert a is b
        assert a is not c
        a.inc()
        assert b.value == 1 and c.value == 0

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.counter("m_total", replica=0, phase="prepare")
        b = registry.counter("m_total", phase="prepare", replica=0)
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.value == 12


class TestHistogram:
    def test_bucketing_and_overflow(self):
        hist = Histogram("lat", (), buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # one overflow
        assert hist.count == 4
        assert hist.sum == pytest.approx(5.555)

    def test_weighted_observe(self):
        hist = Histogram("lat", (), buckets=(1.0,))
        hist.observe(0.5, weight=10)
        assert hist.count == 10
        assert hist.sum == pytest.approx(5.0)
        assert hist.mean() == pytest.approx(0.5)

    def test_quantile_interpolates_within_bucket(self):
        hist = Histogram("lat", (), buckets=(1.0, 2.0))
        for _ in range(100):
            hist.observe(1.5)
        # All mass in the (1.0, 2.0] bucket: the median interpolates inside it.
        assert 1.0 < hist.quantile(0.5) <= 2.0

    def test_quantile_empty_and_bounds(self):
        hist = Histogram("lat", (), buckets=(1.0,))
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge_adds_bucket_counts(self):
        a = Histogram("lat", (), buckets=(1.0, 2.0))
        b = Histogram("lat", (), buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        a.merge_into(b)
        assert b.count == 2
        assert b.counts == [1, 1, 0]

    def test_merge_rejects_different_layouts(self):
        a = Histogram("lat", (), buckets=(1.0,))
        b = Histogram("lat", (), buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge_into(b)

    def test_registry_reuses_first_bucket_layout(self):
        registry = MetricsRegistry()
        first = registry.histogram("d_seconds", buckets=(0.1, 1.0), replica=0)
        second = registry.histogram("d_seconds", replica=1)
        assert second.buckets == first.buckets == (0.1, 1.0)

    def test_default_buckets(self):
        hist = MetricsRegistry().histogram("d_seconds")
        assert hist.buckets == DEFAULT_LATENCY_BUCKETS


class TestSnapshotAndAggregate:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        for replica in range(3):
            registry.counter("votes_total", "votes", replica=replica).inc(replica + 1)
            registry.gauge("height", "height", replica=replica).set(10 * replica)
            registry.histogram(
                "lat_seconds", "latency", buckets=(0.1, 1.0), replica=replica
            ).observe(0.05 * (replica + 1))
        return registry

    def test_snapshot_is_json_roundtrippable(self):
        snap = self._populated().snapshot()
        again = json.loads(json.dumps(snap))
        assert set(again) == {"counters", "gauges", "histograms"}
        series = again["counters"]["votes_total"]
        assert [s["value"] for s in series] == [1, 2, 3]
        assert [s["labels"]["replica"] for s in series] == ["0", "1", "2"]

    def test_aggregate_drops_replica_and_sums(self):
        cluster = self._populated().aggregate(drop_labels=("replica",))
        snap = cluster.snapshot()
        (votes,) = snap["counters"]["votes_total"]
        assert votes["labels"] == {}
        assert votes["value"] == 6
        (lat,) = snap["histograms"]["lat_seconds"]
        assert lat["count"] == 3
        assert lat["sum"] == pytest.approx(0.05 + 0.10 + 0.15)

    def test_aggregate_keeps_other_labels(self):
        registry = MetricsRegistry()
        registry.counter("m_total", replica=0, phase="prepare").inc()
        registry.counter("m_total", replica=1, phase="prepare").inc()
        registry.counter("m_total", replica=0, phase="commit").inc()
        snap = registry.aggregate().snapshot()
        series = {s["labels"]["phase"]: s["value"] for s in snap["counters"]["m_total"]}
        assert series == {"prepare": 2, "commit": 1}


def parse_prometheus(text: str) -> dict[str, dict[str, float]]:
    """Minimal text-exposition (0.0.4) parser: {family: {sample_line: value}}.

    Enforces the structural invariants a scraper relies on: every sample
    belongs to a preceding ``# TYPE`` family, values parse as floats, and
    label bodies are well-formed ``k="v"`` lists.
    """
    families: dict[str, dict[str, float]] = {}
    types: dict[str, str] = {}
    current: str | None = None
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram"), line
            types[name] = kind
            current = name
            families.setdefault(name, {})
            continue
        assert not line.startswith("#"), f"unknown comment: {line}"
        name_and_labels, _, value = line.rpartition(" ")
        name = name_and_labels.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
        assert base == current, f"sample {name} outside its family block"
        if "{" in name_and_labels:
            body = name_and_labels.split("{", 1)[1].rstrip("}")
            for part in body.split(","):
                key, _, val = part.partition("=")
                assert key.isidentifier() and val.startswith('"') and val.endswith('"')
        families[base][name_and_labels] = float(value)
    return families


class TestPrometheusExposition:
    def test_roundtrip_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.counter("votes_total", "votes cast", replica=1).inc(7)
        registry.gauge("view", "current view", replica=1).set(3)
        families = parse_prometheus(registry.render_prometheus())
        assert families["votes_total"] == {'votes_total{replica="1"}': 7.0}
        assert families["view"] == {'view{replica="1"}': 3.0}

    def test_histogram_buckets_are_cumulative_and_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        families = parse_prometheus(registry.render_prometheus())
        samples = families["lat_seconds"]
        buckets = {k: v for k, v in samples.items() if "_bucket" in k}
        values = [buckets[k] for k in sorted(buckets)]  # le="+Inf", 0.1, 1.0
        inf, b01, b10 = values
        assert b01 == 1.0  # <= 0.1
        assert b10 == 3.0  # <= 1.0 (cumulative)
        assert inf == 4.0  # +Inf == count
        (count,) = (v for k, v in samples.items() if k.startswith("lat_seconds_count"))
        assert count == 4.0
        (total,) = (v for k, v in samples.items() if k.startswith("lat_seconds_sum"))
        assert total == pytest.approx(6.05)

    def test_full_run_exposition_parses(self):
        from repro.obs.observer import RunObservability

        obs = RunObservability(trace=False)
        replica_obs = obs.replica_obs(0, "marlin")
        replica_obs.vote_sent("prepare")
        replica_obs.block_committed(b"\x01" * 32, 1, 64)
        obs.net.sent(0, 512)
        obs.net.received(1, 512)
        obs.net.dropped(2)
        for registry in (obs.registry, obs.registry.aggregate()):
            families = parse_prometheus(registry.render_prometheus())
            assert "replica_votes_sent_total" in families
            assert "net_bytes_sent_total" in families


class TestNetworkMetrics:
    def test_per_endpoint_counters(self):
        registry = MetricsRegistry()
        net = NetworkMetrics(registry)
        net.sent(0, 100)
        net.sent(0, 150)
        net.received(1, 250)
        net.dropped(1)
        snap = registry.snapshot()
        sent = {
            s["labels"]["endpoint"]: s["value"]
            for s in snap["counters"]["net_messages_sent_total"]
        }
        assert sent == {"0": 2}
        (sent_bytes,) = snap["counters"]["net_bytes_sent_total"]
        assert sent_bytes["value"] == 250
        (dropped,) = snap["counters"]["net_messages_dropped_total"]
        assert dropped["labels"]["endpoint"] == "1" and dropped["value"] == 1
