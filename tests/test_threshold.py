"""The (t, n) threshold signature scheme: tgen/tsign/tcombine/tverify."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import CryptoError, InvalidShare, NotEnoughShares
from repro.crypto.threshold import (
    PRIME,
    PartialSignature,
    combine_or_raise,
    threshold_keygen,
)


@pytest.fixture
def keys():
    return threshold_keygen(3, 4, seed=b"test")


class TestKeygen:
    def test_shapes(self, keys):
        pk, signers = keys
        assert pk.t == 3 and pk.n == 4
        assert len(signers) == 4
        assert len(pk.coefficients) == 3

    def test_deterministic(self):
        pk1, _ = threshold_keygen(3, 4, seed=b"s")
        pk2, _ = threshold_keygen(3, 4, seed=b"s")
        assert pk1 == pk2

    def test_seed_matters(self):
        pk1, _ = threshold_keygen(3, 4, seed=b"s1")
        pk2, _ = threshold_keygen(3, 4, seed=b"s2")
        assert pk1 != pk2

    def test_invalid_parameters(self):
        with pytest.raises(CryptoError):
            threshold_keygen(5, 4)
        with pytest.raises(CryptoError):
            threshold_keygen(0, 4)

    def test_shares_match_polynomial(self, keys):
        pk, signers = keys
        for signer in signers:
            assert signer.share == pk._share_of(signer.signer)


class TestSignCombineVerify:
    def test_combine_and_verify(self, keys):
        pk, signers = keys
        shares = [s.sign(b"msg") for s in signers[:3]]
        sig = pk.combine(b"msg", shares)
        pk.verify(b"msg", sig)
        assert pk.is_valid(b"msg", sig)

    def test_any_t_subset_combines_identically(self, keys):
        pk, signers = keys
        import itertools

        shares = [s.sign(b"msg") for s in signers]
        sigs = {
            pk.combine(b"msg", list(subset)).value
            for subset in itertools.combinations(shares, 3)
        }
        assert len(sigs) == 1

    def test_verify_rejects_other_message(self, keys):
        pk, signers = keys
        sig = pk.combine(b"msg", [s.sign(b"msg") for s in signers[:3]])
        assert not pk.is_valid(b"other", sig)

    def test_not_enough_shares(self, keys):
        pk, signers = keys
        with pytest.raises(NotEnoughShares):
            pk.combine(b"msg", [s.sign(b"msg") for s in signers[:2]])

    def test_duplicate_signer_rejected(self, keys):
        pk, signers = keys
        share = signers[0].sign(b"msg")
        with pytest.raises(CryptoError):
            pk.combine(b"msg", [share, share, signers[1].sign(b"msg")])

    def test_bad_share_detected(self, keys):
        pk, signers = keys
        bad = PartialSignature(signer=0, value=12345)
        with pytest.raises(InvalidShare):
            pk.verify_share(b"msg", bad)
        good = [s.sign(b"msg") for s in signers[1:3]]
        with pytest.raises(InvalidShare):
            pk.combine(b"msg", [bad] + good)

    def test_out_of_group_signer(self, keys):
        pk, _ = keys
        with pytest.raises(InvalidShare):
            pk.verify_share(b"m", PartialSignature(signer=10, value=1))

    def test_combine_or_raise_skips_bad_shares(self, keys):
        pk, signers = keys
        shares = [s.sign(b"msg") for s in signers]
        shares[0] = PartialSignature(signer=0, value=999)
        sig = combine_or_raise(pk, b"msg", shares)
        pk.verify(b"msg", sig)

    def test_combine_or_raise_fails_below_threshold(self, keys):
        pk, signers = keys
        shares = [PartialSignature(signer=i, value=i + 1) for i in range(2)]
        shares.append(signers[3].sign(b"msg"))
        with pytest.raises(NotEnoughShares):
            combine_or_raise(pk, b"msg", shares)


class TestValidation:
    def test_share_value_range(self):
        with pytest.raises(CryptoError):
            PartialSignature(signer=0, value=PRIME)
        with pytest.raises(CryptoError):
            PartialSignature(signer=-1, value=1)


@settings(max_examples=25, deadline=None)
@given(
    t=st.integers(min_value=1, max_value=5),
    extra=st.integers(min_value=0, max_value=4),
    message=st.binary(min_size=0, max_size=64),
)
def test_property_any_quorum_verifies(t, extra, message):
    """For any (t, n) and any message, t shares combine to a valid sig."""
    n = t + extra
    pk, signers = threshold_keygen(t, n, seed=b"prop")
    shares = [s.sign(message) for s in signers[:t]]
    sig = pk.combine(message, shares)
    pk.verify(message, sig)


@settings(max_examples=25, deadline=None)
@given(message=st.binary(max_size=32), tamper=st.integers(min_value=1, max_value=1000))
def test_property_tampered_share_always_detected(message, tamper):
    pk, signers = threshold_keygen(3, 4, seed=b"prop2")
    share = signers[1].sign(message)
    bad = PartialSignature(signer=1, value=(share.value + tamper) % PRIME)
    with pytest.raises(InvalidShare):
        pk.verify_share(message, bad)
