"""Vote/QC crypto services and the vote collector."""

from __future__ import annotations

import pytest

from repro.common.errors import CryptoError, InvalidVote
from repro.consensus.crypto_service import (
    MultisigCryptoService,
    NullCryptoService,
    ThresholdCryptoService,
)
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate, genesis_qc
from repro.consensus.block import genesis_block
from repro.consensus.votes import VoteCollector
from repro.crypto.hashing import digest_of
from repro.crypto.keys import KeyRegistry


def summary(view: int = 1, height: int = 1) -> BlockSummary:
    return BlockSummary(
        digest=digest_of(["blk", view, height]),
        view=view,
        height=height,
        parent_view=0,
    )


@pytest.fixture(params=["threshold", "multisig", "null"])
def crypto(request):
    if request.param == "threshold":
        return ThresholdCryptoService(KeyRegistry(4, 3, seed=b"cs"))
    if request.param == "multisig":
        return MultisigCryptoService(KeyRegistry(4, 3, seed=b"cs"))
    return NullCryptoService(4, 3)


class TestAllServices:
    def test_vote_roundtrip(self, crypto):
        block = summary()
        share = crypto.sign_vote(1, Phase.PREPARE, 1, block)
        crypto.verify_vote(1, Phase.PREPARE, 1, block, share)

    def test_vote_wrong_block_rejected(self, crypto):
        share = crypto.sign_vote(1, Phase.PREPARE, 1, summary(height=1))
        with pytest.raises(InvalidVote):
            crypto.verify_vote(1, Phase.PREPARE, 1, summary(height=2), share)

    def test_vote_wrong_phase_rejected(self, crypto):
        share = crypto.sign_vote(1, Phase.PREPARE, 1, summary())
        with pytest.raises(InvalidVote):
            crypto.verify_vote(1, Phase.COMMIT, 1, summary(), share)

    def test_quorum_forms_qc(self, crypto):
        block = summary()
        acc = crypto.accumulator(Phase.PREPARE, 1, block)
        for signer in range(3):
            share = crypto.sign_vote(signer, Phase.PREPARE, 1, block)
            done = acc.add(signer, share)
        assert done and acc.complete
        qc = crypto.make_qc(Phase.PREPARE, 1, block, acc)
        crypto.verify_qc(qc)

    def test_duplicate_votes_do_not_reach_quorum(self, crypto):
        block = summary()
        acc = crypto.accumulator(Phase.PREPARE, 1, block)
        share = crypto.sign_vote(0, Phase.PREPARE, 1, block)
        for _ in range(5):
            acc.add(0, share)
        assert acc.count == 1 and not acc.complete

    def test_qc_for_other_block_rejected(self, crypto):
        block = summary(height=1)
        acc = crypto.accumulator(Phase.PREPARE, 1, block)
        for signer in range(3):
            acc.add(signer, crypto.sign_vote(signer, Phase.PREPARE, 1, block))
        qc = crypto.make_qc(Phase.PREPARE, 1, block, acc)
        forged = QuorumCertificate(
            phase=qc.phase, view=qc.view, block=summary(height=2), signature=qc.signature
        )
        assert not crypto.qc_is_valid(forged)

    def test_genesis_qc_always_valid(self, crypto):
        crypto.verify_qc(genesis_qc(genesis_block()))


class TestThresholdSpecific:
    def test_verify_vote_checks_sender_binding(self):
        crypto = ThresholdCryptoService(KeyRegistry(4, 3, seed=b"cs"))
        share = crypto.sign_vote(1, Phase.PREPARE, 1, summary())
        with pytest.raises(InvalidVote):
            crypto.verify_vote(2, Phase.PREPARE, 1, summary(), share)

    def test_qc_signature_is_single_authenticator(self):
        crypto = ThresholdCryptoService(KeyRegistry(4, 3, seed=b"cs"))
        block = summary()
        acc = crypto.accumulator(Phase.PREPARE, 1, block)
        for signer in range(3):
            acc.add(signer, crypto.sign_vote(signer, Phase.PREPARE, 1, block))
        qc = crypto.make_qc(Phase.PREPARE, 1, block, acc)
        from repro.crypto.threshold import ThresholdSignature

        assert isinstance(qc.signature, ThresholdSignature)


class TestMultisigSpecific:
    def test_qc_carries_quorum_signatures(self):
        crypto = MultisigCryptoService(KeyRegistry(4, 3, seed=b"cs"))
        block = summary()
        acc = crypto.accumulator(Phase.PREPARE, 1, block)
        for signer in range(4):
            acc.add(signer, crypto.sign_vote(signer, Phase.PREPARE, 1, block))
        qc = crypto.make_qc(Phase.PREPARE, 1, block, acc)
        assert qc.signature.num_authenticators == 3

    def test_underfilled_bundle_rejected(self):
        crypto = MultisigCryptoService(KeyRegistry(4, 3, seed=b"cs"))
        block = summary()
        share = crypto.sign_vote(0, Phase.PREPARE, 1, block)
        from repro.crypto.multisig import MultiSignature

        thin = MultiSignature(signatures=((0, share),), group_size=4)
        forged = QuorumCertificate(phase=Phase.PREPARE, view=1, block=block, signature=thin)
        with pytest.raises(CryptoError):
            crypto.verify_qc(forged)


class TestVoteCollector:
    def test_qc_returned_exactly_once(self, crypto):
        collector = VoteCollector(crypto)
        block = summary()
        results = []
        for signer in range(4):
            share = crypto.sign_vote(signer, Phase.PREPARE, 1, block)
            results.append(collector.add_vote(Phase.PREPARE, 1, block, signer, share))
        qcs = [r for r in results if r is not None]
        assert len(qcs) == 1
        assert qcs[0].block == block

    def test_separate_targets_tracked_independently(self, crypto):
        collector = VoteCollector(crypto)
        b1, b2 = summary(height=1), summary(height=2)
        for signer in range(2):
            collector.add_vote(Phase.PREPARE, 1, b1, signer, crypto.sign_vote(signer, Phase.PREPARE, 1, b1))
            collector.add_vote(Phase.PREPARE, 1, b2, signer, crypto.sign_vote(signer, Phase.PREPARE, 1, b2))
        assert collector.votes_for(Phase.PREPARE, 1, b1.digest) == 2
        assert collector.votes_for(Phase.PREPARE, 1, b2.digest) == 2

    def test_discard_view_drops_stale(self, crypto):
        collector = VoteCollector(crypto)
        block = summary(view=1)
        collector.add_vote(Phase.PREPARE, 1, block, 0, crypto.sign_vote(0, Phase.PREPARE, 1, block))
        collector.discard_view(1)
        assert collector.votes_for(Phase.PREPARE, 1, block.digest) == 0
