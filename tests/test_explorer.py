"""Schedule exploration: safety across adversarial interleavings."""

from __future__ import annotations


from repro.consensus.chained import ChainedMarlinReplica
from repro.consensus.fasthotstuff import FastHotStuffReplica
from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.marlin.replica import MarlinReplica
from repro.harness.explorer import ScheduleExplorer, explore


class TestExplorerMechanics:
    def test_single_schedule_runs(self):
        result = ScheduleExplorer(MarlinReplica, seed=1).run()
        assert result.agreement
        assert result.steps > 0
        assert result.delivered > 0

    def test_schedules_differ_by_seed(self):
        a = ScheduleExplorer(MarlinReplica, seed=1).run()
        b = ScheduleExplorer(MarlinReplica, seed=2).run()
        assert (a.delivered, a.dropped, a.timeouts_fired) != (
            b.delivered,
            b.dropped,
            b.timeouts_fired,
        )

    def test_schedule_deterministic_per_seed(self):
        a = ScheduleExplorer(MarlinReplica, seed=7).run()
        b = ScheduleExplorer(MarlinReplica, seed=7).run()
        assert a == b

    def test_benign_schedule_commits(self):
        """With no drops and no spurious timeouts, everything commits."""
        explorer = ScheduleExplorer(
            MarlinReplica, seed=3, drop_probability=0.0,
            timeout_probability=0.0, crash_probability=0.0, max_steps=2000,
        )
        result = explorer.run()
        assert result.agreement
        assert max(result.committed_heights) >= 1


class TestSafetyHunts:
    def test_marlin_two_hundred_schedules(self):
        results = explore(MarlinReplica, schedules=200, base_seed=1000)
        assert all(r.agreement for r in results)
        # The hunt must actually exercise interesting behaviour:
        assert any(r.max_view >= 2 for r in results), "no view changes explored"
        assert any(max(r.committed_heights) > 0 for r in results), "nothing committed"
        assert any(r.dropped > 0 for r in results)

    def test_hotstuff_hundred_schedules(self):
        results = explore(HotStuffReplica, schedules=100, base_seed=2000)
        assert all(r.agreement for r in results)
        assert any(r.max_view >= 2 for r in results)

    def test_chained_marlin_hundred_schedules(self):
        results = explore(ChainedMarlinReplica, schedules=100, base_seed=3000)
        assert all(r.agreement for r in results)

    def test_fast_hotstuff_hundred_schedules(self):
        results = explore(FastHotStuffReplica, schedules=100, base_seed=4000)
        assert all(r.agreement for r in results)

    def test_larger_cluster_schedules(self):
        results = explore(MarlinReplica, schedules=30, base_seed=5000, n=7)
        assert all(r.agreement for r in results)
