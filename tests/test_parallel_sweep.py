"""The parallel experiment engine: process fan-out, caching, bisection.

The load points here are deliberately small (a few simulated seconds) —
the properties under test are about orchestration, not throughput:
serial/parallel/cached runs must be *identical*, byte for byte.
"""

from __future__ import annotations

import pytest

import repro.harness.parallel as parallel
from repro.api import Scenario, throughput_curve
from repro.common.errors import ConfigError
from repro.harness.parallel import ResultCache, SweepExecutor, bisect_peak, code_fingerprint
from repro.harness.scenarios import _peak_throughput, _throughput_latency_curve

POINT_KW = dict(
    sim_time=4.0,
    warmup=1.5,
    request_size=64,
    reply_size=64,
    seed=3,
    crypto="null",
    pipeline=None,
)
BASE_TASK = {"protocol": "marlin", "f": 1, **POINT_KW}
NO_CAP = 1e9  # latency cap no point reaches: the whole grid is evaluated


class TestExecutor:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ConfigError):
            SweepExecutor(jobs=0)

    def test_parallel_curve_identical_to_serial(self):
        counts = [64, 128, 256, 512]
        serial = _throughput_latency_curve("marlin", 1, counts, NO_CAP, **POINT_KW)
        assert len(serial) == len(counts)
        with SweepExecutor(jobs=4) as executor:
            fanned = executor.run_curve(BASE_TASK, counts, NO_CAP)
            # RunResult is a dataclass: == compares every field, floats
            # included, so this asserts bit-identical results.
            assert fanned == serial

            # Early stop: a cap below the first point's latency truncates
            # the wave exactly like the serial sweep does.
            capped = executor.run_curve(BASE_TASK, counts, 0.0)
            assert capped == serial[:1]

    def test_parallel_traces_identical_to_serial(self):
        tasks = [{**BASE_TASK, "clients": clients} for clients in (64, 256)]
        with SweepExecutor(jobs=1) as executor:
            inline = executor._run_raw(tasks)
        with SweepExecutor(jobs=2) as executor:
            fanned = executor._run_raw(tasks)
        # Full payload equality: RunResult fields and the SHA-256 of the
        # per-replica commit trace both survive the process boundary.
        assert fanned == inline
        assert all(v["trace_sha256"] for v in inline)


class TestResultCache:
    def test_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key_for({"clients": 64, "warmup": 1.5})
        assert cache.get(key) is None
        assert (cache.hits, cache.misses) == (0, 1)
        cache.put(key, {"result": {"clients": 64}, "trace_sha256": "ab"})
        assert cache.get(key) == {"result": {"clients": 64}, "trace_sha256": "ab"}
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.clear() == 1

    def test_key_covers_scenario_and_code(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        base = cache.key_for({"clients": 64})
        assert cache.key_for({"clients": 128}) != base
        # Same scenario, different code: simulate an edited source tree.
        monkeypatch.setattr(parallel, "_FINGERPRINT", "0" * 64)
        assert cache.key_for({"clients": 64}) != base

    def test_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64

    def test_second_sweep_served_from_cache(self, tmp_path):
        counts = [64, 128]
        cache = ResultCache(tmp_path)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            first = executor.run_curve(BASE_TASK, counts, NO_CAP)
        assert (cache.hits, cache.misses) == (0, len(counts))

        warm = ResultCache(tmp_path)
        with SweepExecutor(jobs=1, cache=warm) as executor:
            second = executor.run_curve(BASE_TASK, counts, NO_CAP)
        assert (warm.hits, warm.misses) == (len(counts), 0)
        assert second == first

    def test_scenario_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            executor.run_curve(BASE_TASK, [64], NO_CAP)
            executor.run_curve({**BASE_TASK, "seed": 4}, [64], NO_CAP)
        assert (cache.hits, cache.misses) == (0, 2)

    def test_code_change_invalidates(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        with SweepExecutor(jobs=1, cache=cache) as executor:
            executor.run_curve(BASE_TASK, [64], NO_CAP)
            monkeypatch.setattr(parallel, "_FINGERPRINT", "f" * 64)
            executor.run_curve(BASE_TASK, [64], NO_CAP)
        # The second run could not reuse the first run's entry.
        assert (cache.hits, cache.misses) == (0, 2)

    def test_facade_curve_with_cache(self, tmp_path):
        scenario = Scenario(
            protocol="marlin", f=1, seed=3, sim_time=4.0, warmup=1.5,
            request_size=64, reply_size=64,
        )
        cold = throughput_curve(
            scenario, [64, 128], latency_cap=NO_CAP,
            use_cache=True, cache_dir=tmp_path,
        )
        warm = throughput_curve(
            scenario, [64, 128], latency_cap=NO_CAP,
            use_cache=True, cache_dir=tmp_path,
        )
        plain = throughput_curve(scenario, [64, 128], latency_cap=NO_CAP)
        assert cold == warm == plain


class TestBisect:
    def test_bisect_peak_matches_linear_sweep(self):
        counts = [32, 128, 512, 2048, 8192]
        # Establish latencies, then set the cap so the crossing happens
        # mid-grid — the interesting case for the bisection.
        full = _throughput_latency_curve("marlin", 1, counts, NO_CAP, **POINT_KW)
        latencies = [p.mean_latency for p in full]
        assert latencies == sorted(latencies), "closed-loop latency must be monotone"
        cap = (latencies[2] + latencies[3]) / 2

        peak_sweep, curve_sweep = _peak_throughput(
            "marlin", 1, counts, cap, strategy="sweep", **POINT_KW
        )
        peak_bisect, curve_bisect = _peak_throughput(
            "marlin", 1, counts, cap, strategy="bisect", **POINT_KW
        )
        assert peak_bisect == peak_sweep
        # Both curves end at the same first-over-cap point, and every
        # point the bisection did evaluate matches the sweep's value.
        assert curve_bisect[-1] == curve_sweep[-1]
        sweep_by_clients = {p.clients: p for p in curve_sweep}
        for point in curve_bisect:
            assert point == sweep_by_clients[point.clients]

    def test_bisect_all_points_under_cap(self):
        counts = [32, 64]
        with SweepExecutor(jobs=1) as executor:
            curve = bisect_peak(executor, BASE_TASK, counts, NO_CAP)
        serial = _throughput_latency_curve("marlin", 1, counts, NO_CAP, **POINT_KW)
        assert curve == serial

    def test_bisect_first_point_over_cap(self):
        with SweepExecutor(jobs=1) as executor:
            curve = bisect_peak(executor, BASE_TASK, [64, 128, 256], 0.0)
        assert len(curve) == 1
        assert curve[0].clients == 64

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ConfigError):
            _peak_throughput("marlin", 1, [32], 1.0, strategy="golden", **POINT_KW)
