"""The log-structured KV store: reads, writes, freezes, compaction,
crash recovery, and a hypothesis model check against a plain dict."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import StorageError, StoreClosed
from repro.storage.kvstore import KVStore


class TestBasicOps:
    def test_put_get(self):
        store = KVStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_missing_key(self):
        assert KVStore().get(b"nope") is None

    def test_overwrite(self):
        store = KVStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self):
        store = KVStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None
        assert b"k" not in store

    def test_delete_missing_is_noop(self):
        store = KVStore()
        store.delete(b"ghost")
        assert store.get(b"ghost") is None

    def test_contains(self):
        store = KVStore()
        store.put(b"k", b"v")
        assert b"k" in store

    def test_empty_key_rejected(self):
        with pytest.raises(StorageError):
            KVStore().put(b"", b"v")

    def test_scan_prefix(self):
        store = KVStore()
        store.put(b"a:1", b"1")
        store.put(b"a:2", b"2")
        store.put(b"b:1", b"3")
        assert [k for k, _ in store.scan(b"a:")] == [b"a:1", b"a:2"]

    def test_scan_sorted_and_excludes_deleted(self):
        store = KVStore()
        store.put(b"z", b"1")
        store.put(b"a", b"2")
        store.put(b"m", b"3")
        store.delete(b"m")
        assert [k for k, _ in store.scan()] == [b"a", b"z"]

    def test_closed_store_rejects(self):
        store = KVStore()
        store.close()
        with pytest.raises(StoreClosed):
            store.put(b"k", b"v")


class TestFreezeCompact:
    def test_freeze_preserves_reads(self):
        store = KVStore(memtable_limit=64)
        for i in range(20):
            store.put(f"key-{i}".encode(), f"val-{i}".encode())
        assert store.num_runs > 0
        for i in range(20):
            assert store.get(f"key-{i}".encode()) == f"val-{i}".encode()

    def test_newest_run_wins(self):
        store = KVStore(memtable_limit=32)
        store.put(b"k", b"old")
        store.flush()
        store.put(b"k", b"new")
        store.flush()
        assert store.get(b"k") == b"new"

    def test_delete_shadows_frozen_value(self):
        store = KVStore()
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.flush()
        assert store.get(b"k") is None

    def test_compaction_merges_runs(self):
        store = KVStore()
        for round_ in range(5):
            store.put(b"k", f"v{round_}".encode())
            store.flush()
        assert store.num_runs == 5
        store.compact()
        assert store.num_runs == 1
        assert store.get(b"k") == b"v4"

    def test_compaction_drops_tombstones(self):
        store = KVStore()
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.flush()
        store.compact()
        assert store.get(b"k") is None
        assert store.num_runs <= 1

    def test_auto_compaction_trigger(self):
        store = KVStore(compaction_trigger=3)
        for i in range(4):
            store.put(f"k{i}".encode(), b"v")
            store.flush()
        assert store.num_runs < 4
        assert store.stats["compactions"] >= 1

    def test_stats(self):
        store = KVStore()
        store.put(b"a", b"1")
        store.get(b"a")
        store.delete(b"a")
        stats = store.stats
        assert stats["puts"] == 1 and stats["gets"] == 1 and stats["deletes"] == 1


class TestPersistence:
    def test_reopen_recovers_memtable_from_wal(self, tmp_path):
        directory = str(tmp_path / "db")
        store = KVStore(directory=directory)
        store.put(b"k1", b"v1")
        store.put(b"k2", b"v2")
        store.close()
        reopened = KVStore(directory=directory)
        assert reopened.get(b"k1") == b"v1"
        assert reopened.get(b"k2") == b"v2"

    def test_reopen_recovers_runs(self, tmp_path):
        directory = str(tmp_path / "db")
        store = KVStore(directory=directory, memtable_limit=32)
        for i in range(30):
            store.put(f"key-{i:03d}".encode(), f"v{i}".encode())
        store.close()
        reopened = KVStore(directory=directory)
        for i in range(30):
            assert reopened.get(f"key-{i:03d}".encode()) == f"v{i}".encode()

    def test_delete_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "db")
        store = KVStore(directory=directory)
        store.put(b"k", b"v")
        store.flush()
        store.delete(b"k")
        store.close()
        reopened = KVStore(directory=directory)
        assert reopened.get(b"k") is None

    def test_compaction_removes_run_files(self, tmp_path):
        directory = str(tmp_path / "db")
        store = KVStore(directory=directory)
        for i in range(4):
            store.put(f"k{i}".encode(), b"v")
            store.flush()
        store.compact()
        import os

        run_files = [f for f in os.listdir(directory) if f.endswith(".sst")]
        assert len(run_files) == 1


_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "delete", "flush", "compact"]),
        st.binary(min_size=1, max_size=4),
        st.binary(max_size=6),
    ),
    max_size=60,
)


@settings(max_examples=50, deadline=None)
@given(_ops)
def test_property_matches_dict_model(ops):
    """The store must behave exactly like a dict, whatever the op mix."""
    store = KVStore(memtable_limit=48, compaction_trigger=3)
    model: dict[bytes, bytes] = {}
    for verb, key, value in ops:
        if verb == "put":
            store.put(key, value)
            model[key] = value
        elif verb == "delete":
            store.delete(key)
            model.pop(key, None)
        elif verb == "flush":
            store.flush()
        else:
            store.compact()
        assert store.get(key) == model.get(key)
    assert dict(store.scan()) == model
