"""The hot-path pipelining machinery: gate, staging, adaptive control.

Unit-level coverage of :mod:`repro.consensus.pipeline` and the
:class:`~repro.consensus.block.BatchPool` staging extensions, plus one
end-to-end DES run with pipelining enabled.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.consensus.block import BatchPool, Operation
from repro.consensus.crypto_service import NullCryptoService, ThresholdCryptoService
from repro.consensus.pipeline import (
    AdaptiveBatchController,
    PipelineConfig,
    VoteBatchGate,
)
from repro.consensus.qc import BlockSummary, Phase
from repro.crypto.hashing import digest_of
from repro.crypto.keys import KeyRegistry
from repro.crypto.verifier_pool import (
    InlineVerifierPool,
    ThreadVerifierPool,
    make_verifier_pool,
)
from repro.harness.des_runtime import DESCluster
from repro.harness.workload import ClosedLoopClients

N, QUORUM = 4, 3


def summary(tag: str = "block", view: int = 1) -> BlockSummary:
    return BlockSummary(digest=digest_of([tag, view]), view=view, height=view, parent_view=0)


def make_gate(pool=None):
    service = NullCryptoService(N, QUORUM)
    return service, VoteBatchGate(service, QUORUM, pool=pool)


def share_for(service, signer: int, block: BlockSummary, phase=Phase.PREPARE):
    return service.sign_vote(signer, phase, block.view, block)


class TestVoteBatchGate:
    def test_holds_until_quorum_then_releases_in_src_order(self):
        service, gate = make_gate()
        block = summary()
        for src in (2, 0):
            result = gate.admit(
                src, Phase.PREPARE, 1, block, share_for(service, src, block), carry=f"v{src}"
            )
            assert result.released == () and result.batch_verified == 0
        result = gate.admit(
            1, Phase.PREPARE, 1, block, share_for(service, 1, block), carry="v1"
        )
        assert result.batch_verified == QUORUM
        assert result.released == ((0, "v0"), (1, "v1"), (2, "v2"))

    def test_duplicate_src_ignored(self):
        service, gate = make_gate()
        block = summary()
        share = share_for(service, 0, block)
        gate.admit(0, Phase.PREPARE, 1, block, share)
        assert gate.admit(0, Phase.PREPARE, 1, block, share).released == ()
        # Still needs two more distinct signers.
        gate.admit(1, Phase.PREPARE, 1, block, share_for(service, 1, block))
        result = gate.admit(2, Phase.PREPARE, 1, block, share_for(service, 2, block))
        assert len(result.released) == QUORUM

    def test_post_quorum_votes_dropped_unverified(self):
        service, gate = make_gate()
        block = summary()
        for src in range(QUORUM):
            gate.admit(src, Phase.PREPARE, 1, block, share_for(service, src, block))
        late = gate.admit(3, Phase.PREPARE, 1, block, share_for(service, 3, block))
        assert late.released == () and late.batch_verified == 0
        assert gate.dropped_late == 1

    def test_bad_share_excluded_and_quorum_waits(self):
        service, gate = make_gate()
        block = summary()
        forged = dataclasses.replace(share_for(service, 0, block), tag=b"\x00" * 32)
        gate.admit(0, Phase.PREPARE, 1, block, forged, carry="bad")
        gate.admit(1, Phase.PREPARE, 1, block, share_for(service, 1, block), carry="v1")
        # Third arrival triggers verification; the forged share is caught,
        # leaving only 2 valid — below quorum, nothing released.
        result = gate.admit(
            2, Phase.PREPARE, 1, block, share_for(service, 2, block), carry="v2"
        )
        assert result.released == () and result.batch_verified == QUORUM
        assert gate.rejected == 1
        # A replacement valid share completes the quorum without signer 0.
        result = gate.admit(
            3, Phase.PREPARE, 1, block, share_for(service, 3, block), carry="v3"
        )
        assert [src for src, _ in result.released] == [1, 2, 3]

    def test_targets_keyed_by_phase_view_block(self):
        service, gate = make_gate()
        prepare, commit = summary("a"), summary("a")
        for src in range(QUORUM - 1):
            gate.admit(src, Phase.PREPARE, 1, prepare, share_for(service, src, prepare))
            gate.admit(
                src, Phase.COMMIT, 1, commit,
                share_for(service, src, commit, Phase.COMMIT),
            )
        result = gate.admit(
            2, Phase.PREPARE, 1, prepare, share_for(service, 2, prepare)
        )
        assert len(result.released) == QUORUM  # commit target untouched

    def test_discard_view_drops_stale_targets(self):
        service, gate = make_gate()
        old, new = summary("old", view=1), summary("new", view=5)
        gate.admit(0, Phase.PREPARE, 1, old, share_for(service, 0, old))
        gate.admit(0, Phase.PREPARE, 5, new, share_for(service, 0, new))
        gate.discard_view(4)
        assert list(gate._targets) == [(Phase.PREPARE, 5, new.digest)]

    def test_thread_pool_chunking_matches_inline(self):
        registry = KeyRegistry(12, 9, seed=b"gate-pool")
        service = ThresholdCryptoService(registry)
        block = summary()
        votes = [
            (s, Phase.PREPARE, 1, block, registry.partial_sign(s, b"x"))  # wrong payload
            if s == 3
            else (
                s, Phase.PREPARE, 1, block,
                service.sign_vote(s, Phase.PREPARE, 1, block),
            )
            for s in range(12)
        ]
        assert len(votes) >= 2 * VoteBatchGate.MIN_CHUNK  # chunked path engages
        inline_gate = VoteBatchGate(service, 9, pool=InlineVerifierPool())
        pool = ThreadVerifierPool(workers=3)
        try:
            threaded_gate = VoteBatchGate(service, 9, pool=pool)
            assert inline_gate._verify(votes) == threaded_gate._verify(votes) == [3]
        finally:
            pool.close()

    def test_quorum_sized_batches_stay_on_the_calling_thread(self):
        class ExplodingPool(InlineVerifierPool):
            workers = 4

            def map(self, fn, chunks):
                raise AssertionError("small batch must not reach the pool")

        service = NullCryptoService(N, QUORUM)
        gate = VoteBatchGate(service, QUORUM, pool=ExplodingPool())
        block = summary()
        votes = [
            (s, Phase.PREPARE, 1, block, share_for(service, s, block)) for s in range(N)
        ]
        assert gate._verify(votes) == []


class TestVerifierPool:
    def test_factory(self):
        assert make_verifier_pool("inline").kind == "inline"
        pool = make_verifier_pool("threads", workers=2)
        try:
            assert pool.kind == "threads" and pool.workers == 2
        finally:
            pool.close()
        with pytest.raises(ValueError):
            make_verifier_pool("gpu")

    def test_thread_pool_maps_in_order(self):
        pool = ThreadVerifierPool(workers=2)
        try:
            assert pool.map(lambda chunk: sum(chunk), [[1, 2], [3], [4, 5]]) == [3, 3, 9]
        finally:
            pool.close()


def op(sequence: int, weight: int = 1) -> Operation:
    return Operation(client_id=1, sequence=sequence, payload=b"x" * weight)


class TestBatchPoolStaging:
    def test_stage_take_roundtrip(self):
        pool = BatchPool(max_batch=2)
        for sequence in range(4):
            pool.add(op(sequence))
        staged = pool.stage()
        assert [o.sequence for o in staged] == [0, 1]
        assert pool.stage() is staged  # memoized
        assert pool.take_staged() == staged
        assert pool.take_staged() == ()

    def test_unstage_requeues_at_front(self):
        pool = BatchPool(max_batch=2)
        for sequence in range(4):
            pool.add(op(sequence))
        pool.stage()
        pool.unstage()
        assert [o.sequence for o in pool.next_batch()] == [0, 1]

    def test_empty_pool_stages_nothing_and_does_not_block_restaging(self):
        pool = BatchPool(max_batch=2)
        assert pool.stage() == ()
        pool.add(op(0))
        assert [o.sequence for o in pool.stage()] == [0]

    def test_forget_committed_ops_bumps_epoch(self):
        pool = BatchPool(max_batch=3)
        for sequence in range(3):
            pool.add(op(sequence))
        staged = pool.stage()
        epoch = pool.staged_epoch
        pool.forget((staged[1],))
        assert pool.staged_epoch == epoch + 1
        assert [o.sequence for o in pool.stage()] == [0, 2]

    def test_forget_unrelated_ops_keeps_epoch(self):
        pool = BatchPool(max_batch=1)
        pool.add(op(0))
        pool.add(op(1))
        pool.stage()
        epoch = pool.staged_epoch
        pool.forget((op(1),))
        assert pool.staged_epoch == epoch


class TestAdaptiveBatchController:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveBatchController(band=(0.5, 0.2), min_batch=1, cap=10)
        with pytest.raises(ValueError):
            AdaptiveBatchController(band=(0.1, 0.5), min_batch=20, cap=10)

    def test_shrinks_above_band_grows_below(self):
        controller = AdaptiveBatchController(band=(0.2, 0.8), min_batch=10, cap=1000)
        assert controller.observe(2.0, 100) == 80
        controller = AdaptiveBatchController(band=(0.2, 0.8), min_batch=10, cap=1000)
        assert controller.observe(0.05, 100) == 125

    def test_clamped_to_bounds(self):
        controller = AdaptiveBatchController(band=(0.2, 0.8), min_batch=90, cap=110)
        for _ in range(10):
            current = controller.observe(5.0, 100)
        assert current == 90
        controller = AdaptiveBatchController(band=(0.2, 0.8), min_batch=90, cap=110)
        for _ in range(10):
            current = controller.observe(0.01, 100)
        assert current == 110

    def test_in_band_is_stable(self):
        controller = AdaptiveBatchController(band=(0.2, 0.8), min_batch=10, cap=1000)
        assert controller.observe(0.5, 100) == 100


class TestPipelineConfig:
    def test_for_des_forces_inline(self):
        config = PipelineConfig(verifier="threads", verifier_workers=8)
        des = config.for_des()
        assert des.verifier == "inline"
        assert des.verifier_workers == 8  # everything else untouched
        inline = PipelineConfig()
        assert inline.for_des() is inline


@pytest.mark.parametrize("crypto_mode", ["null", "threshold"])
def test_pipelined_des_run_commits_safely(crypto_mode):
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=200, base_timeout=0.8), seed=4
    )
    cluster = DESCluster(
        experiment,
        protocol="marlin",
        crypto_mode=crypto_mode,
        pipeline=PipelineConfig(adaptive_batch=True),
    )
    pool = ClosedLoopClients(cluster, num_clients=32, token_weight=1, target="all")
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.run(until=6.0)
    cluster.assert_safety()
    assert min(cluster.committed_heights()) > 0
    assert pool.completed_ops > 0
