"""The rank rules of Fig. 4 (QCs) and Section V-A (blocks).

Includes the paper's own worked example (Fig. 5) verbatim, plus
hypothesis checks that rank is a strict partial order.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.consensus.rank import (
    Rank,
    block_rank_higher,
    compare_block_rank,
    compare_qc_rank,
    highest_block,
    highest_qcs,
    qc_rank_higher,
)
from repro.crypto.hashing import digest_of


def summary(view: int, height: int, pview: int = 0, virtual: bool = False, jiv: bool = True) -> BlockSummary:
    return BlockSummary(
        digest=digest_of(["b", view, height, pview, virtual, jiv]),
        view=view,
        height=height,
        parent_view=pview,
        is_virtual=virtual,
        justify_in_view=jiv,
    )


def qc(phase: Phase, view: int, height: int, **kwargs) -> QuorumCertificate:
    return QuorumCertificate(
        phase=phase, view=view, block=summary(view=view, height=height, **kwargs), signature=None
    )


class TestRuleA:
    def test_higher_view_wins(self):
        assert qc_rank_higher(qc(Phase.PRE_PREPARE, 3, 1), qc(Phase.COMMIT, 2, 99))

    def test_lower_view_loses(self):
        assert not qc_rank_higher(qc(Phase.COMMIT, 2, 99), qc(Phase.PRE_PREPARE, 3, 1))


class TestRuleB:
    def test_prepare_beats_pre_prepare_same_view(self):
        assert qc_rank_higher(qc(Phase.PREPARE, 2, 1), qc(Phase.PRE_PREPARE, 2, 5))

    def test_commit_beats_pre_prepare_same_view(self):
        assert qc_rank_higher(qc(Phase.COMMIT, 2, 1), qc(Phase.PRE_PREPARE, 2, 5))

    def test_two_pre_prepares_tie(self):
        a, b = qc(Phase.PRE_PREPARE, 2, 3), qc(Phase.PRE_PREPARE, 2, 4)
        assert compare_qc_rank(a, b) is Rank.EQUAL


class TestRuleC:
    def test_taller_prepare_wins_same_view(self):
        assert qc_rank_higher(qc(Phase.PREPARE, 2, 5), qc(Phase.PREPARE, 2, 4))

    def test_prepare_commit_same_height_tie(self):
        a, b = qc(Phase.PREPARE, 2, 4), qc(Phase.COMMIT, 2, 4)
        assert compare_qc_rank(a, b) is Rank.EQUAL


class TestFig5Example:
    """The paper's Fig. 5: qc1..qc4 with the stated order."""

    def setup_method(self):
        self.qc1 = qc(Phase.PREPARE, 1, 1)
        self.qc2 = qc(Phase.PREPARE, 1, 2)
        self.qc3 = qc(Phase.PRE_PREPARE, 2, 3)
        self.qc3p = qc(Phase.PRE_PREPARE, 2, 4)
        self.qc4 = qc(Phase.PREPARE, 2, 3)

    def test_rule_a_qc3p_above_qc2(self):
        assert qc_rank_higher(self.qc3p, self.qc2)

    def test_rule_b_qc4_above_both_pre_prepares(self):
        assert qc_rank_higher(self.qc4, self.qc3)
        assert qc_rank_higher(self.qc4, self.qc3p)

    def test_rule_c_qc2_above_qc1(self):
        assert qc_rank_higher(self.qc2, self.qc1)

    def test_qc3_and_qc3p_same_rank_despite_heights(self):
        assert compare_qc_rank(self.qc3, self.qc3p) is Rank.EQUAL


class TestNoneHandling:
    def test_none_ranks_lowest(self):
        assert compare_qc_rank(None, qc(Phase.PREPARE, 1, 1)) is Rank.LOWER
        assert compare_qc_rank(qc(Phase.PREPARE, 1, 1), None) is Rank.HIGHER
        assert compare_qc_rank(None, None) is Rank.EQUAL

    def test_at_least(self):
        assert Rank.HIGHER.at_least and Rank.EQUAL.at_least and not Rank.LOWER.at_least


class TestBlockRank:
    def test_higher_view_wins(self):
        assert block_rank_higher(summary(3, 1), summary(2, 9))

    def test_same_view_taller_with_in_view_justify(self):
        assert block_rank_higher(summary(2, 5, jiv=True), summary(2, 4))

    def test_same_view_taller_without_in_view_justify_ties(self):
        # The shadow-block forking fix: view-change proposals (justify from
        # an older view) never outrank each other by height.
        a = summary(2, 5, jiv=False)
        b = summary(2, 4, jiv=False)
        assert compare_block_rank(a, b) is Rank.EQUAL

    def test_none_block_lowest(self):
        assert compare_block_rank(None, summary(1, 1)) is Rank.LOWER

    def test_highest_block(self):
        blocks = [summary(1, 5), summary(2, 1), summary(2, 3)]
        assert highest_block(blocks) == summary(2, 3)

    def test_highest_block_empty(self):
        assert highest_block([]) is None


class TestHighestQCs:
    def test_single_maximum(self):
        qcs = [qc(Phase.PREPARE, 1, 1), qc(Phase.PREPARE, 2, 1)]
        assert highest_qcs(qcs) == [qc(Phase.PREPARE, 2, 1)]

    def test_two_pre_prepare_maxima(self):
        a = qc(Phase.PRE_PREPARE, 3, 4)
        b = qc(Phase.PRE_PREPARE, 3, 5)
        low = qc(Phase.PREPARE, 2, 9)
        maxima = highest_qcs([a, low, b])
        assert len(maxima) == 2 and a in maxima and b in maxima

    def test_duplicates_collapse(self):
        a = qc(Phase.PREPARE, 2, 3)
        assert len(highest_qcs([a, a, a])) == 1

    def test_empty(self):
        assert highest_qcs([]) == []


_phases = st.sampled_from([Phase.PRE_PREPARE, Phase.PREPARE, Phase.COMMIT])
_qcs = st.builds(
    lambda p, v, h: qc(p, v, h),
    _phases,
    st.integers(min_value=0, max_value=5),
    st.integers(min_value=0, max_value=5),
)


@given(_qcs, _qcs)
def test_property_antisymmetry(a, b):
    assert not (qc_rank_higher(a, b) and qc_rank_higher(b, a))


@given(_qcs)
def test_property_irreflexive(a):
    assert not qc_rank_higher(a, a)


@given(_qcs, _qcs, _qcs)
def test_property_transitivity(a, b, c):
    if qc_rank_higher(a, b) and qc_rank_higher(b, c):
        assert qc_rank_higher(a, c)


@given(st.lists(_qcs, min_size=1, max_size=8))
def test_property_maxima_are_undominated(qcs):
    for maximum in highest_qcs(qcs):
        assert not any(qc_rank_higher(other, maximum) for other in qcs)
