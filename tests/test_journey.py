"""Request journeys: sampling, critical-path decomposition, waterfalls.

Covers the journey layer end to end: the deterministic seed-derived
sampler, the per-journey stage decomposition (telescoping invariant,
duplicate/truncation handling), the aggregate waterfall and its
stage-sum-reconciles-with-end-to-end invariant on a real DES run (hub,
real-client, and sharded modes), byte-identical determinism of the
journey blob and waterfall JSON, the ~zero-cost disabled mode, the
event-count invariance that proves tracing never steers the schedule,
and the ``repro latency`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.client.config import ClientConfig
from repro.harness.metrics import LatencyRecorder
from repro.harness.scenarios import _latency_breakdown, _load_point_ex
from repro.obs.journey import (
    CK_CERTIFIED,
    CK_COMMITTED,
    CK_EXECUTED,
    CK_PROPOSED,
    CK_RETRANSMIT,
    CK_SUBMIT,
    JourneyRecorder,
    build_waterfall,
    chrome_trace,
    decompose,
    journeys_blob,
    sample_bit,
    slowest_journeys,
    stage_of,
    waterfall_json,
)
from repro.shard import ShardConfig

# ---------------------------------------------------------------------------
# Sampling


class TestSampling:
    def test_deterministic_across_instances(self):
        a = JourneyRecorder(7, rate=0.25)
        b = JourneyRecorder(7, rate=0.25)
        assert [a.sampled(c) for c in range(500)] == [b.sampled(c) for c in range(500)]

    def test_matches_free_function(self):
        recorder = JourneyRecorder(3, rate=0.5)
        for client in range(200):
            assert recorder.sampled(client) == sample_bit(3, client, 5000)

    def test_seed_changes_the_set(self):
        first = {c for c in range(400) if sample_bit(1, c, 2500)}
        second = {c for c in range(400) if sample_bit(2, c, 2500)}
        assert first != second

    def test_rate_extremes(self):
        assert all(JourneyRecorder(1, rate=1.0).sampled(c) for c in range(100))
        zero = JourneyRecorder(1, rate=0.0)
        assert not zero.enabled
        assert not any(zero.sampled(c) for c in range(100))

    def test_rate_roughly_proportional(self):
        hits = sum(1 for c in range(4000) if sample_bit(9, c, 2500))
        assert 0.20 < hits / 4000 < 0.30

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            JourneyRecorder(1, rate=1.5)

    def test_sampled_keys_filters_like_sampled(self):
        class Op:
            def __init__(self, client_id, sequence):
                self.client_id = client_id
                self._key = (client_id, sequence)

        recorder = JourneyRecorder(5, rate=0.5)
        ops = [Op(c, 0) for c in range(100)]
        keys = recorder.sampled_keys(ops)
        assert keys == [(c, 0) for c in range(100) if recorder.sampled(c)]


# ---------------------------------------------------------------------------
# Critical-path decomposition


def _journey(*events):
    return [(label, float(t)) for label, t in events]


class TestDecompose:
    def test_stages_telescope_to_end_to_end(self):
        events = _journey(
            (CK_SUBMIT, 1.0),
            (CK_PROPOSED, 1.2),
            ("qc:prepare", 1.5),
            ("qc:commit", 1.9),
            (CK_COMMITTED, 1.9),
            (CK_EXECUTED, 2.0),
            (CK_CERTIFIED, 2.4),
        )
        breakdown = decompose(events)
        assert breakdown is not None
        stages, e2e = breakdown
        assert e2e == pytest.approx(1.4)
        assert sum(d for _, d in stages) == pytest.approx(e2e)
        assert [s for s, _ in stages] == [
            "leader_staging",
            "consensus_prepare",
            "consensus_commit",
            "commit_apply",
            "execution",
            "reply_fanin",
        ]

    def test_duplicates_take_earliest(self):
        # A re-proposal after a failed view leaves a second, later
        # "proposed"; the critical path starts at the first one.
        events = _journey(
            (CK_SUBMIT, 0.0),
            (CK_PROPOSED, 0.5),
            (CK_PROPOSED, 2.0),
            (CK_CERTIFIED, 3.0),
        )
        stages, e2e = decompose(events)
        assert dict(stages)["leader_staging"] == pytest.approx(0.5)
        assert e2e == pytest.approx(3.0)

    def test_chain_truncated_at_certified(self):
        # A straggling proposer executing after the client already holds
        # its certificate is off the critical path.
        events = _journey(
            (CK_SUBMIT, 0.0),
            (CK_CERTIFIED, 1.0),
            (CK_EXECUTED, 5.0),
        )
        stages, e2e = decompose(events)
        assert e2e == pytest.approx(1.0)
        assert all(stage != "execution" for stage, _ in stages)

    def test_retransmit_is_annotation_not_stage(self):
        events = _journey(
            (CK_SUBMIT, 0.0),
            (CK_RETRANSMIT, 0.5),
            (CK_CERTIFIED, 1.0),
        )
        stages, _e2e = decompose(events)
        assert all(stage != CK_RETRANSMIT for stage, _ in stages)

    def test_incomplete_returns_none(self):
        assert decompose(_journey((CK_SUBMIT, 0.0), (CK_PROPOSED, 0.1))) is None
        assert decompose(_journey((CK_CERTIFIED, 1.0))) is None

    def test_stage_of_qc(self):
        assert stage_of("qc:prepare") == "consensus_prepare"
        assert stage_of("qc:pre-commit") == "consensus_pre-commit"


class TestWaterfall:
    def _recorder(self):
        recorder = JourneyRecorder(1, rate=1.0)
        for client in range(10):
            base = float(client)
            recorder.record(client, 0, CK_SUBMIT, base)
            recorder.record(client, 0, CK_PROPOSED, base + 0.1)
            recorder.record(client, 0, CK_CERTIFIED, base + 0.3)
        return recorder

    def test_counts_and_reconciliation(self):
        recorder = self._recorder()
        recorder.record(99, 0, CK_SUBMIT, 5.0)  # never certified
        waterfall = build_waterfall(recorder, end_to_end=0.3)
        assert waterfall["journeys"]["complete"] == 10
        assert waterfall["journeys"]["incomplete"] == 1
        assert waterfall["stages"]["leader_staging"]["p50"] == pytest.approx(0.1)
        assert waterfall["end_to_end"]["stage_sum_p50"] == pytest.approx(0.3)
        assert waterfall["end_to_end"]["error"] == pytest.approx(0.0, abs=1e-9)

    def test_window_excludes_warmup(self):
        waterfall = build_waterfall(self._recorder(), window_start=5.0)
        assert waterfall["journeys"]["windowed_out"] == 5
        assert waterfall["journeys"]["complete"] == 5

    def test_anchors_against_latency_recorder(self):
        latency = LatencyRecorder()
        latency.record(1.0, 0.3)
        waterfall = build_waterfall(self._recorder(), end_to_end=latency)
        assert waterfall["end_to_end"]["recorder_p50"] == pytest.approx(0.3)

    def test_slowest_and_chrome_trace(self):
        recorder = self._recorder()
        recorder.record(50, 0, CK_SUBMIT, 0.0)
        recorder.record(50, 0, CK_CERTIFIED, 9.0)
        worst = slowest_journeys(recorder, 3)
        assert worst[0][0] == (50, 0)
        assert worst[0][1] == pytest.approx(9.0)
        trace = chrome_trace(recorder, k=3)
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} == {"X"}
        spans_50 = [e for e in trace["traceEvents"] if e["pid"] == 50]
        assert sum(e["dur"] for e in spans_50) == 9_000_000


# ---------------------------------------------------------------------------
# DES integration: the reconciliation invariant on real runs

_RUN = dict(clients=256, sim_time=14.0, warmup=5.0, seed=3)


class TestJourneyRuns:
    def test_hub_run_reconciles(self):
        result, _recorder, _ = _latency_breakdown(**_RUN)
        waterfall = result.waterfall
        assert waterfall is not None
        assert waterfall["journeys"]["complete"] > 0
        assert waterfall["end_to_end"]["error"] < 0.05
        stages = set(waterfall["stages"])
        assert {"leader_staging", "commit_apply", "execution", "reply_fanin"} <= stages
        assert any(s.startswith("consensus_") for s in stages)
        # Marlin commits in two phases: prepare and commit QCs only.
        assert "consensus_prepare" in stages and "consensus_commit" in stages

    def test_runs_are_byte_identical(self):
        _, first, _ = _latency_breakdown(sample_rate=0.5, **_RUN)
        result, second, _ = _latency_breakdown(sample_rate=0.5, **_RUN)
        assert journeys_blob(first) == journeys_blob(second)
        assert waterfall_json(result.waterfall) == waterfall_json(
            build_waterfall(first, end_to_end=result.waterfall["end_to_end"]["recorder_p50"],
                            window_start=_RUN["warmup"])
        )

    def test_sampling_subsets_the_full_set(self):
        _, full, _ = _latency_breakdown(**_RUN)
        _, sampled, _ = _latency_breakdown(sample_rate=0.25, **_RUN)
        full_keys = {key for key, _ in full.journeys()}
        sampled_keys = {key for key, _ in sampled.journeys()}
        assert 0 < len(sampled_keys) < len(full_keys)
        assert sampled_keys <= full_keys

    def test_sharded_run_adds_routing_stage(self):
        result, _, _ = _latency_breakdown(
            shard=ShardConfig(shards=2), clients=256, sim_time=14.0, warmup=5.0, seed=3
        )
        waterfall = result.waterfall
        assert waterfall["journeys"]["complete"] > 0
        assert "routing" in waterfall["stages"]
        assert waterfall["end_to_end"]["error"] < 0.05

    def test_real_client_mode_traces_admission(self):
        result, _recorder, _ = _latency_breakdown(
            client=ClientConfig(mode="real"),
            clients=32,
            sim_time=14.0,
            warmup=5.0,
            seed=3,
        )
        waterfall = result.waterfall
        assert waterfall["journeys"]["complete"] > 0
        assert "net_to_leader" in waterfall["stages"]
        assert waterfall["end_to_end"]["error"] < 0.05

    def test_disabled_rate_records_nothing(self):
        result, recorder, cluster = _latency_breakdown(sample_rate=0.0, **_RUN)
        assert not recorder.enabled
        assert len(recorder) == 0
        assert result.waterfall is None
        # rate=0 collapses to the NULL_OBS path: replicas carry no
        # journey observer at all.
        assert cluster.observability is None or cluster.observability.journey is None

    def test_event_count_invariance(self):
        """Arming the tracer must never change the simulated schedule."""
        base, off_cluster = _load_point_ex(
            "marlin", 1, _RUN["clients"], sim_time=_RUN["sim_time"],
            warmup=_RUN["warmup"], seed=_RUN["seed"],
        )
        traced, _, on_cluster = _latency_breakdown(**_RUN)
        assert on_cluster.sim.events_processed == off_cluster.sim.events_processed
        assert traced.throughput_tps == pytest.approx(base.throughput_tps)
        assert traced.p50_latency == pytest.approx(base.p50_latency)


# ---------------------------------------------------------------------------
# RunResult surfacing + CLI


class TestSurfacing:
    def test_percentiles_on_run_result(self):
        result, _, _ = _latency_breakdown(**_RUN)
        assert 0.0 < result.p50_latency <= result.p90_latency
        assert result.p90_latency <= result.p999_latency

    def test_latency_recorder_summary(self):
        recorder = LatencyRecorder()
        for i in range(1, 101):
            recorder.record(0.0, i / 100.0)
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["p50"] == pytest.approx(0.5)
        assert summary["p90"] == pytest.approx(0.9)
        assert summary["p999"] == pytest.approx(1.0)
        assert summary["mean"] == pytest.approx(0.505)

    def test_cli_latency_smoke(self, tmp_path, capsys):
        waterfall_path = tmp_path / "waterfall.json"
        trace_path = tmp_path / "journeys.json"
        code = cli_main(
            [
                "latency",
                "--protocol", "marlin",
                "--f", "1",
                "--clients", "128",
                "--sim-time", "12",
                "--warmup", "4",
                "--seed", "3",
                "--check", "0.05",
                "--json", str(waterfall_path),
                "--chrome-out", str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reconciliation" in out
        waterfall = json.loads(waterfall_path.read_text())
        assert waterfall["stages"]
        assert waterfall["end_to_end"]["error"] < 0.05
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]

    def test_cli_check_fails_loudly(self):
        # An impossible tolerance must exit non-zero.
        with pytest.raises(SystemExit):
            cli_main(
                [
                    "latency",
                    "--clients", "64",
                    "--sim-time", "8",
                    "--warmup", "3",
                    "--check", "0.0",
                ]
            )
