"""Canonical encoding: determinism, roundtrips, malformed input."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, strategies as st

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError


def reference_encode(value) -> bytes:
    """The original append-per-field encoder, kept as the golden oracle.

    The shipping encoder writes into one preallocated buffer with
    ``pack_into``; this straightforward implementation pins the wire
    format it must keep producing byte-for-byte.
    """
    out = bytearray()
    _reference_into(value, out)
    return bytes(out)


def _reference_into(value, out: bytearray) -> None:
    if value is None:
        out += b"n"
    elif value is True:
        out += b"t"
    elif value is False:
        out += b"f"
    elif isinstance(value, int):
        out += b"i" + struct.pack(">q", value)
    elif isinstance(value, bytes):
        out += b"b" + struct.pack(">I", len(value)) + value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s" + struct.pack(">I", len(raw)) + raw
    elif isinstance(value, (list, tuple)):
        out += b"l" + struct.pack(">I", len(value))
        for item in value:
            _reference_into(item, out)
    elif isinstance(value, dict):
        out += b"d" + struct.pack(">I", len(value))
        for key in sorted(value):
            _reference_into(key, out)
            _reference_into(value[key], out)
    else:
        raise EncodingError(f"unsupported: {type(value).__name__}")


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            b"",
            b"\x00\xff" * 10,
            "",
            "hello",
            "uniçøde",
            [],
            [1, 2, 3],
            [None, True, b"x", "y", [2]],
            {},
            {"a": 1, "b": [2, 3], "c": {"d": b"e"}},
        ],
    )
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_deep_nesting(self):
        value = [1]
        for _ in range(50):
            value = [value]
        assert decode(encode(value)) == value


class TestDeterminism:
    def test_dict_key_order_irrelevant(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_distinct_values_distinct_encodings(self):
        values = [0, 1, -1, b"", b"0", "", "0", None, True, False, [], [0], {}]
        encodings = [encode(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_int_zero_differs_from_false(self):
        assert encode(0) != encode(False)


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(EncodingError):
            encode(1.5)

    def test_non_string_dict_key(self):
        with pytest.raises(EncodingError):
            encode({1: "x"})

    def test_int_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(2**70)

    def test_trailing_bytes(self):
        with pytest.raises(EncodingError):
            decode(encode(1) + b"junk")

    def test_truncated(self):
        data = encode([1, 2, 3])
        with pytest.raises(EncodingError):
            decode(data[:-3])

    def test_empty_input(self):
        with pytest.raises(EncodingError):
            decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(EncodingError):
            decode(b"zzz")

    def test_unsorted_dict_rejected(self):
        # Hand-build a dict encoding with keys out of canonical order.
        good = encode({"a": 1, "b": 2})
        a_first = encode("a") + encode(1)
        b_first = encode("b") + encode(2)
        swapped = good[:5] + b_first + a_first
        with pytest.raises(EncodingError):
            decode(swapped)


class TestGoldenFastPath:
    """The zero-copy encoder must match the reference byte-for-byte."""

    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**63 - 1,
            -(2**63),
            b"",
            b"\x00\xff" * 300,
            "",
            "uniçøde",
            [],
            [1, b"two", "three", None, True, False],
            [[1, 2, b"x", 3], [4, 5, b"y", 6]],  # the inlined op-record shape
            [[[1], [b"deep"]], [["mixed", None]]],
            {},
            {"a": 1, "z": [2, {"nested": b"v"}], "m": (True, None)},
            list(range(200)),  # forces buffer growth mid-list
            [b"x" * 2000],  # forces growth on a single slice write
        ],
    )
    def test_matches_reference(self, value):
        assert encode(value) == reference_encode(value)

    def test_bool_inside_list_not_packed_as_int(self):
        # bool is an int subclass; the inline list fast path must leave
        # it on the recursive path so it keeps its one-byte tag.
        assert encode([True, False, 1, 0]) == reference_encode([True, False, 1, 0])

    def test_int_subclass_encodes_as_int(self):
        class MyInt(int):
            pass

        assert encode([MyInt(7)]) == reference_encode([7])
        assert encode(MyInt(7)) == reference_encode(7)

    def test_bytes_subclass_encodes_as_bytes(self):
        class MyBytes(bytes):
            pass

        assert encode([MyBytes(b"q")]) == reference_encode([b"q"])

    def test_out_of_range_int_still_rejected(self):
        with pytest.raises(EncodingError):
            encode([2**70])
        with pytest.raises(EncodingError):
            encode([[2**70]])


_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


@given(_values)
def test_property_roundtrip(value):
    decoded = decode(encode(value))
    assert decoded == _normalise(value)


@given(_values)
def test_property_deterministic(value):
    assert encode(value) == encode(value)


@given(_values)
def test_property_matches_reference(value):
    assert encode(value) == reference_encode(value)


def _normalise(value):
    if isinstance(value, tuple):
        return [_normalise(v) for v in value]
    if isinstance(value, list):
        return [_normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    return value
