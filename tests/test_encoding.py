"""Canonical encoding: determinism, roundtrips, malformed input."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.common.encoding import decode, encode
from repro.common.errors import EncodingError


class TestRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**62,
            -(2**62),
            b"",
            b"\x00\xff" * 10,
            "",
            "hello",
            "uniçøde",
            [],
            [1, 2, 3],
            [None, True, b"x", "y", [2]],
            {},
            {"a": 1, "b": [2, 3], "c": {"d": b"e"}},
        ],
    )
    def test_roundtrip(self, value):
        assert decode(encode(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode(encode((1, 2))) == [1, 2]

    def test_deep_nesting(self):
        value = [1]
        for _ in range(50):
            value = [value]
        assert decode(encode(value)) == value


class TestDeterminism:
    def test_dict_key_order_irrelevant(self):
        assert encode({"a": 1, "b": 2}) == encode({"b": 2, "a": 1})

    def test_distinct_values_distinct_encodings(self):
        values = [0, 1, -1, b"", b"0", "", "0", None, True, False, [], [0], {}]
        encodings = [encode(v) for v in values]
        assert len(set(encodings)) == len(values)

    def test_int_zero_differs_from_false(self):
        assert encode(0) != encode(False)


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(EncodingError):
            encode(1.5)

    def test_non_string_dict_key(self):
        with pytest.raises(EncodingError):
            encode({1: "x"})

    def test_int_out_of_range(self):
        with pytest.raises(EncodingError):
            encode(2**70)

    def test_trailing_bytes(self):
        with pytest.raises(EncodingError):
            decode(encode(1) + b"junk")

    def test_truncated(self):
        data = encode([1, 2, 3])
        with pytest.raises(EncodingError):
            decode(data[:-3])

    def test_empty_input(self):
        with pytest.raises(EncodingError):
            decode(b"")

    def test_unknown_tag(self):
        with pytest.raises(EncodingError):
            decode(b"zzz")

    def test_unsorted_dict_rejected(self):
        # Hand-build a dict encoding with keys out of canonical order.
        good = encode({"a": 1, "b": 2})
        a_first = encode("a") + encode(1)
        b_first = encode("b") + encode(2)
        swapped = good[:5] + b_first + a_first
        with pytest.raises(EncodingError):
            decode(swapped)


_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63 - 1)
    | st.binary(max_size=64)
    | st.text(max_size=32),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


@given(_values)
def test_property_roundtrip(value):
    decoded = decode(encode(value))
    assert decoded == _normalise(value)


@given(_values)
def test_property_deterministic(value):
    assert encode(value) == encode(value)


def _normalise(value):
    if isinstance(value, tuple):
        return [_normalise(v) for v in value]
    if isinstance(value, list):
        return [_normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    return value
