"""Conventional (simulated ECDSA) signatures and the key registry."""

from __future__ import annotations

import pytest

from repro.common.errors import CryptoError, InvalidSignature
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import SIGNATURE_SIZE, Signature, SigningKey


class TestSigningKey:
    def test_sign_verify_roundtrip(self):
        key = SigningKey.from_seed("alice")
        sig = key.sign(b"message")
        key.verify(b"message", sig)  # must not raise

    def test_deterministic(self):
        key = SigningKey.from_seed("alice")
        assert key.sign(b"m") == key.sign(b"m")

    def test_different_messages_different_sigs(self):
        key = SigningKey.from_seed("alice")
        assert key.sign(b"m1") != key.sign(b"m2")

    def test_wrong_message_rejected(self):
        key = SigningKey.from_seed("alice")
        sig = key.sign(b"m1")
        with pytest.raises(InvalidSignature):
            key.verify(b"m2", sig)

    def test_wrong_key_rejected(self):
        alice = SigningKey.from_seed("alice")
        bob = SigningKey.from_seed("bob")
        sig = alice.sign(b"m")
        with pytest.raises(InvalidSignature):
            bob.verify(b"m", sig)

    def test_tampered_signature_rejected(self):
        key = SigningKey.from_seed("alice")
        sig = key.sign(b"m")
        tampered = Signature(bytes([sig.data[0] ^ 1]) + sig.data[1:])
        with pytest.raises(InvalidSignature):
            key.verify(b"m", tampered)

    def test_signature_size(self):
        assert len(SigningKey.from_seed("x").sign(b"m").data) == SIGNATURE_SIZE

    def test_bad_signature_length(self):
        with pytest.raises(CryptoError):
            Signature(b"short")

    def test_verify_key_matches(self):
        key = SigningKey.from_seed("alice")
        assert key.verify_key().matches(key.sign(b"m"))
        other = SigningKey.from_seed("bob")
        assert not other.verify_key().matches(key.sign(b"m"))


class TestKeyRegistry:
    def test_per_replica_keys_distinct(self):
        registry = KeyRegistry(4, 3)
        keys = {registry.signing_key(i).secret for i in range(4)}
        assert len(keys) == 4

    def test_sign_and_verify(self):
        registry = KeyRegistry(4, 3)
        sig = registry.sign(1, b"m")
        registry.verify(1, b"m", sig)
        assert registry.is_valid(1, b"m", sig)
        assert not registry.is_valid(2, b"m", sig)

    def test_unknown_replica(self):
        registry = KeyRegistry(4, 3)
        with pytest.raises(CryptoError):
            registry.sign(9, b"m")

    def test_deterministic_from_seed(self):
        r1 = KeyRegistry(4, 3, seed=b"s")
        r2 = KeyRegistry(4, 3, seed=b"s")
        assert r1.signing_key(0).secret == r2.signing_key(0).secret

    def test_different_seeds_differ(self):
        r1 = KeyRegistry(4, 3, seed=b"s1")
        r2 = KeyRegistry(4, 3, seed=b"s2")
        assert r1.signing_key(0).secret != r2.signing_key(0).secret

    def test_threshold_paths(self):
        registry = KeyRegistry(4, 3)
        shares = [registry.partial_sign(i, b"m") for i in range(3)]
        for share in shares:
            registry.verify_partial(b"m", share)
        sig = registry.combine(b"m", shares)
        registry.verify_threshold(b"m", sig)
