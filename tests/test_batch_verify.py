"""Batch verification: aggregate checks must agree with sequential ones.

Covers the crypto-layer batching the hot path relies on:

* ``ThresholdPublicKey.verify_shares`` — blinded aggregate-then-verify
  with bisection on failure.
* ``CryptoService.verify_votes`` — batched vote verification equal to
  per-vote verification for all three schemes, on valid and corrupted
  inputs.
* The QC verification LRU cache, including its hit/miss counters on the
  metrics registry.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.common.errors import CryptoError
from repro.consensus.crypto_service import (
    MultisigCryptoService,
    NullCryptoService,
    ThresholdCryptoService,
)
from repro.consensus.qc import BlockSummary, Phase
from repro.crypto.hashing import digest_of
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature
from repro.crypto.threshold import PartialSignature
from repro.obs.metrics import MetricsRegistry

N, QUORUM = 4, 3


def summary(tag: str = "block", view: int = 1) -> BlockSummary:
    return BlockSummary(digest=digest_of([tag, view]), view=view, height=view, parent_view=0)


@pytest.fixture
def registry():
    return KeyRegistry(N, QUORUM, seed=b"batch-tests")


def make_service(kind: str, registry: KeyRegistry):
    if kind == "threshold":
        return ThresholdCryptoService(registry)
    if kind == "multisig":
        return MultisigCryptoService(registry)
    return NullCryptoService(N, QUORUM)


def make_votes(service, block: BlockSummary, signers=range(N), phase=Phase.PREPARE):
    return [
        (signer, phase, block.view, block, service.sign_vote(signer, phase, block.view, block))
        for signer in signers
    ]


def sequential_bad(service, votes) -> list[int]:
    from repro.common.errors import InvalidVote

    bad = []
    for index, (signer, phase, view, block, share) in enumerate(votes):
        try:
            service.verify_vote(signer, phase, view, block, share)
        except InvalidVote:
            bad.append(index)
    return bad


def corrupt(service, votes, index):
    """Replace one vote's share with a corrupted-but-well-formed one."""
    signer, phase, view, block, share = votes[index]
    if isinstance(share, PartialSignature):
        bad_share = dataclasses.replace(share, value=(share.value + 1) % (2**255 - 19))
    elif isinstance(share, Signature):
        bad_share = Signature(data=bytes([share.data[0] ^ 0xFF]) + share.data[1:])
    else:  # NullShare
        bad_share = dataclasses.replace(share, tag=b"\x00" * len(share.tag))
    out = list(votes)
    out[index] = (signer, phase, view, block, bad_share)
    return out


class TestThresholdShareBatch:
    def test_all_valid_shares_pass(self, registry):
        message = b"payload"
        shares = [registry.partial_sign(signer, message) for signer in range(N)]
        assert registry.verify_partials_batch(message, shares) == []

    @pytest.mark.parametrize("bad_index", [0, 1, 3])
    def test_single_bad_share_identified(self, registry, bad_index):
        message = b"payload"
        shares = [registry.partial_sign(signer, message) for signer in range(N)]
        shares[bad_index] = dataclasses.replace(
            shares[bad_index], value=(shares[bad_index].value + 7) % (2**255 - 19)
        )
        assert registry.verify_partials_batch(message, shares) == [bad_index]

    def test_multiple_bad_shares_identified(self, registry):
        message = b"m"
        shares = [registry.partial_sign(signer, message) for signer in range(N)]
        for index in (1, 2):
            shares[index] = dataclasses.replace(
                shares[index], value=(shares[index].value + 3) % (2**255 - 19)
            )
        assert registry.verify_partials_batch(message, shares) == [1, 2]

    def test_error_cancellation_is_blinded_away(self, registry):
        # Two corruptions crafted to cancel in an unblinded sum (+d, -d)
        # must still both be caught by the blinded aggregate check.
        message = b"m"
        shares = [registry.partial_sign(signer, message) for signer in range(N)]
        prime = 2**255 - 19
        shares[0] = dataclasses.replace(shares[0], value=(shares[0].value + 5) % prime)
        shares[1] = dataclasses.replace(shares[1], value=(shares[1].value - 5) % prime)
        assert registry.verify_partials_batch(message, shares) == [0, 1]


@pytest.mark.parametrize("kind", ["threshold", "multisig", "null"])
class TestVerifyVotesMatchesSequential:
    def test_all_valid(self, kind, registry):
        service = make_service(kind, registry)
        votes = make_votes(service, summary())
        assert service.verify_votes(votes) == sequential_bad(service, votes) == []

    @pytest.mark.parametrize("bad_index", [0, 2])
    def test_one_corrupted(self, kind, registry, bad_index):
        service = make_service(kind, registry)
        votes = corrupt(service, make_votes(service, summary()), bad_index)
        assert service.verify_votes(votes) == sequential_bad(service, votes) == [bad_index]

    def test_mixed_payload_groups(self, kind, registry):
        # Batches can mix vote payloads (e.g. prepare + commit in flight).
        service = make_service(kind, registry)
        votes = make_votes(service, summary("a"), phase=Phase.PREPARE)
        votes += make_votes(service, summary("b", view=2), phase=Phase.COMMIT)
        votes = corrupt(service, votes, 5)
        assert sorted(service.verify_votes(votes)) == sequential_bad(service, votes) == [5]

    def test_wrong_sender_rejected(self, kind, registry):
        # A share signed by replica 1 but claimed by replica 0.
        service = make_service(kind, registry)
        block = summary()
        stolen = service.sign_vote(1, Phase.PREPARE, block.view, block)
        votes = make_votes(service, block, signers=[2, 3])
        votes.append((0, Phase.PREPARE, block.view, block, stolen))
        assert service.verify_votes(votes) == sequential_bad(service, votes) == [2]


def make_qc(service, block: BlockSummary, phase=Phase.PREPARE):
    accumulator = service.accumulator(phase, block.view, block)
    for signer in range(QUORUM):
        accumulator.add(signer, service.sign_vote(signer, phase, block.view, block))
    return service.make_qc(phase, block.view, block, accumulator)


@pytest.mark.parametrize("kind", ["threshold", "multisig", "null"])
class TestQCCache:
    def test_repeat_verification_hits_cache(self, kind, registry):
        service = make_service(kind, registry)
        qc = make_qc(service, summary())
        service.verify_qc(qc)
        assert (service.qc_cache_hits, service.qc_cache_misses) == (0, 1)
        for _ in range(3):
            service.verify_qc(qc)
        assert (service.qc_cache_hits, service.qc_cache_misses) == (3, 1)

    def test_qc_cached_probe(self, kind, registry):
        service = make_service(kind, registry)
        qc = make_qc(service, summary())
        assert not service.qc_cached(qc)
        service.verify_qc(qc)
        assert service.qc_cached(qc)
        # The probe itself never mutates the counters.
        assert (service.qc_cache_hits, service.qc_cache_misses) == (0, 1)

    def test_metrics_registry_counters(self, kind, registry):
        service = make_service(kind, registry)
        metrics = MetricsRegistry()
        service.bind_metrics(metrics)
        qc = make_qc(service, summary())
        service.verify_qc(qc)
        service.verify_qc(qc)
        service.verify_qc(qc)
        snapshot = metrics.snapshot()["counters"]
        (hits,) = snapshot["crypto_qc_cache_hits_total"]
        (misses,) = snapshot["crypto_qc_cache_misses_total"]
        assert hits["value"] == 2
        assert misses["value"] == 1

    def test_bind_metrics_seeds_existing_counts(self, kind, registry):
        service = make_service(kind, registry)
        qc = make_qc(service, summary())
        service.verify_qc(qc)
        service.verify_qc(qc)
        metrics = MetricsRegistry()
        service.bind_metrics(metrics)
        snapshot = metrics.snapshot()["counters"]
        assert snapshot["crypto_qc_cache_hits_total"][0]["value"] == 1
        assert snapshot["crypto_qc_cache_misses_total"][0]["value"] == 1

    def test_failed_verification_not_cached(self, kind, registry):
        service = make_service(kind, registry)
        block = summary()
        qc = make_qc(service, block)
        forged = dataclasses.replace(qc, view=qc.view + 1)
        with pytest.raises(CryptoError):
            service.verify_qc(forged)
        assert not service.qc_cached(forged)
        with pytest.raises(CryptoError):
            service.verify_qc(forged)
        assert service.qc_cache_hits == 0

    def test_genesis_always_passes_without_cache_traffic(self, kind, registry):
        from repro.consensus.block import genesis_block
        from repro.consensus.qc import genesis_qc

        service = make_service(kind, registry)
        genesis = genesis_qc(genesis_block())
        service.verify_qc(genesis)
        assert service.qc_cached(genesis)
        assert (service.qc_cache_hits, service.qc_cache_misses) == (0, 0)

    def test_verify_qcs_flags_bad_indices(self, kind, registry):
        service = make_service(kind, registry)
        good_a = make_qc(service, summary("a"))
        good_b = make_qc(service, summary("b", view=2))
        forged = dataclasses.replace(good_a, view=good_a.view + 1)
        assert service.verify_qcs([good_a, forged, good_b]) == [1]


class TestQCCacheEviction:
    def test_lru_eviction(self, registry):
        service = NullCryptoService(N, QUORUM, qc_cache_size=2)
        qcs = [make_qc(service, summary(str(i), view=i + 1)) for i in range(3)]
        for qc in qcs:
            service.verify_qc(qc)
        assert not service.qc_cached(qcs[0])  # evicted, capacity 2
        assert service.qc_cached(qcs[1]) and service.qc_cached(qcs[2])


class TestMultisigConstituents:
    def test_bad_constituent_identified(self, registry):
        service = MultisigCryptoService(registry)
        block = summary()
        qc = make_qc(service, block)
        signatures = list(qc.signature.signatures)
        signer, signature = signatures[1]
        signatures[1] = (
            signer,
            Signature(data=bytes([signature.data[0] ^ 0xFF]) + signature.data[1:]),
        )
        forged = dataclasses.replace(
            qc, signature=dataclasses.replace(qc.signature, signatures=tuple(signatures))
        )
        with pytest.raises(CryptoError, match=f"replica {signer}"):
            service.verify_qc(forged)
