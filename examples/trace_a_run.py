#!/usr/bin/env python3
"""Trace a Marlin run: watch every protocol message around a view change.

Attaches a :class:`~repro.harness.timeline.Timeline` to a simulated
cluster, crashes the leader mid-run, and prints the exact message
sequence of the recovery — the two-phase happy-path view change, followed
by the resumed normal case.

Run:  python examples/trace_a_run.py
"""

from __future__ import annotations

from repro.common.config import ClusterConfig, ExperimentConfig
from repro.harness.des_runtime import DESCluster
from repro.harness.timeline import Timeline
from repro.harness.workload import ClosedLoopClients

CRASH_AT = 2.0


def main() -> None:
    experiment = ExperimentConfig(
        cluster=ClusterConfig.for_f(1, batch_size=100, base_timeout=0.5), seed=8
    )
    cluster = DESCluster(experiment, protocol="marlin", crypto_mode="threshold")
    timeline = Timeline().attach(cluster)
    pool = ClosedLoopClients(cluster, num_clients=12, token_weight=1, target="all")

    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.crash_at(0, CRASH_AT)
    timeline.record(CRASH_AT, "CRASH", "leader r0 crash-stops", actor=0)
    cluster.run(until=5.0)
    cluster.assert_safety()

    print("One normal-case block cycle (steady state before the crash):")
    print(
        timeline.render(
            start=1.0,
            end=1.5,
            kinds={"prepare", "vote:prepare", "commit", "vote:commit", "decide", "COMMIT"},
            limit=24,
        )
    )

    vc_start = min(
        e.time for e in timeline.filtered(kinds={"view-change"}) if e.time > CRASH_AT
    )
    print("\nThe view change (crash at t=2.0, timeout, happy-path recovery):")
    print(
        timeline.render(
            start=CRASH_AT,
            end=vc_start + 0.45,
            kinds={
                "CRASH", "view-change", "pre-prepare", "vote:pre-prepare",
                "prepare", "commit", "decide", "COMMIT",
            },
            limit=40,
        )
    )

    counts = timeline.counts()
    print("\nevent totals:", {k: v for k, v in sorted(counts.items())})
    new_leader = cluster.replicas[1]
    print(
        f"\nview change was {'HAPPY (2 phases)' if new_leader.stats['happy_view_changes'] else 'unhappy (3 phases)'}; "
        f"cluster resumed at view {new_leader.cview} and committed "
        f"{new_leader.ledger.num_committed_blocks} blocks total."
    )
    assert new_leader.ledger.num_committed_blocks > 0


if __name__ == "__main__":
    main()
