#!/usr/bin/env python3
"""Marlin over real TCP sockets on localhost.

The same sans-io protocol core that drives the simulator runs here over
genuine network connections: four replicas, each with its own TCP server,
length-prefixed frames, the KV application, and on-disk persistence in a
temporary directory.

Run:  python examples/tcp_cluster.py
"""

from __future__ import annotations

import asyncio
import tempfile

from repro.runtime.app import KVStateMachine
from repro.runtime.cluster import LocalCluster


async def main() -> None:
    with tempfile.TemporaryDirectory(prefix="marlin-tcp-") as workdir:
        data_dirs = [f"{workdir}/node{i}" for i in range(4)]
        cluster = LocalCluster(
            f=1,
            protocol="marlin",
            transport="tcp",
            batch_size=8,
            data_dirs=data_dirs,
        )
        async with cluster:
            ports = [cluster.network.port_of(i) for i in range(4)]
            print(f"four replicas listening on TCP ports {ports}")

            for i in range(12):
                await cluster.submit(
                    KVStateMachine.encode_set(f"key-{i}".encode(), f"value-{i}".encode())
                )
            await cluster.wait_for_height(2, timeout=20)

            print(f"committed heights: {cluster.committed_heights()}")
            node = cluster.nodes[1]
            print(f"replica 1 sees key-3 = {node.app.get(b'key-3')!r}")
            digests = cluster.state_digests()
            print(f"state digests agree on a quorum: {len(set(digests[:3])) == 1}")
            print(f"blocks persisted at replica 1: {len(node.blockstore)}")
        print("cluster shut down cleanly; KV stores flushed to disk")


if __name__ == "__main__":
    asyncio.run(main())
