#!/usr/bin/env python3
"""A replicated bank on the asyncio runtime (real concurrency).

Runs Marlin replicas on a live event loop with the from-scratch storage
stack: client "transfer" operations are committed by consensus, executed
by the KV state machine on every replica, and persist through the
log-structured store.  Halfway through, the leader is crashed to show a
live view change; the surviving replicas keep processing transfers and
finish with identical balances.

Run:  python examples/kv_bank.py
"""

from __future__ import annotations

import asyncio
import random

from repro.runtime.app import KVStateMachine
from repro.runtime.cluster import LocalCluster

ACCOUNTS = [b"alice", b"bob", b"carol", b"dave"]


async def transfer(cluster: LocalCluster, src: bytes, dst: bytes, amount: int) -> None:
    await cluster.submit(KVStateMachine.encode_add(src, -amount))
    await cluster.submit(KVStateMachine.encode_add(dst, amount))


async def main() -> None:
    rng = random.Random(7)
    async with LocalCluster(f=1, protocol="marlin", batch_size=16, base_timeout=0.4) as cluster:
        # Seed every account with 1000 units.
        for account in ACCOUNTS:
            await cluster.submit(KVStateMachine.encode_add(account, 1000))
        await cluster.wait_for_height(1, timeout=15)

        print("phase 1: transfers under the initial leader")
        for _ in range(20):
            src, dst = rng.sample(ACCOUNTS, 2)
            await transfer(cluster, src, dst, rng.randint(1, 50))
        height = max(cluster.committed_heights())
        await cluster.wait_for_height(height, timeout=15)

        print("phase 2: crash the leader (replica 0), keep transferring")
        cluster.crash(0)
        for round_ in range(10):
            src, dst = rng.sample(ACCOUNTS, 2)
            await transfer(cluster, src, dst, rng.randint(1, 50))
            await asyncio.sleep(0.05)

        # Wait until every submitted operation has committed on the
        # survivors: 4 seeds + 2 ops per transfer x 30 transfers.
        expected_ops = 4 + 2 * 30
        deadline = asyncio.get_event_loop().time() + 30
        while asyncio.get_event_loop().time() < deadline:
            done = [n.replica.ledger.ops_committed for n in cluster.nodes[1:]]
            if all(d >= expected_ops for d in done):
                break
            await asyncio.sleep(0.05)

        print("\nfinal state (survivors):")
        reference = cluster.nodes[1].app
        total = 0
        for account in ACCOUNTS:
            balance = reference.balance(account)
            total += balance
            print(f"  {account.decode():>6}: {balance:5d}")
        print(f"  total : {total:5d} (conserved: {total == 1000 * len(ACCOUNTS)})")

        digests = {node.app.state_digest() for node in cluster.nodes[1:]}
        views = [node.replica.cview for node in cluster.nodes[1:]]
        print(f"replica state digests agree : {len(digests) == 1}")
        print(f"views after the crash       : {views} (view change happened: {min(views) >= 2})")
        assert total == 1000 * len(ACCOUNTS)
        assert len(digests) == 1


if __name__ == "__main__":
    asyncio.run(main())
