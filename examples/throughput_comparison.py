#!/usr/bin/env python3
"""Marlin vs HotStuff: a miniature of the paper's Fig. 10a.

Sweeps a closed-loop client population on the simulated DSN'22 testbed
(f = 1, 150-byte requests) and prints the two throughput-latency curves
side by side, plus the latency decomposition that explains them: Marlin
commits in 7 one-way hops end to end, HotStuff in 9.

Run:  python examples/throughput_comparison.py        (~30 s)
"""

from __future__ import annotations

from repro.api import Scenario, load_point
from repro.harness.report import format_table, ktx, ms

SWEEP = [1024, 4096, 16384, 65536]


def main() -> None:
    print("Simulated testbed: 40 ms one-way latency, 200 Mbps links, 1 Gbps NICs")
    print("Workload: closed-loop clients, 150-byte requests and replies\n")

    rows = []
    curves: dict[str, list] = {}
    for protocol in ("marlin", "hotstuff"):
        curves[protocol] = []
        for clients in SWEEP:
            point = load_point(
                Scenario(protocol=protocol, f=1, clients=clients, sim_time=18.0, warmup=6.0)
            )
            curves[protocol].append(point)
            rows.append(
                [
                    protocol,
                    str(clients),
                    ktx(point.throughput_tps),
                    ms(point.mean_latency),
                ]
            )
    print(format_table("throughput vs latency (f=1)", ["protocol", "clients", "ktx/s", "latency ms"], rows))

    print("\nWhy Marlin wins — the phase count:")
    print("  HotStuff : request + prepare + vote + precommit + vote + commit + vote + decide + reply = 9 hops")
    print("  Marlin   : request + prepare + vote + commit + vote + decide + reply                   = 7 hops")
    low_m = curves["marlin"][0].mean_latency
    low_h = curves["hotstuff"][0].mean_latency
    print(
        f"\nmeasured low-load latency ratio: {low_m / low_h:.3f} "
        f"(theory 7/9 = {7 / 9:.3f})"
    )
    for marlin_point, hotstuff_point in zip(curves["marlin"], curves["hotstuff"]):
        assert marlin_point.mean_latency < hotstuff_point.mean_latency


if __name__ == "__main__":
    main()
