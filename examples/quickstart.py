#!/usr/bin/env python3
"""Quickstart: run a 4-replica Marlin cluster on the simulated testbed.

Spins up ``n = 3f + 1 = 4`` replicas under the paper's environment model
(40 ms one-way latency, 200 Mbps shaped links, 1 Gbps NICs), drives them
with 64 closed-loop clients for ten simulated seconds, and prints the
ledger state and client-side performance.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ClusterConfig, ExperimentConfig, DESCluster, ClosedLoopClients


def main() -> None:
    experiment = ExperimentConfig(cluster=ClusterConfig.for_f(1, batch_size=400))
    cluster = DESCluster(experiment, protocol="marlin", crypto_mode="threshold")
    clients = ClosedLoopClients(cluster, num_clients=64, token_weight=1, warmup=1.0)

    cluster.start()
    cluster.sim.schedule(0.01, clients.start)
    cluster.run(until=10.0)
    cluster.assert_safety()  # no two replicas committed conflicting blocks

    print("Marlin quickstart (f=1, four replicas, simulated DSN'22 testbed)")
    print("-" * 64)
    heights = cluster.committed_heights()
    print(f"committed heights per replica : {heights}")
    print(f"operations committed          : {cluster.total_ops_committed()}")
    summary = clients.summary()
    print(f"throughput                    : {summary['throughput_tps']:.0f} tx/s")
    print(f"mean end-to-end latency       : {summary['mean_latency'] * 1000:.1f} ms")
    print(f"p99 latency                   : {summary['p99_latency'] * 1000:.1f} ms")
    leader = cluster.replicas[0]
    print(f"views entered                 : {leader.stats['views_entered']} (bootstrap only)")
    print(f"blocks committed              : {leader.stats['blocks_committed']}")
    assert len(set(heights)) == 1, "all replicas agree on the committed chain"
    print("OK: all replicas agree.")


if __name__ == "__main__":
    main()
