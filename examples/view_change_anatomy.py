#!/usr/bin/env python3
"""Anatomy of a Marlin view change (the paper's Fig. 2 / Section IV-B).

Constructs the adversarial scenario that breaks naive two-phase BFT:

1. view 1 commits b1, then proposes b2;
2. ``prepareQC(b2)`` forms, but the COMMIT carrying it reaches only one
   replica, which becomes *locked* on it;
3. the old leader turns Byzantine — it withholds votes and lies about
   its state in view changes — and the adversary delays the locked
   replica's VIEW-CHANGE messages, so every new leader assembles an
   *unsafe snapshot* (one that misses the highest QC).

Then runs both protocols through the same schedule:

* **two-phase HotStuff (insecure)** re-extends b1; the locked replica
  refuses; the quorum is unreachable; repeated view changes commit
  nothing — a liveness failure;
* **Marlin** broadcasts its PRE-PREPARE with a *virtual block*; the
  locked replica answers Case R2 (voting for the virtual block and
  shipping its lockedQC); the leader validates the virtual block with
  that QC and the cluster commits again — in one view change.

Run:  python examples/view_change_anatomy.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

from tests.test_insecure_liveness import (  # noqa: E402
    BYZ,
    LOCKED,
    advance_one_view,
    build_unsafe_snapshot_scenario,
)
from repro.consensus.marlin.replica import MarlinReplica  # noqa: E402
from repro.consensus.twophase_insecure import TwoPhaseInsecureReplica  # noqa: E402


def banner(text: str) -> None:
    print()
    print("=" * 68)
    print(text)
    print("=" * 68)


def describe(net, label: str) -> None:
    alive = [r for r in net.replicas if r.id != BYZ]
    print(f"  [{label}]")
    for replica in alive:
        print(
            f"    r{replica.id}: committed height {replica.ledger.committed_height}, "
            f"locked on h={replica.locked_qc.block.height}"
            f"{' <- locked ABOVE the snapshot' if replica.id == LOCKED else ''}"
        )


def main() -> None:
    banner("Scenario setup: hidden QC + lying Byzantine + delayed messages")
    print(__doc__.split("Then runs")[0])

    banner("1) Two-phase HotStuff WITHOUT the pre-prepare phase (insecure)")
    net = build_unsafe_snapshot_scenario(TwoPhaseInsecureReplica)
    describe(net, "before view changes")
    for round_ in range(3):
        advance_one_view(net)
    describe(net, "after 3 view changes")
    stalled = all(
        r.ledger.committed_height == net.b1_height for r in net.replicas if r.id != BYZ
    )
    print(f"  => progress: NONE (stalled: {stalled})")
    assert stalled

    banner("2) Marlin under the IDENTICAL adversarial schedule")
    net = build_unsafe_snapshot_scenario(MarlinReplica)
    describe(net, "before the view change")
    advance_one_view(net)
    describe(net, "after ONE view change")
    leader = net.replicas[1]
    locked = net.replicas[LOCKED]
    print(f"  leader ran Case V1 (normal + virtual shadow blocks): {leader.stats['case_v1'] == 1}")
    print(f"  locked replica voted Case R2 and shipped its lockedQC : {locked.stats['votes_r2'] == 1}")
    recovered = all(
        r.ledger.committed_height >= net.b2_height for r in net.replicas if r.id != BYZ
    )
    print(f"  => progress: RECOVERED (the hidden b2 and the virtual block committed: {recovered})")
    assert recovered

    banner("Conclusion")
    print(
        "  The pre-prepare phase is what makes two-phase commit safe to\n"
        "  pair with a linear view change: instead of the leader guessing\n"
        "  the highest QC from its (possibly unsafe) snapshot, the replicas\n"
        "  VOTE on it — and the virtual block means that extra phase still\n"
        "  carries a usable proposal. (Paper Sections IV-B and IV-D.)"
    )


if __name__ == "__main__":
    main()
