"""Key registry: the trusted-setup artifact shared by a cluster.

``tgen`` in the paper is run by a trusted dealer at setup time and
distributes per-replica key material.  :class:`KeyRegistry` plays that
dealer: it derives, from a single seed, the conventional signing keys and
the ``(t, n)`` threshold key set for all ``n`` replicas, and exposes the
verification operations replicas use on each other's messages.
"""

from __future__ import annotations

from typing import Sequence

from repro.common.errors import CryptoError
from repro.common.types import ReplicaId
from repro.crypto.signatures import Signature, SigningKey, VerifyKey
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdPublicKey,
    ThresholdSignature,
    ThresholdSigner,
    threshold_keygen,
)


class KeyRegistry:
    """All key material for one cluster, derived deterministically.

    In a real deployment each replica would hold only its own secrets plus
    everyone's public keys; here the registry holds everything (it doubles
    as the verification oracle for the simulated signature scheme — see
    :mod:`repro.crypto.signatures`).
    """

    def __init__(self, num_replicas: int, threshold: int, seed: bytes | str = b"cluster") -> None:
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        if num_replicas < 1:
            raise CryptoError(f"need at least one replica, got {num_replicas}")
        self._n = num_replicas
        self._signing_keys: list[SigningKey] = [
            SigningKey.from_seed(seed + b":replica:" + bytes([0]) + i.to_bytes(4, "big"))
            for i in range(num_replicas)
        ]
        self._verify_keys: list[VerifyKey] = [key.verify_key() for key in self._signing_keys]
        self._tpk, self._tsigners = threshold_keygen(threshold, num_replicas, seed)

    @property
    def num_replicas(self) -> int:
        return self._n

    @property
    def threshold(self) -> int:
        return self._tpk.t

    @property
    def threshold_public_key(self) -> ThresholdPublicKey:
        return self._tpk

    def signing_key(self, replica: ReplicaId) -> SigningKey:
        self._check(replica)
        return self._signing_keys[replica]

    def verify_key(self, replica: ReplicaId) -> VerifyKey:
        self._check(replica)
        return self._verify_keys[replica]

    def threshold_signer(self, replica: ReplicaId) -> ThresholdSigner:
        self._check(replica)
        return self._tsigners[replica]

    def sign(self, replica: ReplicaId, message: bytes) -> Signature:
        return self.signing_key(replica).sign(message)

    def verify(self, replica: ReplicaId, message: bytes, signature: Signature) -> None:
        """Verify a conventional signature; raises on failure."""
        self.signing_key(replica).verify(message, signature)

    def is_valid(self, replica: ReplicaId, message: bytes, signature: Signature) -> bool:
        try:
            self.verify(replica, message, signature)
        except CryptoError:
            return False
        return True

    def verify_batch(
        self, items: Sequence[tuple[ReplicaId, bytes, Signature]]
    ) -> list[int]:
        """Verify many conventional signatures; indices that fail.

        Conventional signatures have no aggregate structure, so this is a
        loop — the batch API exists so callers amortise the per-call
        bookkeeping and so cost models can charge batched work.
        """
        return [
            index
            for index, (replica, message, signature) in enumerate(items)
            if not self.is_valid(replica, message, signature)
        ]

    def verify_partials_batch(
        self, message: bytes, shares: Sequence[PartialSignature]
    ) -> list[int]:
        """Batch-verify threshold shares over one message; bad indices."""
        return self._tpk.verify_shares(message, shares)

    def partial_sign(self, replica: ReplicaId, message: bytes) -> PartialSignature:
        return self.threshold_signer(replica).sign(message)

    def verify_partial(self, message: bytes, share: PartialSignature) -> None:
        self._tpk.verify_share(message, share)

    def combine(self, message: bytes, shares: list[PartialSignature]) -> ThresholdSignature:
        return self._tpk.combine(message, shares)

    def verify_threshold(self, message: bytes, signature: ThresholdSignature) -> None:
        self._tpk.verify(message, signature)

    def _check(self, replica: ReplicaId) -> None:
        if not 0 <= replica < self._n:
            raise CryptoError(f"unknown replica id {replica} (cluster size {self._n})")
