"""Quorum multi-signatures: a bundle of conventional signatures + bitmap.

The paper notes (Introduction, Section III) that the *most efficient
practical* instantiation of HotStuff's QCs is not a pairing-based threshold
signature but simply a group of ``n - f`` conventional signatures.  This
module provides that instantiation: a :class:`MultiSignature` is a set of
per-replica signatures over one message, represented with a signer bitmap,
and counts as ``len(signers)`` authenticators in the complexity accounting
(unlike a combined threshold signature, which counts as one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CryptoError, InvalidSignature
from repro.crypto.signatures import SIGNATURE_SIZE, Signature


@dataclass(frozen=True)
class MultiSignature:
    """An aggregate of conventional signatures over a single message."""

    signatures: tuple[tuple[int, Signature], ...]
    group_size: int

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for signer, _ in self.signatures:
            if not 0 <= signer < self.group_size:
                raise CryptoError(f"signer {signer} outside group of {self.group_size}")
            if signer in seen:
                raise CryptoError(f"duplicate signer {signer} in multi-signature")
            seen.add(signer)

    @property
    def signers(self) -> frozenset[int]:
        return frozenset(signer for signer, _ in self.signatures)

    @property
    def num_authenticators(self) -> int:
        """Complexity accounting: one authenticator per constituent signature."""
        return len(self.signatures)

    @property
    def wire_size(self) -> int:
        """Bytes on the wire: signatures plus an n-bit signer bitmap."""
        bitmap_bytes = (self.group_size + 7) // 8
        return len(self.signatures) * SIGNATURE_SIZE + bitmap_bytes


class MultiSigAccumulator:
    """Collects per-replica signatures until a quorum is reached.

    The caller is responsible for having verified each signature before
    adding it (or for verifying the finished bundle); the accumulator only
    deduplicates and counts.
    """

    def __init__(self, group_size: int, quorum: int) -> None:
        if not 1 <= quorum <= group_size:
            raise CryptoError(f"need 1 <= quorum <= n, got quorum={quorum}, n={group_size}")
        self._group_size = group_size
        self._quorum = quorum
        self._collected: dict[int, Signature] = {}

    def add(self, signer: int, signature: Signature) -> bool:
        """Record a signature; returns True once the quorum is reached.

        A second signature from the same signer is ignored (first wins),
        matching how BFT vote collectors treat equivocating duplicates.
        """
        if not 0 <= signer < self._group_size:
            raise CryptoError(f"signer {signer} outside group of {self._group_size}")
        self._collected.setdefault(signer, signature)
        return self.complete

    @property
    def count(self) -> int:
        return len(self._collected)

    @property
    def complete(self) -> bool:
        return len(self._collected) >= self._quorum

    def finish(self) -> MultiSignature:
        """Build the quorum bundle; raises if the quorum is not yet met."""
        if not self.complete:
            raise InvalidSignature(
                f"only {self.count} of {self._quorum} required signatures collected"
            )
        items = tuple(sorted(self._collected.items()))[: self._quorum]
        return MultiSignature(signatures=items, group_size=self._group_size)
