"""CPU cost accounting for cryptographic operations.

The discrete-event simulator charges simulated time for every crypto
operation a replica performs; this module centralises the accounting so
protocol code never needs to know the numbers.  Costs come from a
:class:`repro.common.config.MachineProfile` (defaults calibrated to a
16-core 2.3 GHz server: ~55 us ECDSA sign, ~160 us verify, ~1.4 ms
pairing), and the tracker also tallies operation *counts*, which the
Table I benchmark uses to report measured cryptographic-operation
complexity per view change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.common.config import MachineProfile


class CryptoOp(Enum):
    """The operation classes distinguished by the paper's complexity table."""

    SIGN = "sign"
    VERIFY = "verify"
    SHARE_SIGN = "share_sign"
    SHARE_VERIFY = "share_verify"
    COMBINE = "combine"
    PAIRING = "pairing"
    HASH = "hash"


@dataclass
class CryptoCostTracker:
    """Accumulates simulated CPU time and op counts for one replica."""

    machine: MachineProfile = field(default_factory=MachineProfile.paper_testbed)
    counts: dict[CryptoOp, int] = field(default_factory=dict)
    total_time: float = 0.0

    def _charge(self, op: CryptoOp, cost: float, repeat: int = 1) -> float:
        self.counts[op] = self.counts.get(op, 0) + repeat
        elapsed = cost * repeat
        self.total_time += elapsed
        return elapsed

    def sign(self) -> float:
        """Cost of one conventional signature."""
        return self._charge(CryptoOp.SIGN, self.machine.sign_cost)

    def verify(self, count: int = 1) -> float:
        """Cost of verifying ``count`` conventional signatures."""
        return self._charge(CryptoOp.VERIFY, self.machine.verify_cost, count)

    def share_sign(self) -> float:
        """Cost of producing one threshold-signature share."""
        return self._charge(CryptoOp.SHARE_SIGN, self.machine.share_sign_cost)

    def share_verify(self, count: int = 1) -> float:
        """Cost of verifying ``count`` shares."""
        return self._charge(CryptoOp.SHARE_VERIFY, self.machine.share_verify_cost, count)

    def combine(self, shares: int) -> float:
        """Cost of combining ``shares`` shares into a threshold signature."""
        return self._charge(CryptoOp.COMBINE, self.machine.combine_cost_per_share, shares)

    def pairing(self, count: int = 1) -> float:
        """Cost of ``count`` pairing evaluations (threshold-sig verification)."""
        return self._charge(CryptoOp.PAIRING, self.machine.pairing_cost, count)

    def hash_data(self, size_bytes: int) -> float:
        """Cost of hashing ``size_bytes`` of data."""
        self.counts[CryptoOp.HASH] = self.counts.get(CryptoOp.HASH, 0) + 1
        elapsed = size_bytes * self.machine.hash_cost_per_byte
        self.total_time += elapsed
        return elapsed

    def snapshot(self) -> dict[str, int]:
        """Copy of operation counts keyed by op name (for reports)."""
        return {op.value: count for op, count in sorted(self.counts.items(), key=lambda kv: kv[0].value)}

    def reset(self) -> None:
        self.counts.clear()
        self.total_time = 0.0
