"""A ``(t, n)`` threshold signature scheme over Shamir secret sharing.

The paper (Section III) requires a threshold scheme
``(tgen, tsign, tcombine, tverify)`` with robustness and unforgeability,
set to ``t = n - f``.  Efficient real-world instantiations use
pairing-based BLS; offline we build the same algebra without pairings:

* ``tgen`` samples a degree-``t-1`` polynomial ``P`` over the prime field
  ``GF(2^255 - 19)``; the master secret is ``s = P(0)`` and replica ``i``
  holds the share ``s_i = P(i + 1)``.
* ``tsign`` produces the partial signature ``sigma_i = s_i * H(m) mod p``
  (the field analogue of the BLS share ``H(m)^{s_i}``).
* ``tcombine`` Lagrange-interpolates any ``t`` valid shares at 0,
  producing ``sigma = s * H(m) mod p`` — the exact combining structure of
  threshold BLS, in the field instead of the exponent.
* ``tverify`` recomputes ``s * H(m)`` from the public key.

Security caveat (simulation): a real scheme hides ``s`` behind a discrete
log; here :class:`ThresholdPublicKey` carries the polynomial coefficients
in the clear, standing in for Feldman-VSS commitments ``g^{a_j}``.  That
keeps share verification (robustness) exact while giving up secrecy, which
a research artifact whose adversaries are its own test code does not need.
The interpolation math, quorum arithmetic, and failure modes (bad share
detection, insufficient shares) are all real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterable, Sequence

from repro.common.errors import CryptoError, InvalidShare, NotEnoughShares
from repro.crypto.hashing import hash_bytes

PRIME = 2**255 - 19
"""Field modulus; prime, so every nonzero element is invertible."""

THRESHOLD_SIG_SIZE = 32
"""Wire size of a combined threshold signature (one field element)."""

PARTIAL_SIG_SIZE = 48
"""Wire size of a partial signature (field element + signer index + tag)."""


@lru_cache(maxsize=8192)
def _message_point(message: bytes) -> int:
    """Hash ``message`` to a nonzero field element (the BLS ``H(m)``).

    Cached: on the hot path every vote share and the combined signature
    over one payload need the same point; a quorum of verifications then
    hashes once instead of ``n - f`` times.
    """
    point = int.from_bytes(hash_bytes(b"repro-tsig-h2f:" + message), "big") % PRIME
    return point or 1


def _batch_scalar(message: bytes, index: int, signer: int) -> int:
    """Per-share blinding scalar for batch verification.

    A plain sum of shares could pass with two bad shares whose errors
    cancel; weighting each share by an unpredictable nonzero scalar
    (standard small-exponent batch verification) makes cancellation as
    hard as forging a share.
    """
    material = hash_bytes(
        b"repro-tsig-batch:"
        + message
        + index.to_bytes(4, "big")
        + signer.to_bytes(4, "big")
    )
    return (int.from_bytes(material, "big") % (PRIME - 1)) + 1


def _mod_inverse(value: int) -> int:
    if value % PRIME == 0:
        raise CryptoError("cannot invert zero in the field")
    return pow(value, PRIME - 2, PRIME)


@dataclass(frozen=True)
class PartialSignature:
    """One replica's threshold-signature share over a message."""

    signer: int
    value: int

    def __post_init__(self) -> None:
        if self.signer < 0:
            raise CryptoError(f"signer index must be non-negative, got {self.signer}")
        if not 0 <= self.value < PRIME:
            raise CryptoError("partial signature value out of field range")

    def __repr__(self) -> str:
        return f"PartialSignature(signer={self.signer}, value={hex(self.value)[:10]}...)"


@dataclass(frozen=True)
class ThresholdSignature:
    """A combined ``(t, n)`` threshold signature (single field element)."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < PRIME:
            raise CryptoError("threshold signature value out of field range")

    def __repr__(self) -> str:
        return f"ThresholdSignature({hex(self.value)[:10]}...)"


@dataclass(frozen=True)
class ThresholdPublicKey:
    """System public key: threshold ``t``, group size ``n``, commitments.

    ``coefficients`` simulate Feldman-VSS commitments; see module docstring.
    """

    t: int
    n: int
    coefficients: tuple[int, ...]
    _share_cache: dict[int, int] = field(
        default_factory=dict, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        if not 1 <= self.t <= self.n:
            raise CryptoError(f"need 1 <= t <= n, got t={self.t}, n={self.n}")
        if len(self.coefficients) != self.t:
            raise CryptoError("public key must carry exactly t polynomial coefficients")

    def _share_of(self, signer: int) -> int:
        """Evaluate the sharing polynomial at ``signer + 1`` (Horner).

        Cached per signer: share verification needs this value on every
        vote, and the polynomial never changes after keygen.
        """
        cached = self._share_cache.get(signer)
        if cached is not None:
            return cached
        x = signer + 1
        acc = 0
        for coeff in reversed(self.coefficients):
            acc = (acc * x + coeff) % PRIME
        self._share_cache[signer] = acc
        return acc

    @property
    def master_secret(self) -> int:
        return self.coefficients[0]

    def verify_share(self, message: bytes, share: PartialSignature) -> None:
        """Robustness check: raise :class:`InvalidShare` on a bad share."""
        if share.signer >= self.n:
            raise InvalidShare(f"signer {share.signer} outside group of {self.n}")
        expected = (self._share_of(share.signer) * _message_point(message)) % PRIME
        if expected != share.value:
            raise InvalidShare(f"share from signer {share.signer} fails verification")

    def verify_shares(self, message: bytes, shares: Sequence[PartialSignature]) -> list[int]:
        """Batch robustness check: indices (input order) of invalid shares.

        Aggregate-then-verify: one blinded linear-combination check over
        the whole batch succeeds iff every share is valid; on mismatch the
        batch is bisected, so ``k`` bad shares among ``n`` cost
        ``O(k log n)`` aggregate checks instead of ``n`` full
        verifications.  Equivalent to calling :meth:`verify_share` on each
        share individually.
        """
        point = _message_point(message)
        bad: list[int] = []
        candidates: list[int] = []
        for index, share in enumerate(shares):
            if share.signer >= self.n:
                bad.append(index)
            else:
                candidates.append(index)

        def aggregate_ok(indices: list[int]) -> bool:
            lhs = 0
            rhs = 0
            for index in indices:
                share = shares[index]
                scalar = _batch_scalar(message, index, share.signer)
                lhs = (lhs + scalar * share.value) % PRIME
                rhs = (rhs + scalar * self._share_of(share.signer)) % PRIME
            return lhs == (rhs * point) % PRIME

        def bisect(indices: list[int]) -> None:
            if not indices or aggregate_ok(indices):
                return
            if len(indices) == 1:
                bad.append(indices[0])
                return
            mid = len(indices) // 2
            bisect(indices[:mid])
            bisect(indices[mid:])

        bisect(candidates)
        return sorted(bad)

    def combine(
        self, message: bytes, shares: Iterable[PartialSignature], *, verify: bool = True
    ) -> ThresholdSignature:
        """``tcombine``: interpolate ``t`` distinct valid shares at zero.

        Duplicate signers are rejected; with ``verify=True`` (default) each
        share is checked first so one Byzantine share cannot corrupt the
        output (the robustness property the paper requires).
        """
        unique: dict[int, PartialSignature] = {}
        for share in shares:
            if share.signer in unique:
                raise CryptoError(f"duplicate share from signer {share.signer}")
            unique[share.signer] = share
        if len(unique) < self.t:
            raise NotEnoughShares(f"need {self.t} shares, got {len(unique)}")
        chosen = sorted(unique.values(), key=lambda s: s.signer)[: self.t]
        if verify:
            for share in chosen:
                self.verify_share(message, share)
        xs = [share.signer + 1 for share in chosen]
        acc = 0
        for share, x_i in zip(chosen, xs):
            numerator = 1
            denominator = 1
            for x_j in xs:
                if x_j == x_i:
                    continue
                numerator = (numerator * (-x_j)) % PRIME
                denominator = (denominator * (x_i - x_j)) % PRIME
            lagrange = (numerator * _mod_inverse(denominator)) % PRIME
            acc = (acc + share.value * lagrange) % PRIME
        return ThresholdSignature(acc)

    def verify(self, message: bytes, signature: ThresholdSignature) -> None:
        """``tverify``: raise :class:`CryptoError` unless valid."""
        expected = (self.master_secret * _message_point(message)) % PRIME
        if expected != signature.value:
            raise CryptoError("threshold signature verification failed")

    def is_valid(self, message: bytes, signature: ThresholdSignature) -> bool:
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(message, signature)
        except CryptoError:
            return False
        return True


@dataclass(frozen=True)
class ThresholdSigner:
    """Replica-held secret share plus the signing operation (``tsign``)."""

    signer: int
    share: int
    public_key: ThresholdPublicKey

    def sign(self, message: bytes) -> PartialSignature:
        """``tsign``: produce this replica's share over ``message``."""
        return PartialSignature(self.signer, (self.share * _message_point(message)) % PRIME)


def threshold_keygen(t: int, n: int, seed: bytes | str = b"") -> tuple[ThresholdPublicKey, list[ThresholdSigner]]:
    """``tgen``: deterministically generate a ``(t, n)`` key set from ``seed``.

    Returns the system public key and one :class:`ThresholdSigner` per
    replica.  Determinism (coefficients derived by hashing the seed) keeps
    simulations reproducible; pass a fresh random seed for distinct runs.
    """
    if not 1 <= t <= n:
        raise CryptoError(f"need 1 <= t <= n, got t={t}, n={n}")
    if isinstance(seed, str):
        seed = seed.encode("utf-8")
    coefficients: list[int] = []
    for index in range(t):
        material = hash_bytes(b"repro-tsig-coeff:" + seed + index.to_bytes(4, "big"))
        coefficients.append(int.from_bytes(material, "big") % PRIME)
    if coefficients[0] == 0:
        coefficients[0] = 1
    public_key = ThresholdPublicKey(t=t, n=n, coefficients=tuple(coefficients))
    signers = [
        ThresholdSigner(signer=i, share=public_key._share_of(i), public_key=public_key)
        for i in range(n)
    ]
    return public_key, signers


def combine_or_raise(
    public_key: ThresholdPublicKey, message: bytes, shares: Sequence[PartialSignature]
) -> ThresholdSignature:
    """Combine shares, skipping invalid ones; raise if < t remain valid.

    This is the leader-side behaviour the paper assumes: a Byzantine
    replica may submit a garbage share, and the combiner must still
    succeed whenever ``t`` honest shares are present.
    """
    valid: list[PartialSignature] = []
    for share in shares:
        try:
            public_key.verify_share(message, share)
        except InvalidShare:
            continue
        valid.append(share)
    if len(valid) < public_key.t:
        raise NotEnoughShares(
            f"only {len(valid)} of {len(shares)} shares valid; need {public_key.t}"
        )
    return public_key.combine(message, valid, verify=False)
