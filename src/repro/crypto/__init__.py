"""Cryptographic substrate.

The paper instantiates HotStuff/Marlin either with ECDSA signatures or with
pairing-based ``(t, n)`` threshold signatures.  Offline and without native
crypto libraries, we provide:

* :mod:`repro.crypto.hashing` — SHA-256 digests over the canonical encoding;
* :mod:`repro.crypto.signatures` — deterministic HMAC-based signatures with
  per-replica keys (simulated ECDSA: same API, same sizes, unforgeable
  without the signer's secret);
* :mod:`repro.crypto.threshold` — a real ``(t, n)`` threshold scheme built
  on Shamir secret sharing over a prime field (shares combine by Lagrange
  interpolation exactly as BLS threshold signatures do in the exponent);
* :mod:`repro.crypto.multisig` — quorum multi-signatures (a signature
  bundle with a signer bitmap), the "group of n signatures" instantiation
  the paper says real deployments prefer;
* :mod:`repro.crypto.cost_model` — the CPU cost accounting used by the
  discrete-event simulator to charge sign/verify/pairing time.

These primitives are simulations adequate for a research artifact: they are
deterministic, sized realistically, and unforgeable by any party that does
not hold the relevant secret material, but they are NOT secure against a
real-world adversary.  Do not reuse outside this repository.
"""

from repro.crypto.hashing import Digest, digest_of, hash_bytes
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, SigningKey, VerifyKey
from repro.crypto.threshold import (
    PartialSignature,
    ThresholdPublicKey,
    ThresholdSignature,
    ThresholdSigner,
    threshold_keygen,
)

__all__ = [
    "Digest",
    "KeyRegistry",
    "PartialSignature",
    "Signature",
    "SigningKey",
    "ThresholdPublicKey",
    "ThresholdSignature",
    "ThresholdSigner",
    "VerifyKey",
    "digest_of",
    "hash_bytes",
    "threshold_keygen",
]
