"""Collision-resistant hashing over canonical encodings.

The paper assumes a collision-resistant hash ``h`` mapping arbitrary
messages to fixed-length outputs; block parent links are such digests.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.encoding import encode_into

DIGEST_SIZE = 32

Digest = bytes
"""A 32-byte SHA-256 digest."""


def hash_bytes(data: bytes) -> Digest:
    """SHA-256 of raw bytes."""
    return hashlib.sha256(data).digest()


def digest_of(value: Any, _sha256=hashlib.sha256) -> Digest:
    """SHA-256 of the canonical encoding of ``value``.

    Because the canonical encoding is deterministic, two replicas
    computing ``digest_of`` over equal values always agree.  The
    encoding is hashed straight out of the working buffer
    (:func:`repro.common.encoding.encode_into`) without ever
    materialising an immutable copy.
    """
    buf = bytearray()
    encode_into(value, buf)
    return _sha256(buf).digest()


def short_hex(digest: Digest, length: int = 8) -> str:
    """First ``length`` hex characters of a digest, for logs and repr()s."""
    return digest.hex()[:length]
