"""Collision-resistant hashing over canonical encodings.

The paper assumes a collision-resistant hash ``h`` mapping arbitrary
messages to fixed-length outputs; block parent links are such digests.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.common.encoding import encode

DIGEST_SIZE = 32

Digest = bytes
"""A 32-byte SHA-256 digest."""


def hash_bytes(data: bytes) -> Digest:
    """SHA-256 of raw bytes."""
    return hashlib.sha256(data).digest()


def digest_of(value: Any) -> Digest:
    """SHA-256 of the canonical encoding of ``value``.

    Because :func:`repro.common.encoding.encode` is deterministic, two
    replicas computing ``digest_of`` over equal values always agree.
    """
    return hash_bytes(encode(value))


def short_hex(digest: Digest, length: int = 8) -> str:
    """First ``length`` hex characters of a digest, for logs and repr()s."""
    return digest.hex()[:length]
