"""Simulated conventional signatures (ECDSA stand-in).

A :class:`SigningKey` is 32 bytes of secret material; the matching
:class:`VerifyKey` is its SHA-256 commitment.  A signature over message
``m`` is ``HMAC-SHA256(secret, m)`` plus the verify-key commitment, padded
to 64 bytes so wire sizes match real ECDSA.  Verification recomputes the
HMAC — which requires the secret — so the scheme is *simulated*: in this
library verification happens through a :class:`repro.crypto.keys.KeyRegistry`
that holds every replica's secret, standing in for public-key verification.

The simulation preserves what the protocols need:

* only the holder of ``SigningKey(i)`` can produce a signature that
  verifies under ``VerifyKey(i)`` (HMAC unforgeability);
* signatures bind signer, message, and nothing else;
* sizes and the sign/verify API mirror ECDSA, so the simulator's cost
  model (`MachineProfile.sign_cost` / ``verify_cost``) applies directly.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.common.errors import CryptoError, InvalidSignature

SIGNATURE_SIZE = 64
_MAC_SIZE = 32


@dataclass(frozen=True)
class Signature:
    """A 64-byte signature: 32-byte HMAC || 32-byte key commitment."""

    data: bytes

    def __post_init__(self) -> None:
        if len(self.data) != SIGNATURE_SIZE:
            raise CryptoError(f"signature must be {SIGNATURE_SIZE} bytes, got {len(self.data)}")

    @property
    def mac(self) -> bytes:
        return self.data[:_MAC_SIZE]

    @property
    def key_commitment(self) -> bytes:
        return self.data[_MAC_SIZE:]

    def __repr__(self) -> str:
        return f"Signature({self.data.hex()[:12]}...)"


@dataclass(frozen=True)
class VerifyKey:
    """Public commitment to a signing key."""

    commitment: bytes

    def __post_init__(self) -> None:
        if len(self.commitment) != 32:
            raise CryptoError("verify key commitment must be 32 bytes")

    def matches(self, signature: Signature) -> bool:
        """Check that ``signature`` claims to come from this key."""
        return hmac.compare_digest(signature.key_commitment, self.commitment)

    def __repr__(self) -> str:
        return f"VerifyKey({self.commitment.hex()[:12]}...)"


@dataclass(frozen=True)
class SigningKey:
    """Secret signing key; derive with :meth:`generate` or from a seed."""

    secret: bytes

    def __post_init__(self) -> None:
        if len(self.secret) != 32:
            raise CryptoError("signing key secret must be 32 bytes")

    @classmethod
    def from_seed(cls, seed: bytes | str) -> "SigningKey":
        """Deterministically derive a key from arbitrary seed material."""
        if isinstance(seed, str):
            seed = seed.encode("utf-8")
        return cls(hashlib.sha256(b"repro-signing-key:" + seed).digest())

    def verify_key(self) -> VerifyKey:
        return VerifyKey(hashlib.sha256(b"repro-verify-key:" + self.secret).digest())

    def sign(self, message: bytes) -> Signature:
        """Sign ``message``; deterministic, like RFC 6979 ECDSA."""
        mac = hmac.new(self.secret, message, hashlib.sha256).digest()
        return Signature(mac + self.verify_key().commitment)

    def verify(self, message: bytes, signature: Signature) -> None:
        """Verify ``signature`` over ``message``; raises on failure.

        Only the key holder (or the registry) can run this — see module
        docstring for why that is an acceptable simulation.
        """
        if not self.verify_key().matches(signature):
            raise InvalidSignature("signature was made under a different key")
        expected = hmac.new(self.secret, message, hashlib.sha256).digest()
        if not hmac.compare_digest(expected, signature.mac):
            raise InvalidSignature("signature does not match message")
