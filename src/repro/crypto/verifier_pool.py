"""Verifier pools: where batch signature verification actually runs.

The protocol layer hands a verification closure to a
:class:`VerifierPool` rather than calling the crypto service directly.
Two implementations:

* :class:`InlineVerifierPool` — runs the closure synchronously on the
  caller's (simulated) CPU.  The discrete-event simulator always uses
  this one: verification stays on the deterministic event path and the
  cost model, not wall time, provides the timing.
* :class:`ThreadVerifierPool` — dispatches chunks to a
  ``concurrent.futures`` thread pool.  The asyncio runtime can opt into
  it so a leader verifying a quorum of shares does the work off the
  protocol thread, mirroring the paper's 16-core verification pools.

Both expose the same blocking ``map`` contract, so replicas stay sans-io:
results come back in submission order regardless of execution order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Sequence


class VerifierPool(ABC):
    """Execution backend for batch verification closures."""

    #: "inline" or "threads"; read by diagnostics and tests.
    kind: str

    @abstractmethod
    def map(self, fn: Callable[[Any], Any], chunks: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every chunk; results in submission order."""

    def run(self, fn: Callable[[Any], Any], chunk: Any) -> Any:
        """Convenience: verify a single chunk."""
        return self.map(fn, [chunk])[0]

    def close(self) -> None:
        """Release worker resources (no-op for inline pools)."""


class InlineVerifierPool(VerifierPool):
    """Synchronous execution on the calling thread (DES-safe)."""

    kind = "inline"

    def map(self, fn: Callable[[Any], Any], chunks: Sequence[Any]) -> list[Any]:
        return [fn(chunk) for chunk in chunks]


class ThreadVerifierPool(VerifierPool):
    """``concurrent.futures`` worker pool for the asyncio runtime."""

    kind = "threads"

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="verifier"
        )

    def map(self, fn: Callable[[Any], Any], chunks: Sequence[Any]) -> list[Any]:
        return list(self._executor.map(fn, chunks))

    def close(self) -> None:
        self._executor.shutdown(wait=False, cancel_futures=True)


def make_verifier_pool(kind: str, workers: int = 4) -> VerifierPool:
    """Build a pool by name: ``"inline"`` or ``"threads"``."""
    if kind == "inline":
        return InlineVerifierPool()
    if kind == "threads":
        return ThreadVerifierPool(workers)
    raise ValueError(f"unknown verifier pool kind {kind!r}")
