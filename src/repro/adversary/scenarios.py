"""Named adversary scenarios.

Each scenario bundles an :class:`~repro.adversary.behaviors.AdversaryConfig`
with its *expectation*: which protocols (if any) it should break, and
whether the safety checker may also hold the run to a progress
obligation.  Scenarios are what campaigns iterate over and what
``Scenario(adversary="...")`` accepts by name.

Expectations are deliberately conservative.  With at most ``f``
misbehaving replicas no quorum-intersecting protocol can be forced into
conflicting commits, so the scenarios' negative controls assert *zero
violations* on marlin / hotstuff / fast-hotstuff.  The positive control
is the ``forking-attack`` scenario against the deliberately unsafe
``insecure`` two-phase protocol, whose missing unlock rule the attack
converts into a permanent wedge — caught by the checker's progress rule
(and by the locked replica's refusal evidence), not by luck.

Progress is only *checked* where a scenario declares it
(``check_progress=True``): gray failures, churn and partitions can
legitimately slow a correct protocol below any fixed threshold, and a
checker that cried wolf there would drown the real signal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.adversary.behaviors import (
    AdversaryConfig,
    BehaviorSpec,
    CrashEvent,
    PartitionWindow,
)


@dataclass(frozen=True)
class AdversaryScenario:
    """A named adversary plus the verdict expectation it is run under.

    ``expect_violation`` lists the protocols this scenario is *supposed*
    to break; on every other protocol a reported violation is a false
    positive and fails the campaign.  ``min_replicas`` guards scenarios
    whose role assignments assume a minimum cluster size.
    """

    name: str
    summary: str
    adversary: AdversaryConfig
    expect_violation: tuple[str, ...] = ()
    check_progress: bool = False
    min_replicas: int = 4

    def expects_violation(self, protocol: str) -> bool:
        return protocol in self.expect_violation


def _spec(kind: str, replica: int, **params: object) -> BehaviorSpec:
    return BehaviorSpec.make(kind, replica, **params)


ADVERSARY_SCENARIOS: dict[str, AdversaryScenario] = {
    scenario.name: scenario
    for scenario in (
        AdversaryScenario(
            name="forking-attack",
            summary=(
                "Fast-HotStuff-style forking attack: hidden commit at the "
                "trigger height, then stale-QC replay with a lagged victim "
                "view change — wedges two-phase protocols without an unlock "
                "rule"
            ),
            adversary=AdversaryConfig(
                behaviors=(
                    _spec("forking-leader", 0, trigger_height=3),
                    _spec("vc-lag", 3, lag=0.25),
                ),
            ),
            expect_violation=("insecure",),
            check_progress=True,
        ),
        AdversaryScenario(
            name="equivocating-leader",
            summary=(
                "the view-1 leader sends conflicting sibling blocks to the "
                "two halves of the cluster at every height"
            ),
            adversary=AdversaryConfig(behaviors=(_spec("equivocate", 0),)),
        ),
        AdversaryScenario(
            name="equivocation-under-partition",
            summary=(
                "an equivocating leader combined with a transient partition "
                "that isolates one honest replica mid-run"
            ),
            adversary=AdversaryConfig(
                behaviors=(_spec("equivocate", 0),),
                partitions=(PartitionWindow(start=2.0, duration=1.5, group=(2,)),),
            ),
        ),
        AdversaryScenario(
            name="gray-failure",
            summary=(
                "one replica limps: seeded probabilistic drops and delays "
                "on every outbound message"
            ),
            adversary=AdversaryConfig(
                behaviors=(
                    _spec("gray", 1, drop_p=0.15, slow_p=0.35, slow_delay=0.3),
                ),
            ),
        ),
        AdversaryScenario(
            name="crash-churn",
            summary=(
                "crash-recover churn: one replica goes dark over two "
                "windows, then the leader crashes for good late in the run"
            ),
            adversary=AdversaryConfig(
                behaviors=(
                    _spec("silence-windows", 2, windows=((2.0, 3.0), (5.0, 6.0))),
                ),
                crashes=(CrashEvent(replica=0, when=7.0),),
            ),
        ),
        AdversaryScenario(
            name="qc-suppression",
            summary=(
                "targeted QC suppression through a forced view change: one "
                "replica withholds votes and claims only the genesis QC"
            ),
            adversary=AdversaryConfig(
                behaviors=(
                    _spec("withhold-votes", 3),
                    _spec("qc-hide", 3),
                ),
                # Isolate the leader briefly so view changes actually
                # consume the suppressed replica's view-change claims.
                partitions=(PartitionWindow(start=3.0, duration=1.0, group=(0,)),),
            ),
        ),
        AdversaryScenario(
            name="amnesia",
            summary=(
                "an amnesiac replica: honest until mid-run, then restored "
                "from a stale backup that remembers no lock — exercised by "
                "a forced view change"
            ),
            adversary=AdversaryConfig(
                behaviors=(_spec("amnesia", 2, after=3.0),),
                partitions=(PartitionWindow(start=4.0, duration=1.0, group=(0,)),),
            ),
        ),
    )
}


def get_scenario(name: str) -> AdversaryScenario:
    scenario = ADVERSARY_SCENARIOS.get(name)
    if scenario is None:
        known = ", ".join(sorted(ADVERSARY_SCENARIOS))
        raise ValueError(f"unknown adversary scenario {name!r} (known: {known})")
    return scenario


def list_scenarios() -> dict[str, str]:
    """Name -> one-line summary for every registered scenario."""
    return {name: s.summary for name, s in sorted(ADVERSARY_SCENARIOS.items())}
