"""Composable, seed-deterministic Byzantine behaviours.

An adversary is *declared* as a frozen :class:`AdversaryConfig` — which
replicas misbehave and how, which network partitions open and close,
which replicas crash — and *installed* onto a live
:class:`~repro.harness.des_runtime.DESCluster` with
:func:`apply_adversary`.  Declaration and installation are split so the
same config object can flow through result caches, worker processes and
scenario registries as plain data.

Behaviours are named kinds in a registry (:func:`behavior_kinds`); each
kind is a factory that builds a wire :class:`~repro.harness.failures.Strategy`
for one replica.  Randomised kinds draw from a private
:func:`~repro.harness.failures.strategy_rng` stream keyed on
``(seed, kind, replica)``, so every adversarial run replays
bit-identically from its seed regardless of how many other behaviours
run beside it.

The one protocol-aware behaviour lives here too: :class:`ForkingLeader`,
the Fast-HotStuff-style forking attack (Rondelet–Kilbourn's attack shape
against two-phase HotStuff without the unlock rule).  The Byzantine
leader commits the cluster to a block through a hidden quorum, then
forever replays a *stale* prepareQC in its view-change messages so that
new leaders assemble snapshots in which the locked block never appears.
Against the deliberately unsafe ``insecure`` two-phase protocol the
cluster wedges permanently — one honest replica stays locked above every
proposal — while Marlin (rank rules + Case R2), three-phase HotStuff
(precommit evidence) and Fast-HotStuff (aggregate unlock) all recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.consensus.block import genesis_block
from repro.consensus.messages import Justify, PhaseMsg, ViewChangeMsg, VoteMsg
from repro.consensus.qc import Phase, QuorumCertificate, genesis_qc
from repro.harness.failures import (
    ComposedStrategy,
    Delayer,
    Equivocator,
    GrayFailure,
    QCHider,
    ReplyForger,
    SilenceWindows,
    SilentAfter,
    Strategy,
    VCDelayer,
    VoteWithholder,
    strategy_rng,
)

Params = Mapping[str, Any]
Send = Callable[[int, Any], None]


# ---------------------------------------------------------------------------
# Declarations


@dataclass(frozen=True)
class BehaviorSpec:
    """One behaviour on one replica, as plain data.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so the spec
    is hashable and canonically encodable for result-cache keys; use
    :meth:`make` to build one from keyword arguments.
    """

    kind: str
    replica: int
    params: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(cls, kind: str, replica: int, **params: Any) -> "BehaviorSpec":
        return cls(kind=kind, replica=replica, params=tuple(sorted(params.items())))

    @property
    def params_dict(self) -> dict[str, Any]:
        return dict(self.params)


@dataclass(frozen=True)
class PartitionWindow:
    """Cut ``group`` off from the rest of the cluster for a time window."""

    start: float
    duration: float
    group: tuple[int, ...]


@dataclass(frozen=True)
class CrashEvent:
    """Permanently crash ``replica`` at ``when`` (DES ``crash_at``)."""

    replica: int
    when: float


@dataclass(frozen=True)
class AdversaryConfig:
    """A complete adversary: behaviours, partitions, crashes, seed salt.

    ``seed_salt`` is folded into every behaviour's RNG stream key, so two
    scenarios sharing a run seed still draw independent randomness.
    """

    behaviors: tuple[BehaviorSpec, ...] = ()
    partitions: tuple[PartitionWindow, ...] = ()
    crashes: tuple[CrashEvent, ...] = ()
    seed_salt: int = 0

    def faulty_replicas(self) -> tuple[int, ...]:
        """Replica ids under any behaviour (crashes are counted apart)."""
        return tuple(sorted({spec.replica for spec in self.behaviors}))


# ---------------------------------------------------------------------------
# The forking attack


class ForkingLeader(Strategy):
    """The two-phase forking attack, driven entirely over the wire.

    As leader, at its trigger height the Byzantine replica:

    1. hides the trigger proposal from one honest replica (``hidden``)
       while recording the proposal's *justify* — the last prepareQC the
       hidden replica ever saw — as its ``stale_qc``;
    2. forms the prepareQC for the trigger block normally (votes still
       reach it), but delivers the resulting COMMIT only to one honest
       replica (``locked``), which locks — and, in a two-phase protocol,
       commits — the trigger block;
    3. from then on answers every view change with a *forged* claim of
       the stale QC, signed with its own (legitimate) key, and sends
       nothing else: no proposals, no votes to others, no QCs at or
       above the trigger height.

    Combined with a view-change lag on ``locked`` (see the
    ``forking-attack`` scenario), each new leader assembles its quorum
    snapshot from {byzantine, the two honest replicas that never locked}
    — a snapshot in which the locked block does not appear.  A protocol
    without a sound unlock/rank rule proposes a fork of the stale QC
    forever; the locked replica refuses each one and the cluster wedges.
    Traffic strictly below the trigger height still flows, so the chain
    up to ``trigger - 1`` commits everywhere: the wedge is unmistakable
    against the run's own healthy prefix.
    """

    def __init__(
        self,
        cluster: Any,
        replica_id: int,
        trigger_height: int = 3,
        locked: int | None = None,
        hidden: int | None = None,
    ) -> None:
        self.cluster = cluster
        self.id = replica_id
        n = cluster.experiment.cluster.num_replicas
        self.locked = (replica_id - 1) % n if locked is None else locked
        self.hidden = (replica_id - 2) % n if hidden is None else hidden
        self.trigger = trigger_height
        self.stale_qc: QuorumCertificate | None = None
        self.trigger_view: int | None = None
        self.attacking = False

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if not self.attacking:
            if (
                isinstance(payload, PhaseMsg)
                and payload.phase == Phase.PREPARE
                and payload.block is not None
                and payload.block.height >= self.trigger
            ):
                self.attacking = True
                self.trigger = payload.block.height
                self.trigger_view = payload.view
                self.stale_qc = payload.justify.qc
            else:
                send(dst, payload)
                return
        self._attack(dst, payload, send)

    def _attack(self, dst: int, payload: Any, send: Send) -> None:
        if isinstance(payload, VoteMsg):
            # Own votes still count (the hidden quorum includes us);
            # votes for anyone else's proposals are withheld.
            if dst == self.id:
                send(dst, payload)
            return
        if isinstance(payload, ViewChangeMsg):
            send(dst, self._forged_view_change(payload.view))
            return
        if isinstance(payload, PhaseMsg):
            if (
                payload.phase == Phase.PREPARE
                and payload.block is not None
                and payload.block.height == self.trigger
                and payload.view == self.trigger_view
            ):
                # The trigger proposal itself: everyone but `hidden`.
                if dst != self.hidden:
                    send(dst, payload)
                return
            if self._referenced_height(payload) < self.trigger:
                # Let the pre-fork chain finish committing everywhere.
                send(dst, payload)
                return
            if (
                payload.phase == Phase.COMMIT
                and payload.justify.qc.block.height == self.trigger
            ):
                # The poisoned COMMIT: only the victim locks the fork.
                if dst in (self.locked, self.id):
                    send(dst, payload)
                return
            return
        # Pre-prepares, sync traffic, later proposals: silence.

    def _referenced_height(self, msg: PhaseMsg) -> int:
        height = msg.justify.qc.block.height
        if msg.block is not None:
            height = max(height, msg.block.height)
        return height

    def _forged_view_change(self, view: int) -> ViewChangeMsg:
        assert self.stale_qc is not None
        stale = self.stale_qc
        return ViewChangeMsg(
            view=view,
            last_voted=stale.block,
            justify=Justify(stale),
            share=self.cluster.crypto.sign_vote(
                self.id, Phase.PREPARE, view, stale.block
            ),
        )


class AmnesiacVC(Strategy):
    """Forget the lock after ``after``: an ABC-style amnesiac replica.

    Before ``after`` the replica reports honestly; afterwards every
    view-change message claims only the genesis QC — the knowledge loss
    of a node restored from a stale backup.  Safe protocols tolerate it
    (the snapshot quorum still intersects an honest majority that does
    remember); the auditor records nothing because forgetting is not
    equivocating.
    """

    def __init__(self, genesis_justify: Justify, after: float) -> None:
        self.genesis_justify = genesis_justify
        self.after = after

    def outbound(self, now: float, dst: int, payload: Any, send: Send) -> None:
        if isinstance(payload, ViewChangeMsg) and now >= self.after:
            send(
                dst,
                ViewChangeMsg(
                    view=payload.view,
                    last_voted=None,
                    justify=self.genesis_justify,
                    share=payload.share,
                ),
            )
        else:
            send(dst, payload)


# ---------------------------------------------------------------------------
# Registry


@dataclass(frozen=True)
class BehaviorKind:
    """A registered behaviour: name, one-line summary, strategy factory."""

    name: str
    summary: str
    build: Callable[[Any, int, Any, Params], Strategy] = field(compare=False)


def _genesis_justify() -> Justify:
    return Justify(genesis_qc(genesis_block()))


def _build_silent_after(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return SilentAfter(after=float(p.get("after", 2.0)))


def _build_withhold(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return VoteWithholder()


def _build_delay(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return Delayer(
        cluster,
        delay=float(p.get("delay", 0.1)),
        jitter=float(p.get("jitter", 0.0)),
        rng=rng,
    )


def _build_equivocate(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return Equivocator(cluster.experiment.cluster.num_replicas)


def _build_qc_hide(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return QCHider(_genesis_justify())


def _build_amnesia(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return AmnesiacVC(_genesis_justify(), after=float(p.get("after", 2.0)))


def _build_reply_forge(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return ReplyForger()


def _build_gray(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return GrayFailure(
        cluster,
        rng,
        drop_p=float(p.get("drop_p", 0.1)),
        slow_p=float(p.get("slow_p", 0.3)),
        slow_delay=float(p.get("slow_delay", 0.2)),
    )


def _build_silence_windows(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    windows = tuple(
        (float(start), float(end)) for start, end in p.get("windows", ((2.0, 4.0),))
    )
    return SilenceWindows(windows)


def _build_vc_lag(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return VCDelayer(cluster, delay=float(p.get("lag", 0.25)))


def _build_forking_leader(cluster: Any, replica: int, rng: Any, p: Params) -> Strategy:
    return ForkingLeader(
        cluster,
        replica,
        trigger_height=int(p.get("trigger_height", 3)),
        locked=p.get("locked"),
        hidden=p.get("hidden"),
    )


BEHAVIOR_KINDS: dict[str, BehaviorKind] = {
    kind.name: kind
    for kind in (
        BehaviorKind(
            "silent-after",
            "stop sending anything after a set time (undetectable crash)",
            _build_silent_after,
        ),
        BehaviorKind(
            "withhold-votes",
            "suppress all votes (liveness attack on the quorum)",
            _build_withhold,
        ),
        BehaviorKind(
            "delay",
            "hold every outbound message for a fixed time plus seeded jitter",
            _build_delay,
        ),
        BehaviorKind(
            "equivocate",
            "as leader, send conflicting sibling blocks to half the cluster",
            _build_equivocate,
        ),
        BehaviorKind(
            "qc-hide",
            "claim only the genesis QC in every view change",
            _build_qc_hide,
        ),
        BehaviorKind(
            "amnesia",
            "report honestly until a cutoff, then forget the lock (stale backup)",
            _build_amnesia,
        ),
        BehaviorKind(
            "reply-forge",
            "corrupt the result digest of every client reply",
            _build_reply_forge,
        ),
        BehaviorKind(
            "gray",
            "probabilistically drop or slow messages (limping node)",
            _build_gray,
        ),
        BehaviorKind(
            "silence-windows",
            "go dark over scheduled intervals (crash-recover churn)",
            _build_silence_windows,
        ),
        BehaviorKind(
            "vc-lag",
            "delay only view-change messages (snapshot steering)",
            _build_vc_lag,
        ),
        BehaviorKind(
            "forking-leader",
            "two-phase forking attack: hidden commit, then stale-QC replay",
            _build_forking_leader,
        ),
    )
}


def behavior_kinds() -> dict[str, str]:
    """Name -> one-line summary for every registered behaviour."""
    return {name: kind.summary for name, kind in sorted(BEHAVIOR_KINDS.items())}


# ---------------------------------------------------------------------------
# Installation


def apply_adversary(
    cluster: Any, config: AdversaryConfig, seed: int | None = None
) -> None:
    """Install ``config`` onto a built (not yet started) DES cluster.

    Behaviours targeting the same replica compose in declaration order
    (the first spec sees the raw wire).  Each randomised behaviour gets
    its own :func:`~repro.harness.failures.strategy_rng` stream keyed on
    ``(seed + seed_salt, kind, replica)``; ``seed`` defaults to the
    experiment's seed so a run is fully determined by its config.
    """
    from repro.harness.failures import make_byzantine

    if seed is None:
        seed = cluster.experiment.seed
    seed = seed + config.seed_salt

    num_replicas = cluster.experiment.cluster.num_replicas
    per_replica: dict[int, list[Strategy]] = {}
    for spec in config.behaviors:
        kind = BEHAVIOR_KINDS.get(spec.kind)
        if kind is None:
            known = ", ".join(sorted(BEHAVIOR_KINDS))
            raise ValueError(f"unknown behavior kind {spec.kind!r} (known: {known})")
        if not 0 <= spec.replica < num_replicas:
            raise ValueError(
                f"behavior {spec.kind!r} targets replica {spec.replica}, "
                f"but only voting replicas 0..{num_replicas - 1} can misbehave"
            )
        rng = strategy_rng(seed, spec.kind, spec.replica)
        strategy = kind.build(cluster, spec.replica, rng, spec.params_dict)
        per_replica.setdefault(spec.replica, []).append(strategy)

    for replica_id, strategies in per_replica.items():
        if len(strategies) == 1:
            make_byzantine(cluster, replica_id, strategies[0])
        else:
            make_byzantine(cluster, replica_id, ComposedStrategy(strategies))

    for window in config.partitions:
        group = [r for r in window.group if 0 <= r < num_replicas]
        rest = [r for r in range(num_replicas) if r not in group]

        def cut(group: Iterable[int] = tuple(group), rest: Iterable[int] = tuple(rest)) -> None:
            cluster.network.partition(list(group), list(rest))

        cluster.sim.schedule_at(window.start, cut)
        cluster.sim.schedule_at(window.start + window.duration, cluster.network.heal_all)

    for crash in config.crashes:
        cluster.crash_at(crash.replica, crash.when)
