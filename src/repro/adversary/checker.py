"""History-based safety checking, independent of protocol assertions.

The :class:`SafetyChecker` judges a run from its *observable record* —
the committed history each replica reports, the operations each replica
executed, and the replies clients actually received — rather than from
any invariant the protocol code asserts about itself.  A protocol that
lies to itself cannot lie to the checker: the rules below are exactly
the properties state-machine replication promises its clients.

Checked properties:

* **agreement** — no two replicas ever commit different blocks at the
  same height (``conflicting-commit``);
* **prefix consistency** — each replica's own history is a dense,
  parent-linked chain: heights ``1, 2, 3, ...`` with each block
  extending the previous digest (``broken-chain``);
* **exactly-once execution** — no replica executes the same client
  operation twice (``duplicate-execution``);
* **reply linearizability** — clients can never assemble two
  contradictory reply certificates for one operation: no ``f + 1``
  replicas report result digest *A* while another ``f + 1`` report *B*
  (``conflicting-reply-certificates``).  With at most ``f`` liars this
  can only happen if the replicated state machine itself forked;
* **progress** (opt-in per scenario) — the cluster keeps committing;
  a run that commits nothing, or goes silent for long enough that every
  correct protocol would have rotated past the faulty leaders, is a
  wedge (``progress-stall``).

The checker never raises: it returns a :class:`SafetyReport` carrying
structured violations (with evidence) plus *observations* — byzantine
behaviour the online auditor witnessed (equivocation, reply forgery)
that a correct protocol is expected to tolerate, reported for forensics
but never counted as a violation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro.obs.audit import SEV_SAFETY

HistoryEntry = tuple[int, bytes, bytes | None]
"""(height, digest, parent_digest) — one committed block in one history."""


@dataclass
class SafetyReport:
    """The checker's verdict on one run."""

    violations: list[dict[str, Any]] = field(default_factory=list)
    observations: list[dict[str, Any]] = field(default_factory=list)
    checks_run: list[str] = field(default_factory=list)
    progress: dict[str, Any] | None = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def kinds(self) -> list[str]:
        return sorted({v["kind"] for v in self.violations})

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "checks_run": list(self.checks_run),
            "violations": list(self.violations),
            "observations": list(self.observations),
            "progress": self.progress,
        }


def _violation(kind: str, detail: str, **evidence: Any) -> dict[str, Any]:
    return {"kind": kind, "severity": "safety", "detail": detail, "evidence": evidence}


class SafetyChecker:
    """Judge histories, executions, replies and progress for one cluster.

    ``num_replicas`` is the voting membership; ``f`` defaults to the
    paper's ``(n - 1) // 3``.  Learner histories may be included in the
    agreement/prefix checks — a learner committing a block no voter
    committed is every bit as much a safety violation.
    """

    def __init__(self, num_replicas: int, f: int | None = None) -> None:
        self.num_replicas = num_replicas
        self.f = (num_replicas - 1) // 3 if f is None else f

    # ----------------------------------------------------------- histories

    def check_agreement(
        self, histories: dict[int, list[HistoryEntry]]
    ) -> list[dict[str, Any]]:
        """No two replicas commit different digests at the same height."""
        violations: list[dict[str, Any]] = []
        by_height: dict[int, dict[bytes, list[int]]] = {}
        for replica, history in histories.items():
            for height, digest, _parent in history:
                by_height.setdefault(height, {}).setdefault(digest, []).append(replica)
        for height in sorted(by_height):
            committed = by_height[height]
            if len(committed) > 1:
                views = {
                    digest.hex()[:12]: sorted(replicas)
                    for digest, replicas in committed.items()
                }
                violations.append(
                    _violation(
                        "conflicting-commit",
                        f"height {height} committed with {len(committed)} distinct "
                        f"digests across replicas",
                        height=height,
                        digests=views,
                    )
                )
        return violations

    def check_prefix(
        self, histories: dict[int, list[HistoryEntry]]
    ) -> list[dict[str, Any]]:
        """Each history is a dense parent-linked chain from height 1."""
        violations: list[dict[str, Any]] = []
        for replica in sorted(histories):
            history = histories[replica]
            prev_digest: bytes | None = None
            for index, (height, digest, parent) in enumerate(history):
                expected_height = index + 1
                if height != expected_height:
                    violations.append(
                        _violation(
                            "broken-chain",
                            f"replica {replica} committed height {height} at "
                            f"position {index} (expected {expected_height})",
                            replica=replica,
                            height=height,
                            position=index,
                        )
                    )
                    break
                if index > 0 and parent is not None and parent != prev_digest:
                    violations.append(
                        _violation(
                            "broken-chain",
                            f"replica {replica}'s block at height {height} does "
                            f"not extend its own previous commit",
                            replica=replica,
                            height=height,
                            parent=parent.hex()[:12],
                            previous=(prev_digest or b"").hex()[:12],
                        )
                    )
                    break
                prev_digest = digest
        return violations

    # ---------------------------------------------------------- executions

    def check_exactly_once(
        self, executions: dict[int, list[tuple[int, int]]]
    ) -> list[dict[str, Any]]:
        """No replica executes one (client, sequence) operation twice."""
        violations: list[dict[str, Any]] = []
        for replica in sorted(executions):
            counts = Counter(executions[replica])
            duplicates = {key: c for key, c in counts.items() if c > 1}
            if duplicates:
                sample = sorted(duplicates)[:5]
                violations.append(
                    _violation(
                        "duplicate-execution",
                        f"replica {replica} executed {len(duplicates)} operations "
                        f"more than once",
                        replica=replica,
                        sample=[list(key) for key in sample],
                    )
                )
        return violations

    # -------------------------------------------------------------- replies

    def check_replies(
        self, replies: list[tuple[int, int, int, bytes]]
    ) -> list[dict[str, Any]]:
        """No operation admits two contradictory reply certificates.

        ``replies`` holds ``(client, sequence, replica, result_digest)``
        records.  A violation needs *two* certifiable digests — each
        vouched for by at least ``f + 1`` distinct replicas — because
        with at most ``f`` faulty replicas a single certificate is still
        guaranteed to contain one honest witness.
        """
        violations: list[dict[str, Any]] = []
        by_op: dict[tuple[int, int], dict[bytes, set[int]]] = {}
        for client, sequence, replica, digest in replies:
            by_op.setdefault((client, sequence), {}).setdefault(digest, set()).add(
                replica
            )
        certificate = self.f + 1
        for (client, sequence), reported in sorted(by_op.items()):
            certifiable = [
                digest
                for digest, replicas in reported.items()
                if len(replicas) >= certificate
            ]
            if len(certifiable) > 1:
                violations.append(
                    _violation(
                        "conflicting-reply-certificates",
                        f"operation ({client}, {sequence}) has "
                        f"{len(certifiable)} certifiable result digests",
                        client=client,
                        sequence=sequence,
                        digests={
                            digest.hex()[:12]: sorted(reported[digest])
                            for digest in certifiable
                        },
                    )
                )
        return violations

    # ------------------------------------------------------------- progress

    def check_progress(
        self,
        committed_heights: dict[int, int],
        last_commit_time: float,
        end_time: float,
        stall_after: float,
    ) -> tuple[list[dict[str, Any]], dict[str, Any]]:
        """The cluster must keep committing (opt-in, scenario-gated)."""
        best = max(committed_heights.values(), default=0)
        silent_for = end_time - last_commit_time
        stalled = best == 0 or silent_for > stall_after
        summary = {
            "max_committed_height": best,
            "last_commit_time": last_commit_time,
            "silent_for": silent_for,
            "stall_after": stall_after,
            "stalled": stalled,
        }
        if not stalled:
            return [], summary
        detail = (
            "no block ever committed"
            if best == 0
            else f"no commit for the final {silent_for:.2f}s "
            f"(threshold {stall_after:.2f}s, best height {best})"
        )
        return (
            [
                _violation(
                    "progress-stall",
                    detail,
                    committed_heights={str(r): h for r, h in sorted(committed_heights.items())},
                    last_commit_time=last_commit_time,
                )
            ],
            summary,
        )

    # ------------------------------------------------------------- plumbing

    def check_history(
        self,
        histories: dict[int, list[HistoryEntry]],
        executions: dict[int, list[tuple[int, int]]] | None = None,
        replies: list[tuple[int, int, int, bytes]] | None = None,
    ) -> SafetyReport:
        """Run every history-level rule over plain data (no cluster)."""
        report = SafetyReport()
        report.checks_run = ["agreement", "prefix"]
        report.violations.extend(self.check_agreement(histories))
        report.violations.extend(self.check_prefix(histories))
        if executions is not None:
            report.checks_run.append("exactly-once")
            report.violations.extend(self.check_exactly_once(executions))
        if replies is not None:
            report.checks_run.append("replies")
            report.violations.extend(self.check_replies(replies))
        return report

    def check_cluster(
        self,
        cluster: Any,
        observability: Any = None,
        check_progress: bool = False,
        end_time: float | None = None,
        stall_after: float | None = None,
    ) -> SafetyReport:
        """Judge a finished DES run: histories + auditor + progress.

        Histories and executions are read straight from each replica's
        ledger (learners included).  If ``observability`` carries an
        online auditor, its safety-severity findings merge into the
        violations (with their flight-recorder evidence windows) and its
        byzantine/protocol findings become observations.
        """
        histories: dict[int, list[HistoryEntry]] = {}
        executions: dict[int, list[tuple[int, int]]] = {}
        expected_ops: dict[int, int] = {}
        for replica in cluster.replicas:
            entries: list[HistoryEntry] = []
            executed: list[tuple[int, int]] = []
            seen: set[tuple[int, int]] = set()
            weight = 0
            for digest in replica.ledger.committed_digests():
                block = replica.tree.get(digest)
                if block is None or block.height == 0:
                    continue  # genesis is committed by fiat, not by the run
                entries.append((block.height, digest, replica.tree.parent_digest(block)))
                for op in block.operations:
                    key = op.key()
                    if key in seen:
                        # A view change re-proposed an in-flight op and the
                        # abandoned block later committed too; the ledger
                        # executes the key once, so this is not a duplicate
                        # *execution* — the counter check below holds the
                        # ledger to exactly that promise.
                        continue
                    seen.add(key)
                    executed.append(key)
                    weight += op.weight
            histories[replica.id] = entries
            executions[replica.id] = executed
            expected_ops[replica.id] = weight

        report = self.check_history(histories, executions=executions)
        report.checks_run.append("execution-effects")
        for replica in cluster.replicas:
            applied = replica.ledger.ops_committed
            expected = expected_ops[replica.id]
            if applied != expected:
                kind = (
                    "duplicate-execution" if applied > expected else "lost-execution"
                )
                report.violations.append(
                    _violation(
                        kind,
                        f"replica {replica.id} applied {applied} op-weight but its "
                        f"committed history holds {expected} distinct op-weight",
                        replica=replica.id,
                        applied=applied,
                        expected=expected,
                    )
                )

        auditor = getattr(observability, "auditor", None) if observability else None
        if auditor is not None:
            report.checks_run.append("online-audit")
            for violation in auditor.violations:
                entry = violation.to_dict()
                if violation.severity == SEV_SAFETY:
                    report.violations.append(entry)
                else:
                    report.observations.append(entry)

        if check_progress:
            report.checks_run.append("progress")
            base_timeout = cluster.experiment.cluster.base_timeout
            threshold = (
                max(6.0 * base_timeout, 2.0) if stall_after is None else stall_after
            )
            end = cluster.sim.now if end_time is None else end_time
            committed = {r.id: r.ledger.committed_height for r in cluster.replicas}
            last = max(
                (when for _r, _h, _d, when in cluster.auditor.commits), default=0.0
            )
            progress_violations, summary = self.check_progress(
                committed, last, end, threshold
            )
            report.violations.extend(progress_violations)
            report.progress = summary
        return report
