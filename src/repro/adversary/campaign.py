"""Adversarial campaign runner: scenario × protocol × seed grids.

A campaign runs every cell of a grid — one adversary scenario against
one protocol under one seed — through the DES with full audit
observability, judges each run with the
:class:`~repro.adversary.checker.SafetyChecker`, and reduces the grid to
a machine-readable verdict matrix:

* ``safe`` — no violation found, none expected;
* ``violation-detected`` — the scenario broke the protocol it was
  supposed to break, with evidence;
* ``violation-missed`` — the scenario should have broken this protocol
  but the checker saw nothing (a regression in the attack or checker);
* ``unexpected-violation`` — a protocol believed safe was flagged (a
  false positive, or a real bug — either way a campaign failure).

Cells fan out across worker processes through the harness's
:class:`~repro.harness.parallel.SweepExecutor` (``kind="adversary_cell"``
tasks), so campaigns share its result cache and its byte-identity
guarantee: the verdict matrix is identical regardless of ``jobs``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.common.encoding import encode

#: The grid a campaign defaults to: every safe protocol plus the
#: deliberately unsafe two-phase control the forking attack must catch.
DEFAULT_PROTOCOLS = ("marlin", "hotstuff", "fast-hotstuff", "insecure")
DEFAULT_SEEDS = (1, 2)

VERDICT_SAFE = "safe"
VERDICT_DETECTED = "violation-detected"
VERDICT_MISSED = "violation-missed"
VERDICT_UNEXPECTED = "unexpected-violation"


def _eval_cell(task: dict[str, Any]) -> dict[str, Any]:
    """Worker entry point: run one campaign cell, return plain data.

    Top-level and import-light so the ``spawn`` pool can pickle it by
    reference.  The cell runs with flight + audit observability (no
    tracer, no metrics — the blackbox shape), applies the scenario's
    adversary to a freshly built cluster, drives a closed-loop workload,
    and returns the checker's full report plus a commit-trace hash for
    the cross-``jobs`` byte-identity guarantee.
    """
    from repro.adversary.behaviors import apply_adversary
    from repro.adversary.checker import SafetyChecker
    from repro.adversary.scenarios import get_scenario
    from repro.common.config import ClusterConfig, ExperimentConfig, QuorumConfig
    from repro.harness.des_runtime import DESCluster
    from repro.harness.workload import ClosedLoopClients
    from repro.obs.observer import RunObservability

    scenario = get_scenario(task["scenario"])
    protocol = task["protocol"]
    seed = int(task["seed"])
    n = int(task.get("n", 4))
    sim_time = float(task.get("sim_time", 12.0))
    crypto = task.get("crypto", "null")
    learners = int(task.get("learners", 0))

    if n < scenario.min_replicas:
        raise ValueError(
            f"scenario {scenario.name!r} needs >= {scenario.min_replicas} "
            f"replicas, got {n}"
        )

    experiment = ExperimentConfig(
        cluster=ClusterConfig(
            num_replicas=n,
            batch_size=400,
            base_timeout=0.5,
            quorums=QuorumConfig(learners=learners) if learners else None,
        ),
        seed=seed,
    )
    observability = RunObservability(
        trace=False, flight=True, audit=True, metrics=False
    )
    cluster = DESCluster(
        experiment, protocol=protocol, crypto_mode=crypto, observability=observability
    )
    apply_adversary(cluster, scenario.adversary, seed=seed)
    pool = ClosedLoopClients(cluster, num_clients=24, token_weight=1, target="all")
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    cluster.run(until=sim_time)

    checker = SafetyChecker(num_replicas=n)
    report = checker.check_cluster(
        cluster,
        observability,
        check_progress=scenario.check_progress,
        end_time=sim_time,
    )
    trace_sha = hashlib.sha256(encode(cluster.commit_trace())).hexdigest()
    return {
        "scenario": scenario.name,
        "protocol": protocol,
        "seed": seed,
        "committed_height": max(
            (r.ledger.committed_height for r in cluster.replicas), default=0
        ),
        "max_view": max((r.cview for r in cluster.replicas), default=0),
        "report": report.to_dict(),
        "trace_sha256": trace_sha,
    }


@dataclass(frozen=True)
class CellResult:
    """One judged grid cell."""

    scenario: str
    protocol: str
    seed: int
    verdict: str
    expected_violation: bool
    violation_kinds: tuple[str, ...]
    committed_height: int
    max_view: int
    observations: int
    trace_sha256: str
    report: dict[str, Any] = field(compare=False)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "protocol": self.protocol,
            "seed": self.seed,
            "verdict": self.verdict,
            "expected_violation": self.expected_violation,
            "violation_kinds": list(self.violation_kinds),
            "committed_height": self.committed_height,
            "max_view": self.max_view,
            "observations": self.observations,
            "trace_sha256": self.trace_sha256,
        }


@dataclass
class CampaignResult:
    """The verdict matrix for one campaign."""

    cells: list[CellResult]

    @property
    def ok(self) -> bool:
        return not (self.missed() or self.unexpected())

    def missed(self) -> list[CellResult]:
        return [c for c in self.cells if c.verdict == VERDICT_MISSED]

    def unexpected(self) -> list[CellResult]:
        return [c for c in self.cells if c.verdict == VERDICT_UNEXPECTED]

    def detected(self) -> list[CellResult]:
        return [c for c in self.cells if c.verdict == VERDICT_DETECTED]

    def to_dict(self, include_reports: bool = False) -> dict[str, Any]:
        cells = []
        for cell in self.cells:
            entry = cell.to_dict()
            if include_reports:
                entry["report"] = cell.report
            cells.append(entry)
        return {
            "ok": self.ok,
            "cells": cells,
            "summary": {
                "total": len(self.cells),
                "safe": sum(1 for c in self.cells if c.verdict == VERDICT_SAFE),
                "violation-detected": len(self.detected()),
                "violation-missed": len(self.missed()),
                "unexpected-violation": len(self.unexpected()),
            },
        }

    def render(self) -> str:
        """The matrix as a fixed-width table, one row per cell."""
        lines = [
            f"{'scenario':28} {'protocol':14} {'seed':>4}  {'verdict':22} "
            f"{'height':>6} {'view':>4}  evidence"
        ]
        for cell in self.cells:
            kinds = ",".join(cell.violation_kinds) or "-"
            lines.append(
                f"{cell.scenario:28} {cell.protocol:14} {cell.seed:>4}  "
                f"{cell.verdict:22} {cell.committed_height:>6} "
                f"{cell.max_view:>4}  {kinds}"
            )
        status = "OK" if self.ok else "FAILED"
        lines.append(
            f"campaign {status}: {len(self.cells)} cells, "
            f"{len(self.detected())} detected, {len(self.missed())} missed, "
            f"{len(self.unexpected())} unexpected"
        )
        return "\n".join(lines)


def _judge(cell: dict[str, Any], expected: bool) -> CellResult:
    report = cell["report"]
    found = not report["ok"]
    if found:
        verdict = VERDICT_DETECTED if expected else VERDICT_UNEXPECTED
    else:
        verdict = VERDICT_MISSED if expected else VERDICT_SAFE
    kinds = tuple(sorted({v["kind"] for v in report["violations"]}))
    return CellResult(
        scenario=cell["scenario"],
        protocol=cell["protocol"],
        seed=cell["seed"],
        verdict=verdict,
        expected_violation=expected,
        violation_kinds=kinds,
        committed_height=cell["committed_height"],
        max_view=cell["max_view"],
        observations=len(report["observations"]),
        trace_sha256=cell["trace_sha256"],
        report=report,
    )


def run_campaign(
    scenarios: Sequence[str] | None = None,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    seeds: Sequence[int] = DEFAULT_SEEDS,
    n: int = 4,
    sim_time: float = 12.0,
    crypto: str = "null",
    learners: int = 0,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir: str | None = None,
) -> CampaignResult:
    """Run the scenario × protocol × seed grid and judge every cell.

    Cells are submitted in grid order (scenario, then protocol, then
    seed) and merged back in submission order, so the resulting matrix
    is deterministic and byte-identical across ``jobs`` settings.
    """
    from repro.adversary.scenarios import ADVERSARY_SCENARIOS, get_scenario
    from repro.harness.parallel import ResultCache, SweepExecutor

    names = list(scenarios) if scenarios is not None else sorted(ADVERSARY_SCENARIOS)
    grid = [(get_scenario(name), protocol, seed)
            for name in names for protocol in protocols for seed in seeds]
    tasks = [
        {
            "kind": "adversary_cell",
            "scenario": scenario.name,
            "protocol": protocol,
            "seed": int(seed),
            "n": n,
            "sim_time": sim_time,
            "crypto": crypto,
            "learners": learners,
        }
        for scenario, protocol, seed in grid
    ]
    cache = ResultCache(cache_dir) if use_cache else None
    with SweepExecutor(jobs=jobs, cache=cache) as executor:
        raw = executor.run_tasks(tasks)
    cells = [
        _judge(value, expected=scenario.expects_violation(protocol))
        for value, (scenario, protocol, _seed) in zip(raw, grid)
    ]
    return CampaignResult(cells=cells)
