"""Byzantine adversary subsystem: behaviours, scenarios, checker, campaigns.

This package turns the repository's ad-hoc fault strategies into a
declarative adversary model:

* :mod:`repro.adversary.behaviors` — a registry of composable,
  seed-deterministic Byzantine behaviours declared through a frozen
  :class:`~repro.adversary.behaviors.AdversaryConfig` and installed onto
  a live DES cluster with
  :func:`~repro.adversary.behaviors.apply_adversary`;
* :mod:`repro.adversary.scenarios` — a named library of attack scenarios
  (equivocating leaders, gray failures, partitions, churn, and a
  Fast-HotStuff-style forking attack) that plugs straight into
  :class:`repro.api.Scenario`;
* :mod:`repro.adversary.checker` — a history-based safety checker that
  verifies agreement, prefix consistency, exactly-once execution and
  reply linearizability from committed histories and client-observed
  replies, independent of any protocol's own assertions;
* :mod:`repro.adversary.campaign` — a campaign runner that executes a
  scenario × protocol × seed grid across worker processes and emits a
  machine-readable verdict matrix (``safe`` / ``violation-detected`` /
  ``violation-missed``).
"""

from repro.adversary.behaviors import (
    AdversaryConfig,
    BehaviorSpec,
    CrashEvent,
    PartitionWindow,
    apply_adversary,
    behavior_kinds,
)
from repro.adversary.campaign import CampaignResult, CellResult, run_campaign
from repro.adversary.checker import SafetyChecker, SafetyReport
from repro.adversary.scenarios import (
    ADVERSARY_SCENARIOS,
    AdversaryScenario,
    get_scenario,
    list_scenarios,
)

__all__ = [
    "ADVERSARY_SCENARIOS",
    "AdversaryConfig",
    "AdversaryScenario",
    "BehaviorSpec",
    "CampaignResult",
    "CellResult",
    "CrashEvent",
    "PartitionWindow",
    "SafetyChecker",
    "SafetyReport",
    "apply_adversary",
    "behavior_kinds",
    "get_scenario",
    "list_scenarios",
    "run_campaign",
]
