"""Command-line interface: run paper experiments from a shell.

Usage (installed, or ``python -m repro``):

    python -m repro curve      --protocol marlin --f 1
    python -m repro point      --protocol hotstuff --f 2 --clients 16384
    python -m repro peak       --f 1
    python -m repro viewchange --f 1 --unhappy
    python -m repro rotate     --crashed 3
    python -m repro table1     --f 2
    python -m repro fuzz       --seed 7 --protocol chained-marlin
    python -m repro trace      --protocol marlin --n 4 --out trace.json
    python -m repro metrics    --protocol marlin --f 1 --json metrics.json
    python -m repro client     --protocol marlin --clients 64 --reads leader-lease
    python -m repro shard      --shards 4 --clients 16384
    python -m repro latency    --protocol marlin --clients 512 --json waterfall.json

Every command prints a small report; exit code 0 means the run completed
and passed the safety audit.  ``--log-level debug`` surfaces the
replicas' structured logs on stderr.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.report import format_table, ktx, ms
from repro.obs.log import LOG_LEVELS, configure_cli_logging, get_logger

log = get_logger("repro.cli")


def _cmd_point(args: argparse.Namespace) -> None:
    from repro.api import PipelineConfig, Scenario, load_point

    observability = None
    if args.metrics_out:
        from repro.api import RunObservability

        observability = RunObservability(trace=False)
    pipeline = PipelineConfig() if args.batching else None
    result = load_point(
        Scenario(
            protocol=args.protocol, f=args.f, clients=args.clients,
            sim_time=args.sim_time, warmup=args.warmup, pipeline=pipeline,
        ),
        observability=observability,
    )
    print(f"{args.protocol} f={args.f}: {result.as_row()}")
    if result.phase_latency:
        for phase, stats in sorted(result.phase_latency.items()):
            print(
                f"  {phase:<12} mean={stats['mean'] * 1000:7.2f} ms  "
                f"p50={stats['p50'] * 1000:7.2f} ms  "
                f"p99={stats['p99'] * 1000:7.2f} ms  (n={int(stats['count'])})"
            )
    if observability is not None:
        observability.write_json(args.metrics_out)
        log.info("wrote %s", args.metrics_out)


def _cmd_curve(args: argparse.Namespace) -> None:
    from repro.api import Scenario, peak_at_latency_cap, throughput_curve

    curve = throughput_curve(
        Scenario(protocol=args.protocol, f=args.f, sim_time=args.sim_time),
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    rows = [
        [str(p.clients), ktx(p.throughput_tps), ms(p.mean_latency), ms(p.p99_latency)]
        for p in curve
    ]
    print(
        format_table(
            f"throughput vs latency ({args.protocol}, f={args.f})",
            ["clients", "ktx/s", "lat ms", "p99 ms"],
            rows,
        )
    )
    print(f"\npeak @ latency cap: {ktx(peak_at_latency_cap(curve))} ktx/s")
    if args.csv:
        import csv

        with open(args.csv, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["protocol", "f", "clients", "throughput_tps", "mean_latency_s", "p99_latency_s"]
            )
            for p in curve:
                writer.writerow(
                    [args.protocol, args.f, p.clients, f"{p.throughput_tps:.1f}",
                     f"{p.mean_latency:.6f}", f"{p.p99_latency:.6f}"]
                )
        log.info("wrote %s", args.csv)


def _cmd_peak(args: argparse.Namespace) -> None:
    from repro.api import Scenario, peak_throughput

    rows = []
    peaks: dict[str, float] = {}
    for protocol in ("marlin", "hotstuff"):
        peak, _ = peak_throughput(
            Scenario(protocol=protocol, f=args.f, sim_time=args.sim_time),
            jobs=args.jobs,
            use_cache=not args.no_cache,
            strategy=args.strategy,
        )
        peaks[protocol] = peak
        rows.append([protocol, ktx(peak)])
    print(format_table(f"peak throughput (f={args.f})", ["protocol", "ktx/s"], rows))
    if args.save:
        from repro.harness.results import ResultStore

        store = ResultStore(meta={"experiment": "peak", "f": str(args.f)})
        store.record_many(f"peak.f{args.f}", peaks)
        store.save(args.save)
        log.info("wrote %s", args.save)


def _cmd_compare(args: argparse.Namespace) -> None:
    from repro.harness.results import ResultStore, compare

    before = ResultStore.load(args.before)
    after = ResultStore.load(args.after)
    deltas = compare(before, after, tolerance=args.tolerance)
    if not deltas:
        print(f"no changes beyond {args.tolerance * 100:.0f}% tolerance "
              f"({len(after)} metrics compared)")
        return
    for delta in deltas:
        print(delta.render())
    raise SystemExit(1)


def _cmd_viewchange(args: argparse.Namespace) -> None:
    from repro.api import view_change_latency

    result = view_change_latency(args.protocol, args.f, force_unhappy=args.unhappy)
    print(
        f"{args.protocol} ({result.path}) f={args.f}: "
        f"view change latency {ms(result.latency)} ms "
        f"(views crossed: {result.views_crossed})"
    )


def _cmd_rotate(args: argparse.Namespace) -> None:
    from repro.api import rotating_leader_throughput

    rows = []
    for protocol in ("marlin", "hotstuff"):
        point = rotating_leader_throughput(
            protocol, f=args.f, crashed=args.crashed, clients=args.clients,
            sim_time=args.sim_time,
        )
        rows.append([protocol, ktx(point.throughput_tps), ms(point.mean_latency)])
    print(
        format_table(
            f"rotating leaders, {args.crashed} crashed (f={args.f})",
            ["protocol", "ktx/s", "lat ms"],
            rows,
        )
    )


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.api import measure_view_change_cost
    from repro.harness.analytical import TABLE_I

    rows = [
        [row.protocol, row.vc_communication, row.vc_authenticators, row.vc_phases]
        for row in TABLE_I
    ]
    print(format_table("Table I (analytical)", ["protocol", "vc comm", "vc auth", "phases"], rows))
    measured = []
    for label, protocol, unhappy in (
        ("marlin-happy", "marlin", False),
        ("marlin-unhappy", "marlin", True),
        ("hotstuff", "hotstuff", False),
    ):
        cost = measure_view_change_cost(protocol, args.f, force_unhappy=unhappy)
        measured.append(
            [label, str(cost.n), str(cost.messages), str(cost.authenticators), str(cost.phases_to_commit)]
        )
    print(
        format_table(
            f"measured view-change cost (f={args.f})",
            ["variant", "n", "messages", "authenticators", "phases"],
            measured,
        )
    )


def _cmd_trace(args: argparse.Namespace) -> None:
    from repro.api import Scenario, traced_run

    f = max(1, (args.n - 1) // 3)
    cluster, obs = traced_run(
        Scenario(protocol=args.protocol, f=f, seed=args.seed),
        sim_time=args.sim_time,
        crash_leader_at=args.crash_at,
        force_unhappy=args.unhappy,
    )
    obs.write_chrome_trace(args.out)
    committed = [
        s for s in obs.tracer.spans_named("block") if s.meta.get("committed")
    ]
    n = cluster.experiment.cluster.num_replicas
    print(
        f"{args.protocol} n={n} f={f} seed={args.seed}: "
        f"{len(obs.tracer.spans)} spans, {len(obs.tracer.instants)} instants, "
        f"{len(committed)} committed block spans"
    )
    for phase, stats in sorted(obs.phase_latency_summary().items()):
        print(
            f"  {phase:<12} mean={stats['mean'] * 1000:7.2f} ms  "
            f"p99={stats['p99'] * 1000:7.2f} ms  (n={int(stats['count'])})"
        )
    print(f"wrote {args.out} (open it at https://ui.perfetto.dev)")
    if args.text:
        print(obs.tracer.render_text(limit=args.limit))


def _cmd_metrics(args: argparse.Namespace) -> None:
    from repro.api import RunObservability, Scenario, load_point

    obs = RunObservability(trace=False)
    result = load_point(
        Scenario(
            protocol=args.protocol, f=args.f, clients=args.clients,
            sim_time=args.sim_time, warmup=args.warmup,
        ),
        observability=obs,
    )
    print(f"{args.protocol} f={args.f}: {result.as_row()}")
    cluster_view = obs.registry.aggregate(drop_labels=("replica",)).snapshot()
    rows = []
    for name, series_list in sorted(cluster_view["counters"].items()):
        total = sum(series["value"] for series in series_list)
        rows.append([name, f"{int(total)}"])
    print(format_table("cluster counters", ["metric", "total"], rows))
    if result.phase_latency:
        phase_rows = [
            [phase, f"{s['mean'] * 1000:.2f}", f"{s['p50'] * 1000:.2f}",
             f"{s['p99'] * 1000:.2f}", str(int(s["count"]))]
            for phase, s in sorted(result.phase_latency.items())
        ]
        print(
            format_table(
                "phase latency", ["phase", "mean ms", "p50 ms", "p99 ms", "n"], phase_rows
            )
        )
    if args.json:
        obs.write_json(args.json)
        log.info("wrote %s", args.json)
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(obs.registry.render_prometheus())
        log.info("wrote %s", args.prom)


def _cmd_client(args: argparse.Namespace) -> None:
    from repro.api import ClientConfig
    from repro.harness.des_runtime import DESCluster
    from repro.harness.scenarios import _experiment
    from repro.harness.workload import ClosedLoopClients

    config = ClientConfig(
        mode="real",
        reads=args.reads,
        retry_timeout=args.retry_timeout,
        max_inflight=args.max_inflight,
    )
    base_timeout = 2.0 if args.crash_leader_at is not None else 120.0
    experiment = _experiment(
        args.f, seed=args.seed, base_timeout=base_timeout, max_timeout=240.0
    )
    cluster = DESCluster(experiment, protocol=args.protocol, crypto_mode="null")
    pool = ClosedLoopClients(
        cluster,
        num_clients=args.clients,
        token_weight=1,
        target="leader",
        warmup=args.warmup,
        mode="real",
        client_config=config,
    )
    cluster.start()
    cluster.sim.schedule(0.01, pool.start)
    if args.crash_leader_at is not None:
        cluster.crash_at(0, args.crash_leader_at)  # replica 0 leads view 1
    cluster.run(until=args.sim_time)
    cluster.assert_safety()
    summary = pool.summary()
    duration = args.sim_time - args.warmup
    print(
        f"{args.protocol} f={args.f}: {args.clients} protocol clients, "
        f"reads={args.reads}"
        + (f", leader crashed at {args.crash_leader_at:.1f}s" if args.crash_leader_at else "")
    )
    rows = [
        ["throughput", f"{pool.throughput.throughput(duration=duration):.1f} tx/s"],
        ["mean latency", f"{ms(summary['mean_latency'])} ms"],
        ["p99 latency", f"{ms(summary['p99_latency'])} ms"],
        ["certified", str(pool.certified)],
        ["retransmits", str(pool.retransmits)],
        ["replays (dedup)", str(pool.replays)],
        ["shed (admission)", str(pool.shed)],
        ["reply mismatches", str(pool.reply_mismatches)],
        ["blocks committed", str(max(r.stats["blocks_committed"] for r in cluster.replicas))],
    ]
    print(format_table("client path", ["metric", "value"], rows))


def _cmd_audit(args: argparse.Namespace) -> None:
    from repro.harness.audit import SWEEP_SIZES, audited_run, complexity_sweep

    report = audited_run(
        protocol=args.protocol,
        n=args.n,
        sim_time=args.sim_time,
        seed=args.seed,
        byzantine=args.byzantine,
        dump=args.dump,
        dump_dir=args.dump_dir,
    )
    print(report.render())
    sweep = None
    if not args.skip_sweep:
        sizes = sorted(set([s for s in SWEEP_SIZES if s <= args.n] + [args.n]))
        sweep = complexity_sweep(
            args.protocol, sizes=sizes, seed=args.seed, max_slope=args.max_slope
        )
        print()
        print(sweep.render())
    if args.json:
        import json

        artifact = {"run": report.to_dict()}
        if sweep is not None:
            artifact["sweep"] = sweep.to_dict()
        with open(args.json, "w") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
        log.info("wrote %s", args.json)
    if args.byzantine != "none":
        # Fault-injection mode: success means the auditor caught the attack.
        if report.audit["ok"]:
            print(f"audit FAILED to detect the injected {args.byzantine}")
            raise SystemExit(1)
        print(f"auditor detected the injected {args.byzantine}")
        return
    failed = not report.ok or (sweep is not None and not sweep.linear)
    if failed:
        raise SystemExit(1)


def _cmd_adversary(args: argparse.Namespace) -> None:
    """``repro adversary``: scenario × protocol × seed campaign grid.

    Exit 0 iff every cell lands where its scenario expects it: violations
    detected exactly where declared, zero false positives elsewhere.
    ``--list`` enumerates the scenario and behaviour registries instead.
    """
    from repro.adversary import behavior_kinds, list_scenarios, run_campaign

    if args.list:
        print("scenarios:")
        for name, summary in list_scenarios().items():
            print(f"  {name:30} {summary}")
        print()
        print("behaviors:")
        for name, summary in behavior_kinds().items():
            print(f"  {name:30} {summary}")
        return

    result = run_campaign(
        scenarios=args.scenario or None,
        protocols=tuple(args.protocols),
        seeds=tuple(args.seeds),
        n=args.n,
        sim_time=args.sim_time,
        crypto=args.crypto,
        learners=args.learners,
        jobs=args.jobs,
        use_cache=args.cache,
    )
    print(result.render())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(
                result.to_dict(include_reports=args.reports),
                fh, indent=2, sort_keys=True,
            )
        log.info("wrote %s", args.json)
    if not result.ok:
        raise SystemExit(1)


def _cmd_shard_parallel(args: argparse.Namespace) -> None:
    """``repro shard --jobs N``: same run, groups across N processes.

    Byte-identical readouts to the serial path (same table, aggregate
    line, metrics JSON and audit verdict) — diffing the two outputs is
    the cheapest end-to-end determinism check, and CI does exactly that.
    """
    from repro.des.parallel import ParallelShardedCluster
    from repro.harness.metrics import LatencyRecorder
    from repro.harness.scenarios import _experiment, _token_weight
    from repro.shard import ShardConfig

    shard = ShardConfig(shards=args.shards, router=args.router, router_seed=args.seed)
    experiment = _experiment(
        args.f, seed=args.seed, base_timeout=120.0, max_timeout=240.0
    )
    engine = ParallelShardedCluster(
        experiment,
        shard=shard,
        protocol=args.protocol,
        crypto_mode="null",
        audit=True,
        metrics=bool(args.metrics_out),
        jobs=args.jobs,
    )
    engine.run_workload(
        num_clients=args.clients,
        sim_time=args.sim_time,
        token_weight=_token_weight(args.clients),
        warmup=args.warmup,
    )
    duration = args.sim_time - args.warmup
    rows = []
    for result, tps in zip(engine.group_results, engine.per_shard_tps(duration)):
        latency = LatencyRecorder(window_start=args.warmup)
        latency.samples.extend(result.latency_samples)
        report = result.audit_report or {"ok": True, "violations": []}
        rows.append(
            [
                str(result.shard_id),
                str(result.num_clients),
                ktx(tps),
                ms(latency.mean() if result.latency_samples else 0.0),
                str(result.misrouted_ops),
                "OK" if report["ok"] else f"{len(report['violations'])} violations",
            ]
        )
    merged = engine.merged_latency(window_start=args.warmup)
    print(
        format_table(
            f"sharded run ({args.protocol}, G={args.shards}, f={args.f} per group)",
            ["shard", "clients", "ktx/s", "lat ms", "misrouted", "audit"],
            rows,
        )
    )
    print(
        f"\naggregate: {ktx(sum(engine.per_shard_tps(duration)))} ktx/s  "
        f"lat(mean)={ms(merged.mean())} ms  lat(p99)={ms(merged.p99())} ms"
    )
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w") as fh:
            json.dump(engine.metrics_snapshot(), fh, indent=2, sort_keys=True)
        log.info("wrote %s", args.metrics_out)
    violations = engine.audit_violations()
    if violations:
        print(f"online audit: {violations} violation(s)")
        raise SystemExit(1)


def _cmd_shard(args: argparse.Namespace) -> None:
    from repro.harness.scenarios import _experiment, _token_weight
    from repro.harness.workload import ShardedClosedLoopClients
    from repro.shard import ShardConfig, ShardedCluster

    if args.jobs > 1:
        _cmd_shard_parallel(args)
        return
    shard = ShardConfig(shards=args.shards, router=args.router, router_seed=args.seed)
    experiment = _experiment(
        args.f, seed=args.seed, base_timeout=120.0, max_timeout=240.0
    )
    sharded = ShardedCluster(
        experiment,
        shard=shard,
        protocol=args.protocol,
        crypto_mode="null",
        audit=True,
        metrics=bool(args.metrics_out),
    )
    pool = ShardedClosedLoopClients(
        sharded,
        num_clients=args.clients,
        token_weight=_token_weight(args.clients),
        warmup=args.warmup,
    )
    sharded.start()
    sharded.sim.schedule(0.01, pool.start)
    sharded.run(until=args.sim_time)
    sharded.assert_safety()
    duration = args.sim_time - args.warmup
    rows = []
    for group, sub in zip(sharded.groups, pool.pools):
        tps = sub.throughput.throughput(duration=duration) if sub is not None else 0.0
        lat = sub.latency.mean() if sub is not None else 0.0
        report = (
            group.observability.audit_report()
            if group.observability is not None
            else {"ok": True, "violations": []}
        )
        rows.append(
            [
                str(group.shard_id),
                str(sub.num_clients if sub is not None else 0),
                ktx(tps),
                ms(lat),
                str(group.misrouted_ops),
                "OK" if report["ok"] else f"{len(report['violations'])} violations",
            ]
        )
    aggregate = sum(
        sub.throughput.throughput(duration=duration)
        for sub in pool.pools
        if sub is not None
    )
    merged = pool.merged_latency()
    print(
        format_table(
            f"sharded run ({args.protocol}, G={args.shards}, f={args.f} per group)",
            ["shard", "clients", "ktx/s", "lat ms", "misrouted", "audit"],
            rows,
        )
    )
    print(
        f"\naggregate: {ktx(aggregate)} ktx/s  "
        f"lat(mean)={ms(merged.mean())} ms  lat(p99)={ms(merged.p99())} ms"
    )
    if args.metrics_out:
        import json

        with open(args.metrics_out, "w") as fh:
            json.dump(sharded.metrics_snapshot(), fh, indent=2, sort_keys=True)
        log.info("wrote %s", args.metrics_out)
    violations = sharded.audit_violations()
    if violations:
        print(f"online audit: {violations} violation(s)")
        raise SystemExit(1)


def _cmd_latency(args: argparse.Namespace) -> None:
    from repro.api import Scenario, latency_breakdown
    from repro.obs.journey import slowest_journeys, waterfall_json, write_chrome_trace

    scenario = Scenario(
        protocol=args.protocol,
        f=args.f,
        clients=args.clients,
        sim_time=args.sim_time,
        warmup=args.warmup,
        seed=args.seed,
        shards=args.shards,
    )
    result, recorder = latency_breakdown(scenario, sample_rate=args.sample)
    waterfall = result.waterfall or {}
    stages = waterfall.get("stages", {})
    rows = [
        [
            stage,
            str(int(stats["count"])),
            ms(stats["mean"]),
            ms(stats["p50"]),
            ms(stats["p90"]),
            ms(stats["p99"]),
        ]
        for stage, stats in stages.items()  # already in causal stage order
    ]
    print(
        format_table(
            f"latency waterfall ({args.protocol}, f={args.f}, "
            f"{args.clients} clients, sample={args.sample:g})",
            ["stage", "n", "mean ms", "p50 ms", "p90 ms", "p99 ms"],
            rows,
        )
    )
    counts = waterfall.get("journeys", {})
    e2e = waterfall.get("end_to_end", {})
    print(
        f"\njourneys: {counts.get('sampled', 0)} sampled, "
        f"{counts.get('complete', 0)} complete in window, "
        f"{counts.get('retransmits', 0)} retransmits"
    )
    print(
        f"end-to-end: journey p50 {ms(e2e.get('journey_p50', 0.0))} ms, "
        f"stage-sum p50 {ms(e2e.get('stage_sum_p50', 0.0))} ms, "
        f"recorder p50 {ms(e2e.get('recorder_p50', 0.0))} ms"
        + (f", error {e2e['error'] * 100:.2f}%" if "error" in e2e else "")
    )
    slow = slowest_journeys(recorder, args.slowest, window_start=args.warmup)
    if slow:
        print(f"\nslowest {len(slow)} request(s):")
        for (client_id, sequence), total, chain in slow:
            top = max(
                (
                    (stage, end - start)
                    for (_l, start), (stage, end) in zip(chain, chain[1:])
                ),
                key=lambda item: item[1],
                default=("?", 0.0),
            )
            print(
                f"  client {client_id} seq {sequence}: {ms(total)} ms "
                f"(worst stage: {top[0]}, {ms(top[1])} ms)"
            )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(waterfall_json(waterfall))
        log.info("wrote %s", args.json)
    if args.chrome_out:
        write_chrome_trace(
            args.chrome_out, recorder, k=args.slowest, window_start=args.warmup
        )
        log.info("wrote %s", args.chrome_out)
    if args.check is not None:
        error = e2e.get("error")
        if error is None:
            print("\nreconciliation: FAILED (no end-to-end reference recorded)")
            raise SystemExit(1)
        verdict = "OK" if error <= args.check else "FAILED"
        print(
            f"\nreconciliation: {verdict} "
            f"(stage-sum p50 within {error * 100:.2f}% of end-to-end p50, "
            f"tolerance {args.check * 100:.0f}%)"
        )
        if error > args.check:
            raise SystemExit(1)


def _cmd_fuzz(args: argparse.Namespace) -> None:
    from repro.harness.failures import fuzz_schedule

    report = fuzz_schedule(args.seed, protocol=args.protocol, f=args.f, sim_time=args.sim_time)
    print(f"fuzz seed={report.seed} protocol={report.protocol}")
    for event in report.events or ["(no adversarial events drawn)"]:
        print(f"  {event}")
    print(f"  committed heights: {report.committed_heights}")
    print(f"  ops committed    : {report.ops_committed}")
    print(f"  max view         : {report.max_view}")
    print(f"  safety           : {'OK' if report.safety_ok else 'VIOLATED'}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Marlin (DSN 2022) reproduction experiments",
    )
    parser.add_argument(
        "--log-level",
        default="warning",
        choices=LOG_LEVELS,
        help="stderr logging level for the run (default: warning)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, protocol: bool = True) -> None:
        if protocol:
            p.add_argument(
                "--protocol",
                default="marlin",
                choices=[
                    "marlin",
                    "hotstuff",
                    "chained-marlin",
                    "chained-hotstuff",
                    "fast-hotstuff",
                    "insecure",
                ],
            )
        p.add_argument("--f", type=int, default=1, help="fault tolerance (n = 3f+1)")
        p.add_argument("--sim-time", type=float, default=22.0)

    p = sub.add_parser("point", help="one closed-loop load point")
    common(p)
    p.add_argument("--clients", type=int, default=16384)
    p.add_argument("--warmup", type=float, default=7.0)
    p.add_argument(
        "--batching",
        action="store_true",
        help="enable vote batching and proposal pipelining (PipelineConfig defaults)",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write the run's metrics registry (per-replica + cluster) to this JSON file",
    )
    p.set_defaults(func=_cmd_point)

    def add_sweep_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the sweep (results identical to serial)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="skip the on-disk result cache ($REPRO_CACHE_DIR or ~/.cache/repro-marlin)",
        )

    p = sub.add_parser("curve", help="throughput-latency sweep (Fig. 10a-f)")
    add_sweep_args(p)
    common(p)
    p.add_argument("--csv", default=None, help="also write the curve to a CSV file")
    p.set_defaults(func=_cmd_curve)

    p = sub.add_parser("peak", help="peak throughput, both protocols (Fig. 10g)")
    add_sweep_args(p)
    p.add_argument(
        "--strategy", choices=("sweep", "bisect"), default="sweep",
        help="client-grid search: linear sweep (paper methodology) or bisection",
    )
    common(p, protocol=False)
    p.add_argument("--save", default=None, help="write metrics to a JSON result store")
    p.set_defaults(func=_cmd_peak)

    p = sub.add_parser("compare", help="diff two result stores (regression check)")
    p.add_argument("before")
    p.add_argument("after")
    p.add_argument("--tolerance", type=float, default=0.05)
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser("viewchange", help="view-change latency (Fig. 10i)")
    common(p)
    p.add_argument("--unhappy", action="store_true", help="force the pre-prepare path")
    p.set_defaults(func=_cmd_viewchange)

    p = sub.add_parser("rotate", help="rotating leaders under crashes (Fig. 10j)")
    common(p, protocol=False)
    p.set_defaults(f=3)
    p.add_argument("--crashed", type=int, default=0)
    p.add_argument("--clients", type=int, default=24576)
    p.set_defaults(func=_cmd_rotate)

    p = sub.add_parser("table1", help="complexity table, analytical + measured")
    common(p, protocol=False)
    p.set_defaults(func=_cmd_table1)

    p = sub.add_parser("trace", help="export a Chrome-trace of one observed run")
    p.add_argument(
        "--protocol",
        default="marlin",
        choices=[
            "marlin", "hotstuff", "chained-marlin", "chained-hotstuff",
            "fast-hotstuff", "insecure",
        ],
    )
    p.add_argument("--n", type=int, default=4, help="cluster size (f = (n-1)//3)")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--sim-time", type=float, default=5.0)
    p.add_argument("--out", default="trace.json", help="Chrome trace_event output path")
    p.add_argument(
        "--crash-at", type=float, default=None,
        help="crash the view-1 leader at this time to capture a view change",
    )
    p.add_argument("--unhappy", action="store_true", help="force the pre-prepare path")
    p.add_argument("--text", action="store_true", help="also print the plain-text trace")
    p.add_argument("--limit", type=int, default=None, help="cap the text trace's rows")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser("metrics", help="run one load point and report its metrics")
    common(p)
    p.add_argument("--clients", type=int, default=4096)
    p.add_argument("--warmup", type=float, default=7.0)
    p.add_argument("--json", default=None, help="write the metrics snapshot to JSON")
    p.add_argument("--prom", default=None, help="write Prometheus text exposition")
    p.set_defaults(func=_cmd_metrics)

    p = sub.add_parser(
        "client", help="drive real protocol clients (sessions + reply certificates)"
    )
    common(p)
    p.set_defaults(sim_time=12.0)
    p.add_argument("--clients", type=int, default=64)
    p.add_argument("--warmup", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--reads", choices=("commit", "leader-lease"), default="commit",
        help="read path: through consensus, or leader-served after a quorum check",
    )
    p.add_argument(
        "--retry-timeout", type=float, default=2.0,
        help="client reply timeout before the first retransmit-to-all",
    )
    p.add_argument(
        "--max-inflight", type=int, default=None,
        help="per-replica admission window (weighted ops); omit to disable shedding",
    )
    p.add_argument(
        "--crash-leader-at", type=float, default=None,
        help="crash the view-1 leader at this time to exercise client redirection",
    )
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser(
        "audit", help="audited run: flight recorder, invariants, linearity verdict"
    )
    p.add_argument(
        "--protocol",
        default="marlin",
        choices=[
            "marlin", "hotstuff", "chained-marlin", "chained-hotstuff",
            "fast-hotstuff", "insecure",
        ],
    )
    p.add_argument("--n", type=int, default=4, help="cluster size (any n >= 4)")
    p.add_argument("--sim-time", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument(
        "--byzantine", choices=("none", "equivocator", "reply-forger"), default="none",
        help="inject one faulty replica; exit 0 iff the auditor detects it",
    )
    p.add_argument(
        "--dump", choices=("never", "on-violation", "always"), default="on-violation",
        help="when to write the black-box flight-recorder dump",
    )
    p.add_argument("--dump-dir", default=None, help="directory for black-box dumps")
    p.add_argument(
        "--skip-sweep", action="store_true",
        help="skip the wide-n complexity sweep (empirical Table 1)",
    )
    p.add_argument(
        "--max-slope", type=float, default=1.3,
        help="log-log slope bound for the linearity verdict",
    )
    p.add_argument("--json", default=None, help="write the machine-readable report here")
    p.set_defaults(func=_cmd_audit)

    p = sub.add_parser(
        "adversary",
        help="Byzantine campaign: scenario x protocol x seed verdict matrix",
    )
    p.add_argument(
        "--list", action="store_true",
        help="list registered scenarios and behaviors, then exit",
    )
    p.add_argument(
        "--scenario", action="append", default=None, metavar="NAME",
        help="run only this scenario (repeatable; default: all)",
    )
    p.add_argument(
        "--protocols", nargs="+",
        default=["marlin", "hotstuff", "fast-hotstuff", "insecure"],
        help="protocols to grid over",
    )
    p.add_argument(
        "--seeds", nargs="+", type=int, default=[1, 2], help="seeds to grid over"
    )
    p.add_argument("--n", type=int, default=4, help="voting replicas per cell")
    p.add_argument("--sim-time", type=float, default=12.0)
    p.add_argument(
        "--crypto", choices=("null", "threshold", "multisig"), default="null"
    )
    p.add_argument(
        "--learners", type=int, default=0,
        help="non-voting learner replicas appended to each cell's cluster",
    )
    p.add_argument("--jobs", type=int, default=1, help="worker processes for cells")
    p.add_argument(
        "--cache", action="store_true",
        help="reuse / populate the shared result cache for cells",
    )
    p.add_argument("--json", default=None, help="write the verdict matrix here")
    p.add_argument(
        "--reports", action="store_true",
        help="embed each cell's full checker report in the JSON artifact",
    )
    p.set_defaults(func=_cmd_adversary)

    p = sub.add_parser(
        "shard", help="G consensus groups over one simulator, key-routed clients"
    )
    common(p)
    p.add_argument("--shards", type=int, default=4, help="consensus groups (G)")
    p.add_argument(
        "--router", choices=("hash", "modulo"), default="hash",
        help="key->shard scheme (see docs/SHARDING.md)",
    )
    p.add_argument("--clients", type=int, default=16384, help="global client population")
    p.add_argument("--warmup", type=float, default=7.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--metrics-out",
        default=None,
        help="write per-shard metric views plus the cluster aggregate to this JSON file",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the simulation itself (per-group "
        "decomposition); output is byte-identical to --jobs 1",
    )
    p.set_defaults(func=_cmd_shard)

    p = sub.add_parser(
        "latency", help="request-journey tracing: critical-path latency waterfall"
    )
    common(p)
    p.add_argument("--clients", type=int, default=512)
    p.add_argument("--warmup", type=float, default=7.0)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--sample", type=float, default=1.0,
        help="fraction of clients traced (deterministic, seed-derived)",
    )
    p.add_argument("--shards", type=int, default=1, help="consensus groups (G)")
    p.add_argument("--json", default=None, help="write the waterfall JSON here")
    p.add_argument(
        "--chrome-out", default=None,
        help="write a Chrome trace_event file of the slowest journeys",
    )
    p.add_argument(
        "--slowest", type=int, default=5,
        help="how many slowest journeys to list/export",
    )
    p.add_argument(
        "--check", type=float, default=None, metavar="TOL",
        help="exit 1 unless stage-sum p50 reconciles with end-to-end p50 within TOL",
    )
    p.set_defaults(func=_cmd_latency)

    p = sub.add_parser("fuzz", help="one randomly-adversarial schedule")
    common(p)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "explore", help="safety hunt over adversarial message interleavings"
    )
    common(p)
    p.add_argument("--schedules", type=int, default=500)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_explore)

    return parser


def _cmd_explore(args: argparse.Namespace) -> None:
    from repro.harness.des_runtime import PROTOCOLS
    from repro.harness.explorer import explore

    replica_cls = PROTOCOLS[args.protocol]
    results = explore(replica_cls, schedules=args.schedules, base_seed=args.seed)
    views = max(r.max_view for r in results)
    commits = sum(max(r.committed_heights) for r in results)
    print(
        f"{args.schedules} adversarial schedules of {args.protocol}: all safe. "
        f"(max view reached {views}, {commits} total committed heights, "
        f"{sum(r.dropped for r in results)} messages dropped)"
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_cli_logging(args.log_level)
    args.func(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
