"""Block persistence keyed by digest.

The block store is deliberately generic: it stores any object exposing a
``digest`` (bytes) and a ``parent_link`` (bytes or None), so it does not
depend on the consensus package.  Objects live in an in-memory index; when
constructed over a :class:`~repro.storage.kvstore.KVStore` each insert is
also persisted (what the paper's evaluation calls "writing data into the
database rather than into memory").
"""

from __future__ import annotations

from typing import Callable, Iterator, Protocol

from repro.common.errors import StorageError
from repro.storage.kvstore import KVStore


class StorableBlock(Protocol):
    """Minimal structural interface a block must expose."""

    @property
    def digest(self) -> bytes: ...

    @property
    def parent_link(self) -> bytes | None: ...


class BlockStore:
    """Digest-indexed store with parent traversal and optional persistence."""

    def __init__(
        self,
        kv: KVStore | None = None,
        serializer: Callable[[StorableBlock], bytes] | None = None,
    ) -> None:
        self._blocks: dict[bytes, StorableBlock] = {}
        self._kv = kv
        self._serializer = serializer
        if kv is not None and serializer is None:
            raise StorageError("a serializer is required when persisting blocks")

    def add(self, block: StorableBlock) -> None:
        """Insert ``block``; idempotent for identical digests."""
        digest = block.digest
        if digest in self._blocks:
            return
        self._blocks[digest] = block
        if self._kv is not None and self._serializer is not None:
            self._kv.put(b"block:" + digest, self._serializer(block))

    def get(self, digest: bytes) -> StorableBlock | None:
        return self._blocks.get(digest)

    def __contains__(self, digest: bytes) -> bool:
        return digest in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def parent_of(self, block: StorableBlock) -> StorableBlock | None:
        """The parent block, or None if unknown or genesis."""
        link = block.parent_link
        if link is None:
            return None
        return self._blocks.get(link)

    def chain_to_genesis(self, block: StorableBlock) -> Iterator[StorableBlock]:
        """Yield ``block`` and then each stored ancestor, newest first.

        Stops at the first missing parent rather than raising; callers that
        require completeness check the last yielded block themselves.
        """
        current: StorableBlock | None = block
        while current is not None:
            yield current
            current = self.parent_of(current)

    def is_ancestor(self, ancestor_digest: bytes, block: StorableBlock) -> bool:
        """True if the block with ``ancestor_digest`` is on ``block``'s branch."""
        for node in self.chain_to_genesis(block):
            if node.digest == ancestor_digest:
                return True
        return False

    def prune_below(self, keep: set[bytes]) -> int:
        """Drop every block whose digest is not in ``keep``; returns count.

        Used by the checkpoint manager to garbage-collect history.
        """
        doomed = [d for d in self._blocks if d not in keep]
        for digest in doomed:
            del self._blocks[digest]
            if self._kv is not None:
                self._kv.delete(b"block:" + digest)
        return len(doomed)
