"""Checksummed append-only write-ahead log.

Record framing: ``[4-byte length][4-byte CRC32][payload]``.  Replay stops
cleanly at the first torn or corrupt record (the crash-recovery contract:
a partially written tail record is discarded, everything before it is
intact).  Backed by a real file when given a path, or by an in-memory
buffer for simulations and tests.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import BinaryIO, Iterator

from repro.common.errors import StoreClosed

_HEADER = struct.Struct(">II")


class WriteAheadLog:
    """Append-only log of opaque byte records."""

    def __init__(self, path: str | None = None) -> None:
        self._path = path
        self._file: BinaryIO
        if path is None:
            self._file = io.BytesIO()
        else:
            os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
            self._file = open(path, "a+b")
        self._closed = False

    @property
    def path(self) -> str | None:
        return self._path

    def append(self, record: bytes) -> None:
        """Append one record; framing and checksum are added here."""
        self._check_open()
        crc = zlib.crc32(record) & 0xFFFFFFFF
        self._file.seek(0, os.SEEK_END)
        self._file.write(_HEADER.pack(len(record), crc))
        self._file.write(record)

    def sync(self) -> None:
        """Flush to the OS (and disk where applicable)."""
        self._check_open()
        self._file.flush()
        if self._path is not None:
            os.fsync(self._file.fileno())

    def replay(self) -> Iterator[bytes]:
        """Yield every intact record from the start of the log.

        Stops (without raising) at the first truncated or corrupt record,
        mirroring standard WAL recovery semantics.
        """
        self._check_open()
        self._file.seek(0)
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return
            length, crc = _HEADER.unpack(header)
            payload = self._file.read(length)
            if len(payload) < length:
                return
            if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                return
            yield payload

    def truncate(self) -> None:
        """Discard all records (after a checkpoint has superseded them)."""
        self._check_open()
        self._file.seek(0)
        self._file.truncate()

    def size_bytes(self) -> int:
        self._check_open()
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def close(self) -> None:
        if not self._closed:
            self._file.close()
            self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("write-ahead log is closed")

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
