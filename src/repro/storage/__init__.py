"""Storage substrate — a from-scratch LevelDB stand-in.

The paper's evaluation persists every committed block to LevelDB and runs
background checkpointing every 5000 blocks; it credits this realism for
its lower absolute numbers versus prior work.  This package provides the
same roles:

* :mod:`repro.storage.wal` — an append-only, checksummed write-ahead log;
* :mod:`repro.storage.kvstore` — a log-structured KV store (memtable +
  sorted immutable runs + WAL recovery + compaction), usable fully
  in-memory or against a directory;
* :mod:`repro.storage.blockstore` — block persistence keyed by digest,
  with parent traversal;
* :mod:`repro.storage.checkpoint` — the garbage-collection/checkpoint
  manager that trims history every N committed blocks.
"""

from repro.storage.kvstore import KVStore
from repro.storage.wal import WriteAheadLog
from repro.storage.blockstore import BlockStore
from repro.storage.checkpoint import CheckpointManager

__all__ = ["BlockStore", "CheckpointManager", "KVStore", "WriteAheadLog"]
