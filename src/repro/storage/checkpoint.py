"""Checkpoint / garbage-collection manager.

The paper's evaluation sets "the frequency of garbage collection
(checkpointing) to every 5000 blocks" and runs it in the background, which
is part of why its absolute numbers are lower than prior work.  The
manager watches the committed height, and every ``interval`` commits it:

1. flushes the KV store memtable (a durable checkpoint of app state),
2. prunes the block store down to a recent-history window,
3. records the checkpoint in the KV store so restarts can find it.

In the DES the *cost* of a checkpoint is charged separately via
``MachineProfile.checkpoint_cost``; this module implements the mechanism.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import StorageError
from repro.storage.blockstore import BlockStore, StorableBlock
from repro.storage.kvstore import KVStore


class CheckpointManager:
    """Trims history every ``interval`` committed blocks."""

    def __init__(
        self,
        interval: int,
        blockstore: BlockStore,
        kv: KVStore | None = None,
        keep_window: int = 64,
        on_checkpoint: Callable[[int], None] | None = None,
    ) -> None:
        if interval < 1:
            raise StorageError("checkpoint interval must be >= 1")
        if keep_window < 1:
            raise StorageError("keep_window must be >= 1")
        self._interval = interval
        self._blockstore = blockstore
        self._kv = kv
        self._keep_window = keep_window
        self._on_checkpoint = on_checkpoint
        self._commits_since = 0
        self._checkpoints_taken = 0
        self._last_checkpoint_height = 0

    @property
    def checkpoints_taken(self) -> int:
        return self._checkpoints_taken

    @property
    def last_checkpoint_height(self) -> int:
        return self._last_checkpoint_height

    def on_commit(self, block: StorableBlock, height: int) -> bool:
        """Notify of one committed block; returns True if a checkpoint ran."""
        self._commits_since += 1
        if self._commits_since < self._interval:
            return False
        self._commits_since = 0
        self._run_checkpoint(block, height)
        return True

    def _run_checkpoint(self, head: StorableBlock, height: int) -> None:
        keep: set[bytes] = set()
        for index, block in enumerate(self._blockstore.chain_to_genesis(head)):
            if index >= self._keep_window:
                break
            keep.add(block.digest)
        self._blockstore.prune_below(keep)
        if self._kv is not None:
            self._kv.flush()
            self._kv.put(b"meta:checkpoint_height", str(height).encode())
        self._checkpoints_taken += 1
        self._last_checkpoint_height = height
        if self._on_checkpoint is not None:
            self._on_checkpoint(height)
