"""A log-structured key-value store (the LevelDB substitute).

Architecture, a deliberately faithful miniature of LevelDB:

* writes go to the WAL first, then to an in-memory **memtable** (a dict);
* when the memtable exceeds ``memtable_limit`` bytes it is frozen into an
  immutable **sorted run** (newest first) and the WAL is truncated;
* reads consult the memtable, then runs newest-to-oldest; a tombstone
  marker implements deletes;
* **compaction** merges all runs into one, dropping shadowed versions and
  tombstones;
* :meth:`recover` rebuilds the memtable by replaying the WAL, giving
  crash durability for writes that happened after the last freeze.

Runs live in memory but are snapshotted to disk (one file per run) when a
directory is supplied, so the store survives process restarts in the
asyncio runtime while staying allocation-cheap inside the DES.
"""

from __future__ import annotations

import bisect
import os
from typing import Iterator

from repro.common.encoding import decode, encode
from repro.common.errors import StorageError, StoreClosed
from repro.storage.wal import WriteAheadLog

_TOMBSTONE = b"\x00__repro_tombstone__"


class _SortedRun:
    """An immutable sorted mapping of key -> value-or-tombstone."""

    __slots__ = ("keys", "values")

    def __init__(self, items: dict[bytes, bytes]) -> None:
        self.keys: list[bytes] = sorted(items)
        self.values: list[bytes] = [items[k] for k in self.keys]

    def get(self, key: bytes) -> bytes | None:
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return self.values[index]
        return None

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        return zip(self.keys, self.values)

    def __len__(self) -> int:
        return len(self.keys)


class KVStore:
    """Log-structured KV store with WAL durability and compaction."""

    def __init__(
        self,
        directory: str | None = None,
        memtable_limit: int = 4 * 1024 * 1024,
        compaction_trigger: int = 8,
    ) -> None:
        if memtable_limit < 1:
            raise StorageError("memtable_limit must be positive")
        if compaction_trigger < 2:
            raise StorageError("compaction_trigger must be >= 2")
        self._dir = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        wal_path = os.path.join(directory, "wal.log") if directory else None
        self._wal = WriteAheadLog(wal_path)
        self._memtable: dict[bytes, bytes] = {}
        self._memtable_bytes = 0
        self._runs: list[_SortedRun] = []
        self._memtable_limit = memtable_limit
        self._compaction_trigger = compaction_trigger
        self._next_run_id = 0
        self._closed = False
        self._stats = {"puts": 0, "gets": 0, "deletes": 0, "freezes": 0, "compactions": 0}
        self._load_runs()
        self.recover()

    # ------------------------------------------------------------- public

    def put(self, key: bytes, value: bytes) -> None:
        """Durably write ``key -> value``."""
        self._check_open()
        self._validate_key(key)
        if value.startswith(_TOMBSTONE):
            raise StorageError("value collides with tombstone marker")
        self._wal.append(encode([key, value]))
        self._insert(key, value)
        self._stats["puts"] += 1
        self._maybe_freeze()

    def get(self, key: bytes) -> bytes | None:
        """Read the newest value for ``key`` or None if absent/deleted."""
        self._check_open()
        self._validate_key(key)
        self._stats["gets"] += 1
        if key in self._memtable:
            value = self._memtable[key]
            return None if value == _TOMBSTONE else value
        for run in reversed(self._runs):
            value = run.get(key)
            if value is not None:
                return None if value == _TOMBSTONE else value
        return None

    def delete(self, key: bytes) -> None:
        """Delete ``key`` (tombstone; space reclaimed at compaction)."""
        self._check_open()
        self._validate_key(key)
        self._wal.append(encode([key, None]))
        self._insert(key, _TOMBSTONE)
        self._stats["deletes"] += 1
        self._maybe_freeze()

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def scan(self, prefix: bytes = b"") -> Iterator[tuple[bytes, bytes]]:
        """Yield live (key, value) pairs with ``prefix``, in key order."""
        self._check_open()
        merged: dict[bytes, bytes] = {}
        for run in self._runs:
            for key, value in run.items():
                merged[key] = value
        merged.update(self._memtable)
        for key in sorted(merged):
            if key.startswith(prefix) and merged[key] != _TOMBSTONE:
                yield key, merged[key]

    def compact(self) -> None:
        """Merge all frozen runs into one, dropping dead versions."""
        self._check_open()
        if len(self._runs) <= 1:
            return
        merged: dict[bytes, bytes] = {}
        for run in self._runs:
            for key, value in run.items():
                merged[key] = value
        live = {k: v for k, v in merged.items() if v != _TOMBSTONE}
        old_files = list(range(self._next_run_id))
        self._runs = [_SortedRun(live)] if live else []
        self._stats["compactions"] += 1
        if self._dir is not None:
            for run_id in old_files:
                path = self._run_path(run_id)
                if os.path.exists(path):
                    os.remove(path)
            self._next_run_id = 0
            if self._runs:
                self._persist_run(self._runs[0])

    def flush(self) -> None:
        """Freeze the memtable unconditionally (exposed for checkpoints)."""
        self._check_open()
        if self._memtable:
            self._freeze()

    def recover(self) -> None:
        """Replay the WAL into the memtable (crash recovery)."""
        self._check_open()
        for record in self._wal.replay():
            key, value = decode(record)
            self._insert(key, _TOMBSTONE if value is None else value)

    @property
    def stats(self) -> dict[str, int]:
        return dict(self._stats)

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    def approximate_size(self) -> int:
        """Rough live-data byte count across memtable and runs."""
        total = self._memtable_bytes
        for run in self._runs:
            total += sum(len(k) + len(v) for k, v in run.items())
        return total

    def close(self) -> None:
        if not self._closed:
            self._wal.sync() if self._dir else None
            self._wal.close()
            self._closed = True

    def __enter__(self) -> "KVStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------ private

    def _insert(self, key: bytes, value: bytes) -> None:
        old = self._memtable.get(key)
        if old is not None:
            self._memtable_bytes -= len(key) + len(old)
        self._memtable[key] = value
        self._memtable_bytes += len(key) + len(value)

    def _maybe_freeze(self) -> None:
        if self._memtable_bytes >= self._memtable_limit:
            self._freeze()

    def _freeze(self) -> None:
        run = _SortedRun(self._memtable)
        self._runs.append(run)
        self._persist_run(run)
        self._memtable = {}
        self._memtable_bytes = 0
        self._wal.truncate()
        self._stats["freezes"] += 1
        if len(self._runs) >= self._compaction_trigger:
            self.compact()

    def _persist_run(self, run: _SortedRun) -> None:
        if self._dir is None:
            self._next_run_id += 1
            return
        path = self._run_path(self._next_run_id)
        self._next_run_id += 1
        payload = encode([[k, v] for k, v in run.items()])
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _load_runs(self) -> None:
        if self._dir is None:
            return
        run_ids = []
        for name in os.listdir(self._dir):
            if name.startswith("run-") and name.endswith(".sst"):
                run_ids.append(int(name[4:-4]))
        for run_id in sorted(run_ids):
            with open(self._run_path(run_id), "rb") as fh:
                items = decode(fh.read())
            self._runs.append(_SortedRun({k: v for k, v in items}))
            self._next_run_id = max(self._next_run_id, run_id + 1)

    def _run_path(self, run_id: int) -> str:
        assert self._dir is not None
        return os.path.join(self._dir, f"run-{run_id:06d}.sst")

    @staticmethod
    def _validate_key(key: bytes) -> None:
        if not isinstance(key, bytes) or not key:
            raise StorageError("keys must be non-empty bytes")

    def _check_open(self) -> None:
        if self._closed:
            raise StoreClosed("KV store is closed")
