"""Unified observability: metrics registry, lifecycle tracing, logging.

Shared by both runtimes (the DES and asyncio); see
``docs/OBSERVABILITY.md`` for the metric catalogue and span taxonomy.
"""

from repro.obs.log import configure_cli_logging, get_logger, replica_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NetworkMetrics,
)
from repro.obs.observer import NULL_OBS, NullReplicaObs, ReplicaObs, RunObservability
from repro.obs.tracer import Instant, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NetworkMetrics",
    "NULL_OBS",
    "NullReplicaObs",
    "NullTracer",
    "ReplicaObs",
    "RunObservability",
    "Span",
    "Tracer",
    "configure_cli_logging",
    "get_logger",
    "replica_logger",
]
