"""Unified observability: metrics registry, lifecycle tracing, logging.

Shared by both runtimes (the DES and asyncio); see
``docs/OBSERVABILITY.md`` for the metric catalogue and span taxonomy.
"""

from repro.obs.audit import OnlineAuditor, Violation
from repro.obs.complexity import ComplexityObservatory, SlopeFit, fit_loglog_slope
from repro.obs.flight import (
    FlightEvent,
    FlightRecorder,
    decode_blackbox,
    encode_blackbox,
    read_blackbox,
    write_blackbox,
)
from repro.obs.log import configure_cli_logging, get_logger, replica_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NetworkMetrics,
)
from repro.obs.observer import (
    NULL_OBS,
    FlightRecordingObs,
    NullReplicaObs,
    ReplicaObs,
    RunObservability,
)
from repro.obs.tracer import Instant, NullTracer, Span, Tracer

__all__ = [
    "ComplexityObservatory",
    "Counter",
    "FlightEvent",
    "FlightRecorder",
    "FlightRecordingObs",
    "Gauge",
    "Histogram",
    "Instant",
    "MetricsRegistry",
    "NetworkMetrics",
    "NULL_OBS",
    "NullReplicaObs",
    "NullTracer",
    "OnlineAuditor",
    "ReplicaObs",
    "RunObservability",
    "SlopeFit",
    "Span",
    "Tracer",
    "Violation",
    "configure_cli_logging",
    "decode_blackbox",
    "encode_blackbox",
    "fit_loglog_slope",
    "get_logger",
    "read_blackbox",
    "replica_logger",
    "write_blackbox",
]
