"""The metrics registry: counters, gauges and fixed-bucket histograms.

One :class:`MetricsRegistry` serves a whole run.  Metric instances are
keyed by ``(name, labels)`` — asking twice for the same pair returns the
same object, so instrument-at-use-site code stays allocation-free on the
hot path (fetch the instance once, call :meth:`Counter.inc` forever).

Views: :meth:`MetricsRegistry.snapshot` renders every labelled series to
plain JSON-able data; :meth:`MetricsRegistry.aggregate` merges series
across chosen labels (the cluster-wide view drops ``replica``);
:meth:`MetricsRegistry.render_prometheus` emits standard text exposition
so a scrape target or ``promtool`` can consume a dump directly.

Histograms use fixed cumulative-style buckets (recorded per-bucket,
exposed cumulatively, Prometheus-style), so two histograms merge by
adding bucket counts — no raw samples are kept.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

LabelKey = tuple[tuple[str, str], ...]

DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Seconds; spans the DES's sub-ms loopbacks to multi-second view changes."""


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram of non-negative observations.

    ``buckets`` are upper bounds; one implicit ``+Inf`` bucket catches the
    overflow.  Counts are stored per-bucket (non-cumulative) and summed at
    exposition time.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelKey, buckets: Iterable[float]) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float, weight: int = 1) -> None:
        self.sum += value * weight
        self.count += weight
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += weight
                return
        self.counts[-1] += weight

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile (``q`` in [0, 1]) by bucket interpolation.

        Within the bucket containing the target rank the value is
        interpolated linearly; the overflow bucket reports its lower
        bound (the largest finite boundary).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bound in enumerate(self.buckets):
            in_bucket = self.counts[index]
            if cumulative + in_bucket >= target and in_bucket > 0:
                fraction = (target - cumulative) / in_bucket
                return lower + fraction * (bound - lower)
            cumulative += in_bucket
            lower = bound
        return self.buckets[-1]

    def merge_into(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(f"histogram {self.name}: bucket layouts differ, cannot merge")
        for index, count in enumerate(self.counts):
            other.counts[index] += count
        other.sum += self.sum
        other.count += self.count


class MetricsRegistry:
    """All metrics of one run, with per-label-set instances."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], Counter | Gauge | Histogram] = {}
        self._families: dict[str, tuple[str, str]] = {}  # name -> (kind, help)
        self._bucket_layouts: dict[str, tuple[float, ...]] = {}

    # ------------------------------------------------------------- factories

    def _family(self, name: str, kind: str, help_text: str) -> None:
        known = self._families.get(name)
        if known is None:
            self._families[name] = (kind, help_text)
        elif known[0] != kind:
            raise ValueError(f"metric {name!r} already registered as a {known[0]}")

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        self._family(name, "counter", help)
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Counter(name, key[1])
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        self._family(name, "gauge", help)
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Gauge(name, key[1])
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] | None = None,
        **labels: Any,
    ) -> Histogram:
        self._family(name, "histogram", help)
        layout = tuple(sorted(buckets)) if buckets is not None else (
            self._bucket_layouts.get(name, DEFAULT_LATENCY_BUCKETS)
        )
        self._bucket_layouts.setdefault(name, layout)
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, key[1], self._bucket_layouts[name])
            self._metrics[key] = metric
        return metric  # type: ignore[return-value]

    # --------------------------------------------------------------- views

    def _sorted_items(self) -> list[tuple[tuple[str, LabelKey], Counter | Gauge | Histogram]]:
        return sorted(self._metrics.items(), key=lambda item: item[0])

    def snapshot(self) -> dict[str, Any]:
        """Every series as plain data: {kind: {name: [series...]}}."""
        out: dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (name, labels), metric in self._sorted_items():
            kind = self._families[name][0]
            series: dict[str, Any] = {"labels": dict(labels)}
            if isinstance(metric, Histogram):
                series.update(
                    count=metric.count,
                    sum=metric.sum,
                    mean=metric.mean(),
                    p50=metric.quantile(0.50),
                    p99=metric.quantile(0.99),
                    buckets=[
                        [bound, count]
                        for bound, count in zip(metric.buckets, metric.counts)
                    ] + [["+Inf", metric.counts[-1]]],
                )
            else:
                series["value"] = metric.value
            out[kind + "s"].setdefault(name, []).append(series)
        return out

    def aggregate(self, drop_labels: tuple[str, ...] = ("replica",)) -> "MetricsRegistry":
        """A new registry with the chosen labels removed and series merged.

        Counters and gauges sum; histograms merge bucket-wise.  The usual
        call drops ``replica`` to produce the cluster-wide view.
        """
        merged = MetricsRegistry()
        for (name, labels), metric in self._sorted_items():
            kind, help_text = self._families[name]
            kept = {k: v for k, v in labels if k not in drop_labels}
            if kind == "counter":
                merged.counter(name, help_text, **kept).inc(metric.value)
            elif kind == "gauge":
                merged.gauge(name, help_text, **kept).inc(metric.value)
            else:
                assert isinstance(metric, Histogram)
                target = merged.histogram(name, help_text, buckets=metric.buckets, **kept)
                metric.merge_into(target)
        return merged

    def merge_from(self, other: "MetricsRegistry", **extra_labels: Any) -> "MetricsRegistry":
        """Fold another registry's series into this one, in place.

        ``extra_labels`` are added to every imported series — the sharded
        cluster view merges each group's registry with ``shard=<gid>`` so
        identically named per-group series stay distinguishable.  Returns
        ``self`` for chaining.
        """
        for (name, labels), metric in other._sorted_items():
            kind, help_text = other._families[name]
            merged = dict(labels)
            merged.update(extra_labels)
            if kind == "counter":
                self.counter(name, help_text, **merged).inc(metric.value)
            elif kind == "gauge":
                self.gauge(name, help_text, **merged).inc(metric.value)
            else:
                assert isinstance(metric, Histogram)
                target = self.histogram(name, help_text, buckets=metric.buckets, **merged)
                metric.merge_into(target)
        return self

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    # --------------------------------------------------- Prometheus text

    @staticmethod
    def _render_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
        items = tuple(labels) + extra
        if not items:
            return ""
        body = ",".join(f'{k}="{v}"' for k, v in items)
        return "{" + body + "}"

    @staticmethod
    def _render_value(value: float) -> str:
        if isinstance(value, float) and value.is_integer():
            return str(int(value))
        return repr(value)

    def render_prometheus(self) -> str:
        """Standard Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        by_family: dict[str, list[tuple[LabelKey, Counter | Gauge | Histogram]]] = {}
        for (name, labels), metric in self._sorted_items():
            by_family.setdefault(name, []).append((labels, metric))
        for name in sorted(by_family):
            kind, help_text = self._families[name]
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for labels, metric in by_family[name]:
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.buckets, metric.counts):
                        cumulative += count
                        le = self._render_labels(labels, (("le", repr(bound)),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = self._render_labels(labels, (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {metric.count}")
                    lines.append(
                        f"{name}_sum{self._render_labels(labels)} "
                        f"{self._render_value(metric.sum)}"
                    )
                    lines.append(f"{name}_count{self._render_labels(labels)} {metric.count}")
                else:
                    lines.append(
                        f"{name}{self._render_labels(labels)} "
                        f"{self._render_value(metric.value)}"
                    )
        return "\n".join(lines) + "\n"


class NetworkMetrics:
    """Per-endpoint send/receive/drop counters for a transport.

    Transports call :meth:`sent` / :meth:`received` / :meth:`dropped` with
    an endpoint id; counter instances are cached per endpoint so the
    per-message cost is two dict hits and two adds.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._sent: dict[int, tuple[Counter, Counter]] = {}
        self._received: dict[int, tuple[Counter, Counter]] = {}
        self._dropped: dict[int, Counter] = {}

    def sent(self, endpoint: int, size: int) -> None:
        pair = self._sent.get(endpoint)
        if pair is None:
            pair = (
                self.registry.counter(
                    "net_messages_sent_total", "Messages handed to the transport",
                    endpoint=endpoint,
                ),
                self.registry.counter(
                    "net_bytes_sent_total", "Bytes on the wire, outbound",
                    endpoint=endpoint,
                ),
            )
            self._sent[endpoint] = pair
        pair[0].inc()
        pair[1].inc(size)

    def received(self, endpoint: int, size: int) -> None:
        pair = self._received.get(endpoint)
        if pair is None:
            pair = (
                self.registry.counter(
                    "net_messages_received_total", "Messages delivered to the endpoint",
                    endpoint=endpoint,
                ),
                self.registry.counter(
                    "net_bytes_received_total", "Bytes on the wire, inbound",
                    endpoint=endpoint,
                ),
            )
            self._received[endpoint] = pair
        pair[0].inc()
        pair[1].inc(size)

    def dropped(self, endpoint: int) -> None:
        counter = self._dropped.get(endpoint)
        if counter is None:
            counter = self.registry.counter(
                "net_messages_dropped_total", "Messages lost to link state or loss rate",
                endpoint=endpoint,
            )
            self._dropped[endpoint] = counter
        counter.inc()
