"""Block-lifecycle spans and structured trace export.

A :class:`Tracer` records two kinds of entries:

* **spans** — begin/end intervals keyed by ``(replica, name, key)``,
  with parent/child links.  The protocol instrumentation opens one root
  ``block`` span per (replica, block digest) and nests the phase spans
  (``prepare``, ``pre-commit``, ``commit``) inside it, so a committed
  block's span *contains* the phases that led to its commit;
* **instants** — point events (votes, QC formations, view-change
  sub-phases, network deliveries) with arbitrary metadata.

Timestamps are supplied by callers (``ctx.now``), so DES runs produce
deterministic traces — two identical seeded runs export byte-identical
files — while asyncio runs get wall-clock time.

Export: :meth:`Tracer.chrome_trace` emits the Chrome ``trace_event``
JSON-array format, one event per line, which opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; replicas map to
processes, the lifecycle/view-change lanes to threads.
:meth:`Tracer.render_text` is the plain-text view (one line per entry,
same layout as the DES :class:`~repro.harness.timeline.Timeline`, which
is itself backed by a tracer).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

LANE_LIFECYCLE = 0
LANE_VIEW = 1
LANE_NET = 2

_LANES = {LANE_LIFECYCLE: "lifecycle", LANE_VIEW: "view-change", LANE_NET: "network"}


@dataclass
class Span:
    """One begin/end interval on a replica."""

    span_id: int
    name: str  # "block", "prepare", "commit", "view-change", ...
    replica: int
    key: str  # block digest hex / view number, scoping the span
    start: float
    end: float | None = None
    parent_id: int | None = None
    lane: int = LANE_LIFECYCLE
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start


@dataclass
class Instant:
    """One point event on a replica."""

    ts: float
    name: str
    replica: int
    lane: int = LANE_LIFECYCLE
    meta: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects spans and instant events for one run."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[Instant] = []
        self._open: dict[tuple[int, str, str], Span] = {}
        self._next_id = 1

    # ------------------------------------------------------------ recording

    def begin(
        self,
        replica: int,
        name: str,
        key: str,
        ts: float,
        parent: Span | None = None,
        lane: int = LANE_LIFECYCLE,
        **meta: Any,
    ) -> Span:
        """Open the span ``(replica, name, key)``; idempotent while open."""
        handle = (replica, name, key)
        span = self._open.get(handle)
        if span is not None:
            return span
        span = Span(
            span_id=self._next_id,
            name=name,
            replica=replica,
            key=key,
            start=ts,
            parent_id=parent.span_id if parent is not None else None,
            lane=lane,
            meta=dict(meta),
        )
        self._next_id += 1
        self._open[handle] = span
        self.spans.append(span)
        return span

    def end(self, replica: int, name: str, key: str, ts: float, **meta: Any) -> Span | None:
        """Close the span if open; returns it (or None if never opened)."""
        span = self._open.pop((replica, name, key), None)
        if span is None:
            return None
        span.end = ts
        span.meta.update(meta)
        return span

    def open_span(self, replica: int, name: str, key: str) -> Span | None:
        return self._open.get((replica, name, key))

    def instant(
        self, replica: int, name: str, ts: float, lane: int = LANE_LIFECYCLE, **meta: Any
    ) -> Instant:
        entry = Instant(ts=ts, name=name, replica=replica, lane=lane, meta=dict(meta))
        self.instants.append(entry)
        return entry

    def finish(self, ts: float) -> None:
        """Close every still-open span (end of run)."""
        for handle in sorted(self._open, key=lambda h: self._open[h].span_id):
            span = self._open[handle]
            span.end = ts
            span.meta.setdefault("truncated", True)
        self._open.clear()

    # ------------------------------------------------------------- queries

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def spans_named(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]

    # -------------------------------------------------------------- export

    @staticmethod
    def _us(ts: float) -> int:
        return int(round(ts * 1e6))

    def chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON array, one event per line.

        The output is a valid JSON document *and* line-structured, so it
        both opens in Perfetto and diffs/streams cleanly.  Event order and
        content are fully determined by the recorded data — no wall-clock,
        pids or environment leak in — so seeded DES runs reproduce the
        file byte-for-byte.
        """
        events: list[dict[str, Any]] = []
        replicas = sorted(
            {s.replica for s in self.spans} | {i.replica for i in self.instants}
        )
        for replica in replicas:
            events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": replica,
                    "tid": 0,
                    "args": {"name": f"replica {replica}"},
                }
            )
            for lane, label in _LANES.items():
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": replica,
                        "tid": lane,
                        "args": {"name": label},
                    }
                )
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": _LANES.get(span.lane, "lifecycle"),
                    "pid": span.replica,
                    "tid": span.lane,
                    "ts": self._us(span.start),
                    "dur": self._us(end) - self._us(span.start),
                    "args": {
                        "key": span.key,
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        **span.meta,
                    },
                }
            )
        for entry in self.instants:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": entry.name,
                    "cat": _LANES.get(entry.lane, "lifecycle"),
                    "pid": entry.replica,
                    "tid": entry.lane,
                    "ts": self._us(entry.ts),
                    "args": entry.meta,
                }
            )
        lines = ",\n".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) for event in events
        )
        return "[\n" + lines + "\n]\n"

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.chrome_trace())

    def render_text(self, limit: int | None = None) -> str:
        """Time-ordered plain-text rendering of spans and instants."""
        rows: list[tuple[float, int, str]] = []
        for span in self.spans:
            detail = " ".join(f"{k}={v}" for k, v in sorted(span.meta.items()))
            rows.append(
                (
                    span.start,
                    span.span_id,
                    f"{span.start:9.4f}  {'<' + span.name:<14} r{span.replica:<3} "
                    f"{span.key} {detail}".rstrip(),
                )
            )
            if span.end is not None:
                rows.append(
                    (
                        span.end,
                        span.span_id,
                        f"{span.end:9.4f}  {span.name + '>':<14} r{span.replica:<3} "
                        f"{span.key} dur={span.duration * 1000:.2f}ms",
                    )
                )
        for index, entry in enumerate(self.instants):
            detail = " ".join(f"{k}={v}" for k, v in sorted(entry.meta.items()))
            rows.append(
                (
                    entry.ts,
                    1_000_000 + index,
                    f"{entry.ts:9.4f}  {entry.name:<14} r{entry.replica:<3} {detail}".rstrip(),
                )
            )
        rows.sort(key=lambda r: (r[0], r[1]))
        if limit is not None:
            rows = rows[:limit]
        header = f"{'time':>9}  {'event':<14} who  detail"
        return "\n".join([header, "-" * len(header)] + [r[2] for r in rows])


class NullTracer(Tracer):
    """Tracer that records nothing (metrics-only observability)."""

    enabled = False

    def begin(self, replica, name, key, ts, parent=None, lane=LANE_LIFECYCLE, **meta):  # type: ignore[override]
        return Span(span_id=0, name=name, replica=replica, key=key, start=ts)

    def end(self, replica, name, key, ts, **meta):  # type: ignore[override]
        return None

    def instant(self, replica, name, ts, lane=LANE_LIFECYCLE, **meta):  # type: ignore[override]
        return Instant(ts=ts, name=name, replica=replica)
