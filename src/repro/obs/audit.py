"""The online auditor: streaming cross-replica safety invariants.

Generalises :class:`repro.harness.invariants.CommitAuditor` (post-hoc,
raising) into a checker that consumes the observer event stream *during*
the run and accumulates structured :class:`Violation` reports instead of
raising — Byzantine experiments want to observe the violation, not die
on it.  Invariants checked:

* **conflicting-commit** — two replicas commit different blocks at the
  same height (the safety property; must never fire with ``<= f`` faults);
* **non-monotone-commit** / **duplicate-commit** — a replica's committed
  heights regress or repeat;
* **non-monotone-view** — a replica's current view decreases;
* **equivocation** — more than one block digest enters the prepare phase
  at the same ``(view, height)`` across the cluster (an equivocating
  leader; safe protocols tolerate it, the auditor still reports it);
* **conflicting-qc** / **qc-quorum-short** / **qc-bad-signer** /
  **invalid-qc** — QC validity and quorum membership at formation time;
* **duplicate-execution** — the same ``(client, sequence)`` operation is
  committed twice on one replica (protocol severity: the ledger's
  execution dedup makes re-proposed commits benign; true exactly-once
  is judged by the history checker against execution counters);
* **reply-divergence** — replicas disagree on a committed operation's
  result digest (a :class:`~repro.harness.failures.ReplyForger`).

Each violation embeds the relevant flight-recorder window of every
replica involved, so a report is a self-contained forensic artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.flight import FlightEvent, FlightRecorder

#: Severity classes, roughly "how bad is this for the paper's claims".
SEV_SAFETY = "safety"
SEV_BYZANTINE = "byzantine"
SEV_PROTOCOL = "protocol"


@dataclass(frozen=True)
class Violation:
    """One structured invariant violation with its forensic window."""

    kind: str
    severity: str
    time: float
    replicas: tuple[int, ...]
    view: int
    height: int
    detail: str
    #: Trailing flight-recorder events per involved replica at flag time.
    window: tuple[tuple[int, tuple[FlightEvent, ...]], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "time": self.time,
            "replicas": list(self.replicas),
            "view": self.view,
            "height": self.height,
            "detail": self.detail,
            "window": {
                str(replica): [
                    {
                        "seq": e.seq,
                        "time": e.time,
                        "kind": e.kind,
                        "view": e.view,
                        "height": e.height,
                        "digest": e.digest.hex()[:16],
                        "detail": e.detail,
                    }
                    for e in events
                ]
                for replica, events in self.window
            },
        }


@dataclass
class _QCSeen:
    digest: bytes
    replica: int


class OnlineAuditor:
    """Streaming invariant checker over the cluster-wide event stream.

    Construct unparameterised, then let the runtime call
    :meth:`configure` once the cluster shape is known (both
    :class:`~repro.harness.des_runtime.DESCluster` and
    :class:`~repro.runtime.cluster.LocalCluster` do this when their
    observability carries an auditor).
    """

    def __init__(self, window: int = 24) -> None:
        self.window_size = window
        self.num_replicas: int | None = None
        self.quorum: int | None = None
        self._qc_validator: Callable[[Any], bool] | None = None
        #: Recorders to pull violation windows from (replica_id -> ring).
        self.recorders: dict[int, FlightRecorder] = {}

        self.violations: list[Violation] = []
        self.events_audited = 0
        self.last_commit_time: float = 0.0
        self._flagged: set[tuple] = set()

        self._commit_digest_by_height: dict[int, tuple[bytes, int]] = {}
        self._last_commit_height: dict[int, int] = {}
        self._committed_digests: dict[int, set[bytes]] = {}
        self._last_view: dict[int, int] = {}
        self._prepare_digests: dict[tuple[int, int], dict[bytes, int]] = {}
        self._qc_by_key: dict[tuple[str, int, int], _QCSeen] = {}
        self._executed: dict[int, set[tuple[int, int]]] = {}
        self._reply_digests: dict[tuple[int, int], tuple[bytes, int]] = {}

    # ------------------------------------------------------------- wiring

    def configure(
        self,
        num_replicas: int,
        quorum: int,
        qc_validator: Callable[[Any], bool] | None = None,
    ) -> None:
        self.num_replicas = num_replicas
        self.quorum = quorum
        self._qc_validator = qc_validator

    @property
    def ok(self) -> bool:
        return not self.violations

    def _flag(
        self,
        kind: str,
        severity: str,
        time: float,
        replicas: tuple[int, ...],
        view: int,
        height: int,
        detail: str,
        dedup: tuple | None = None,
    ) -> None:
        key = dedup if dedup is not None else (kind, view, height, replicas)
        if key in self._flagged:
            return
        self._flagged.add(key)
        window = tuple(
            (replica, tuple(self.recorders[replica].window(last=self.window_size)))
            for replica in replicas
            if replica in self.recorders
        )
        self.violations.append(
            Violation(
                kind=kind,
                severity=severity,
                time=time,
                replicas=replicas,
                view=view,
                height=height,
                detail=detail,
                window=window,
            )
        )

    # ------------------------------------------- observer-stream entry points

    def on_view_entered(self, replica: int, view: int, time: float) -> None:
        self.events_audited += 1
        last = self._last_view.get(replica)
        if last is not None and view <= last:
            self._flag(
                "non-monotone-view",
                SEV_PROTOCOL,
                time,
                (replica,),
                view,
                -1,
                f"replica {replica} entered view {view} after view {last}",
                dedup=("non-monotone-view", replica, view, last),
            )
        if last is None or view > last:
            self._last_view[replica] = view

    def on_prepare(self, replica: int, digest: bytes, view: int, height: int, time: float) -> None:
        """A block entered the prepare phase on ``replica``.

        More than one digest at the same ``(view, height)`` across the
        cluster means the leader equivocated: each replica prepare-votes
        at most one block per slot, so the conflicting proposals can
        never both gather a quorum — but the auditor reports the attempt.
        """
        self.events_audited += 1
        slot = (view, height)
        seen = self._prepare_digests.get(slot)
        if seen is None:
            self._prepare_digests[slot] = {digest: replica}
            return
        if digest not in seen:
            other_digest, other_replica = next(iter(seen.items()))
            seen[digest] = replica
            self._flag(
                "equivocation",
                SEV_BYZANTINE,
                time,
                (other_replica, replica),
                view,
                height,
                f"two prepare-phase blocks at view={view} height={height}: "
                f"{other_digest.hex()[:12]} (replica {other_replica}) vs "
                f"{digest.hex()[:12]} (replica {replica})",
                dedup=("equivocation", view, height),
            )

    def on_qc(
        self,
        replica: int,
        digest: bytes,
        phase: str,
        view: int,
        time: float,
        qc: Any = None,
    ) -> None:
        self.events_audited += 1
        height = qc.block.height if qc is not None else -1
        key = (phase, view, height)
        seen = self._qc_by_key.get(key)
        if seen is None:
            self._qc_by_key[key] = _QCSeen(digest, replica)
        elif seen.digest != digest:
            self._flag(
                "conflicting-qc",
                SEV_SAFETY,
                time,
                (seen.replica, replica),
                view,
                height,
                f"two {phase} QCs at view={view} height={height}: "
                f"{seen.digest.hex()[:12]} vs {digest.hex()[:12]}",
                dedup=("conflicting-qc", key),
            )
        if qc is None:
            return
        if self._qc_validator is not None and not self._qc_validator(qc):
            self._flag(
                "invalid-qc",
                SEV_SAFETY,
                time,
                (replica,),
                view,
                height,
                f"{phase} QC over {digest.hex()[:12]} failed signature verification",
                dedup=("invalid-qc", key, digest),
            )
        signature = getattr(qc, "signature", None)
        signers = getattr(signature, "signers", None)
        if signers is None:
            return
        signers = frozenset(signers)
        if self.quorum is not None and len(signers) < self.quorum:
            self._flag(
                "qc-quorum-short",
                SEV_SAFETY,
                time,
                (replica,),
                view,
                height,
                f"{phase} QC carries {len(signers)} signers < quorum {self.quorum}",
                dedup=("qc-quorum-short", key, digest),
            )
        if self.num_replicas is not None:
            rogue = [s for s in signers if not 0 <= s < self.num_replicas]
            if rogue:
                self._flag(
                    "qc-bad-signer",
                    SEV_SAFETY,
                    time,
                    (replica,),
                    view,
                    height,
                    f"{phase} QC signed by non-members {sorted(rogue)}",
                    dedup=("qc-bad-signer", key, digest),
                )

    def on_commit(
        self, replica: int, digest: bytes, height: int, view: int, time: float
    ) -> None:
        self.events_audited += 1
        self.last_commit_time = time
        known = self._commit_digest_by_height.get(height)
        if known is None:
            self._commit_digest_by_height[height] = (digest, replica)
        elif known[0] != digest:
            self._flag(
                "conflicting-commit",
                SEV_SAFETY,
                time,
                (known[1], replica),
                view,
                height,
                f"height {height} committed as {known[0].hex()[:12]} by replica "
                f"{known[1]} but {digest.hex()[:12]} by replica {replica}",
                dedup=("conflicting-commit", height),
            )
        last = self._last_commit_height.get(replica, -1)
        digests = self._committed_digests.setdefault(replica, set())
        if digest in digests:
            self._flag(
                "duplicate-commit",
                SEV_SAFETY,
                time,
                (replica,),
                view,
                height,
                f"replica {replica} committed block {digest.hex()[:12]} twice",
                dedup=("duplicate-commit", replica, digest),
            )
        elif height <= last:
            self._flag(
                "non-monotone-commit",
                SEV_SAFETY,
                time,
                (replica,),
                view,
                height,
                f"replica {replica} committed height {height} after height {last}",
                dedup=("non-monotone-commit", replica, height, last),
            )
        digests.add(digest)
        if height > last:
            self._last_commit_height[replica] = height

    # -------------------------------------------- cluster-level entry points

    def on_commit_block(self, replica: int, block: Any, time: float) -> None:
        """Duplicate op commits: commit listeners feed whole blocks.

        Committing the same ``(client, sequence)`` key twice is *not* by
        itself a safety violation — it happens legitimately when a view
        change re-proposes in-flight operations and the abandoned
        leader's block later commits anyway (e.g. Marlin's Case R2
        recovery), and the ledger's execution-layer dedup applies each
        key exactly once regardless.  It is flagged at protocol severity
        as forensic signal; true exactly-once is checked end-to-end
        against the ledger's execution counter by the adversary
        subsystem's :class:`~repro.adversary.checker.SafetyChecker`.
        """
        executed = self._executed.setdefault(replica, set())
        for op in block.operations:
            key = (op.client_id, op.sequence)
            if key in executed:
                self._flag(
                    "duplicate-execution",
                    SEV_PROTOCOL,
                    time,
                    (replica,),
                    block.view,
                    block.height,
                    f"replica {replica} committed client {key[0]} seq {key[1]} "
                    f"twice (deduplicated at execution)",
                    dedup=("duplicate-execution", replica, key),
                )
            executed.add(key)

    def tap(self, envelope: Any) -> None:
        """Network tap: cross-check the result digests replicas report.

        Correct replicas execute the same committed prefix and therefore
        agree on every operation's result digest; a divergence is a lying
        replica (``ReplyForger``) or non-deterministic execution.
        """
        payload = envelope.payload
        n = self.num_replicas
        if n is not None and envelope.src >= n:
            return
        digest = getattr(payload, "result_digest", None)
        if digest is not None:
            if not digest:
                return
            self._check_reply(
                payload.replica, payload.client_id, payload.sequence, digest, envelope.sent_at
            )
            return
        digests = getattr(payload, "result_digests", None)
        if digests:
            for (client_id, sequence), result_digest in zip(payload.op_keys, digests):
                self._check_reply(
                    payload.replica, client_id, sequence, result_digest, envelope.sent_at
                )

    def _check_reply(
        self, replica: int, client_id: int, sequence: int, digest: bytes, time: float
    ) -> None:
        self.events_audited += 1
        key = (client_id, sequence)
        known = self._reply_digests.get(key)
        if known is None:
            self._reply_digests[key] = (digest, replica)
        elif known[0] != digest:
            self._flag(
                "reply-divergence",
                SEV_BYZANTINE,
                time,
                (known[1], replica),
                -1,
                -1,
                f"client {client_id} seq {sequence}: replica {known[1]} reported "
                f"{known[0].hex()[:12]} but replica {replica} reported {digest.hex()[:12]}",
                dedup=("reply-divergence", key),
            )

    # ------------------------------------------------------------- reports

    def report(self) -> dict[str, Any]:
        """JSON-able structured report of everything the auditor saw."""
        by_kind: dict[str, int] = {}
        for violation in self.violations:
            by_kind[violation.kind] = by_kind.get(violation.kind, 0) + 1
        return {
            "ok": self.ok,
            "events_audited": self.events_audited,
            "last_commit_time": self.last_commit_time,
            "violations_by_kind": by_kind,
            "violations": [v.to_dict() for v in self.violations],
        }
