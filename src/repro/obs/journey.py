"""End-to-end request journeys: sampling, recording, critical-path analysis.

A **journey** is the life of one client command, keyed by
``(client_id, sequence)`` — the identity that already travels inside
every wire message (``ClientRequest``, request batches, ``ReplyBatch``
op keys, ``ClientReply``) and inside every ``Operation._key``.  Because
that identity is ubiquitous, the trace context needs **zero wire-format
changes**: the sample bit is re-derived anywhere from ``(seed,
client_id)``, so enabling tracing never changes a message size, a
network event, or the simulated schedule.  The DES speed benchmark's
event-count invariance gate (``bench_journey_overhead.py``) enforces
exactly that: the observer must never steer.

Instrumented layers append **checkpoints** ``(label, time)``:

* client side — ``submit``, ``routed`` (sharded runs), ``retransmit``
  (annotation), ``certified`` (the f+1 reply certificate);
* replica intake — ``admitted`` (real client mode, via
  ``client_admitted``);
* the proposing leader — ``proposed``, ``qc:<phase>`` per phase QC,
  ``committed``, ``executed`` (reply emission).

The critical-path analyzer sorts each journey's first occurrence of
every checkpoint by time and charges the gap *ending* at a checkpoint to
that checkpoint's stage.  Because the chain is contiguous from
``submit`` to ``certified``, per-journey stage durations telescope to the
end-to-end latency **exactly**; the aggregate waterfall checks the
weaker, distribution-level invariant that the per-stage p50 sum
reconciles with the end-to-end p50 (the
:class:`~repro.harness.metrics.LatencyRecorder` numbers) within a few
percent.

Sampling is deterministic and seed-derived: ``crc32(seed:client_id)``
against the rate threshold, never Python's salted ``hash()`` and never
an RNG draw (which would perturb the event stream).  Same seed → the
same sampled client set → a byte-identical journey blob
(:func:`journeys_blob`, canonical codec, integer-microsecond
timestamps) across runs and across ``jobs=`` fan-outs.
"""

from __future__ import annotations

import json
import zlib
from typing import TYPE_CHECKING, Any, Iterable

from repro.common.encoding import encode

if TYPE_CHECKING:  # the harness package imports back into repro.obs
    from repro.harness.metrics import LatencyRecorder

JOURNEY_MAGIC = "marlin-journeys-v1"

#: Checkpoint labels, in causal order along the request's critical path.
CK_SUBMIT = "submit"
CK_ROUTED = "routed"
CK_ADMITTED = "admitted"
CK_PROPOSED = "proposed"
CK_QC_PREFIX = "qc:"  # qc:prepare, qc:commit, qc:pre-commit, ...
CK_COMMITTED = "committed"
CK_EXECUTED = "executed"
CK_CERTIFIED = "certified"
#: Annotation, not a critical-path checkpoint (it marks a resend, not a
#: stage boundary).
CK_RETRANSMIT = "retransmit"

#: Stage charged to the latency gap that *ends* at each checkpoint.
STAGE_OF_CHECKPOINT = {
    CK_ROUTED: "routing",
    CK_ADMITTED: "net_to_leader",
    CK_PROPOSED: "leader_staging",
    CK_COMMITTED: "commit_apply",
    CK_EXECUTED: "execution",
    CK_CERTIFIED: "reply_fanin",
}

#: Causal rank per checkpoint — the tie-breaker when two checkpoints
#: carry the same simulated timestamp (common in the DES, where several
#: handlers run at one instant).
_RANK = {
    CK_SUBMIT: 0,
    CK_ROUTED: 1,
    CK_ADMITTED: 2,
    CK_PROPOSED: 3,
    "qc:pre-prepare": 4,
    "qc:prepare": 5,
    "qc:pre-commit": 6,
    "qc:commit": 7,
    CK_COMMITTED: 9,
    CK_EXECUTED: 10,
    CK_CERTIFIED: 11,
}
_RANK_UNKNOWN_QC = 8

_SAMPLE_SPACE = 10_000  # sampling resolution: basis points


def stage_of(checkpoint: str) -> str:
    """The waterfall stage name for the gap ending at ``checkpoint``."""
    if checkpoint.startswith(CK_QC_PREFIX):
        return "consensus_" + checkpoint[len(CK_QC_PREFIX):]
    return STAGE_OF_CHECKPOINT.get(checkpoint, checkpoint)


def _rank(checkpoint: str) -> int:
    known = _RANK.get(checkpoint)
    if known is not None:
        return known
    return _RANK_UNKNOWN_QC if checkpoint.startswith(CK_QC_PREFIX) else 12


def sample_bit(seed: int, client_id: int, threshold: int) -> bool:
    """Deterministic, seed-derived sample decision for one client.

    ``threshold`` is the sampling rate in basis points (0..10000).  The
    hash is :func:`zlib.crc32` — stable across processes and Python
    versions, unlike the salted builtin ``hash`` — so every layer of the
    stack (client pools, replica observers, shard groups, sweep workers)
    independently derives the *same* bit without any wire propagation.
    """
    if threshold >= _SAMPLE_SPACE:
        return True
    if threshold <= 0:
        return False
    return zlib.crc32(b"%d:%d" % (seed, client_id)) % _SAMPLE_SPACE < threshold


class JourneyRecorder:
    """Collects checkpoint events for every sampled request.

    One recorder serves a whole run — on a sharded deployment the single
    instance is shared by every group (journey keys are globally unique,
    clients route to exactly one group).  Recording is an ``O(1)`` dict
    append with no allocation beyond the event tuple; there are no timer
    or network interactions, so the simulated schedule is untouched.
    """

    __slots__ = ("seed", "rate", "enabled", "_threshold", "_sampled", "_events")

    def __init__(self, seed: int, rate: float = 1.0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.seed = seed
        self.rate = rate
        self._threshold = int(round(rate * _SAMPLE_SPACE))
        #: False when the rate rounds to zero — callers then skip all
        #: journey plumbing entirely (the ~0%-overhead disabled mode).
        self.enabled = self._threshold > 0
        self._sampled: dict[int, bool] = {}
        self._events: dict[tuple[int, int], list[tuple[str, float]]] = {}

    # ---------------------------------------------------------- recording

    def sampled(self, client_id: int) -> bool:
        """Whether this client's requests are traced (memoized)."""
        bit = self._sampled.get(client_id)
        if bit is None:
            bit = sample_bit(self.seed, client_id, self._threshold)
            self._sampled[client_id] = bit
        return bit

    def record(self, client_id: int, sequence: int, checkpoint: str, when: float) -> None:
        """Append one checkpoint; the caller has already sample-checked."""
        key = (client_id, sequence)
        events = self._events.get(key)
        if events is None:
            events = []
            self._events[key] = events
        events.append((checkpoint, when))

    def record_op(self, client_id: int, sequence: int, checkpoint: str, when: float) -> None:
        """Sample-checking variant of :meth:`record`."""
        if self.sampled(client_id):
            self.record(client_id, sequence, checkpoint, when)

    def record_ops(self, operations: Iterable[Any], checkpoint: str, when: float) -> None:
        """Record one checkpoint for every sampled op of a block/batch.

        Hot path — runs once per proposed/committed block over all its
        operations, so the memo and event dicts are walked inline rather
        than through :meth:`sampled`/:meth:`record` (two saved method
        calls per op, which is measurable at paper-scale batch sizes).
        """
        memo = self._sampled
        events_map = self._events
        seed = self.seed
        threshold = self._threshold
        event = (checkpoint, when)
        for op in operations:
            client_id = op.client_id
            bit = memo.get(client_id)
            if bit is None:
                bit = sample_bit(seed, client_id, threshold)
                memo[client_id] = bit
            if bit:
                key = op._key
                events = events_map.get(key)
                if events is None:
                    events = events_map[key] = []
                events.append(event)

    def record_keys(
        self, keys: Iterable[tuple[int, int]], checkpoint: str, when: float
    ) -> None:
        """Record one checkpoint for already-sampled journey keys.

        The per-block leader loops (proposed/qc/committed) pre-filter
        once via :meth:`sampled_keys`; this appends to each journey with
        no further sampling work — one method call per block, not per op.
        """
        events_map = self._events
        event = (checkpoint, when)
        for key in keys:
            events = events_map.get(key)
            if events is None:
                events = events_map[key] = []
            events.append(event)

    def sampled_keys(self, operations: Iterable[Any]) -> list[tuple[int, int]]:
        """The ``(client, seq)`` keys of the sampled ops, memo walked inline."""
        memo = self._sampled
        seed = self.seed
        threshold = self._threshold
        keys = []
        for op in operations:
            client_id = op.client_id
            bit = memo.get(client_id)
            if bit is None:
                bit = sample_bit(seed, client_id, threshold)
                memo[client_id] = bit
            if bit:
                keys.append(op._key)
        return keys

    # ----------------------------------------------------------- readouts

    def __len__(self) -> int:
        return len(self._events)

    def journeys(self) -> list[tuple[tuple[int, int], list[tuple[str, float]]]]:
        """All journeys, key-sorted, each journey's events in causal order."""
        return [
            (key, sorted(events, key=lambda e: (e[1], _rank(e[0]), e[0])))
            for key, events in sorted(self._events.items())
        ]


# ---------------------------------------------------------------------------
# Critical-path analysis


def decompose(events: list[tuple[str, float]]) -> tuple[list[tuple[str, float]], float] | None:
    """One journey's ``([(stage, duration), ...], end_to_end)`` breakdown.

    Takes the earliest occurrence of each checkpoint (re-proposals after
    a failed view leave duplicates), truncates the chain at ``certified``
    (a straggling proposer may execute after the client already holds its
    certificate — that work is off the critical path), and charges each
    gap to the stage of the checkpoint that ends it.  Returns ``None``
    for incomplete journeys (no submit or no certificate yet).
    """
    first: dict[str, float] = {}
    for label, when in events:
        if label == CK_RETRANSMIT:
            continue
        known = first.get(label)
        if known is None or when < known:
            first[label] = when
    submitted = first.get(CK_SUBMIT)
    certified = first.get(CK_CERTIFIED)
    if submitted is None or certified is None:
        return None
    points = sorted(
        ((label, when) for label, when in first.items() if when <= certified),
        key=lambda item: (item[1], _rank(item[0]), item[0]),
    )
    if points[0][0] != CK_SUBMIT or points[-1][0] != CK_CERTIFIED:
        return None
    stages: list[tuple[str, float]] = []
    previous = submitted
    for label, when in points[1:]:
        stages.append((stage_of(label), when - previous))
        previous = when
    return stages, certified - submitted


def _stage_order_key(stage: str) -> tuple[int, str]:
    for checkpoint, name in STAGE_OF_CHECKPOINT.items():
        if name == stage:
            return (_rank(checkpoint), stage)
    if stage.startswith("consensus_"):
        return (_rank(CK_QC_PREFIX + stage[len("consensus_"):]), stage)
    return (13, stage)


def build_waterfall(
    recorder: JourneyRecorder,
    end_to_end: LatencyRecorder | float | None = None,
    window_start: float = 0.0,
) -> dict[str, Any]:
    """Aggregate the sampled journeys into a latency waterfall.

    Per stage: weighted ``count/mean/p50/p90/p99`` over every complete
    journey submitted at or after ``window_start`` (pass the warm-up
    boundary so the waterfall matches the run's measurement window).
    ``end_to_end`` — the run's :class:`LatencyRecorder` (or its p50) —
    anchors the reconciliation block: the sum of per-stage p50s must
    land within a few percent of the recorder's end-to-end p50, the
    invariant the CI latency smoke asserts.
    """
    from repro.harness.metrics import LatencyRecorder

    stage_recorders: dict[str, LatencyRecorder] = {}
    journey_e2e = LatencyRecorder()
    complete = incomplete = windowed_out = retransmits = 0
    for _key, events in recorder.journeys():
        retransmits += sum(1 for label, _ in events if label == CK_RETRANSMIT)
        submitted = min((t for label, t in events if label == CK_SUBMIT), default=None)
        if submitted is not None and submitted < window_start:
            windowed_out += 1
            continue
        breakdown = decompose(events)
        if breakdown is None:
            incomplete += 1
            continue
        stages, e2e = breakdown
        complete += 1
        journey_e2e.record(submitted, e2e)
        for stage, duration in stages:
            rec = stage_recorders.get(stage)
            if rec is None:
                rec = stage_recorders[stage] = LatencyRecorder()
            rec.record(submitted, duration)

    stages_out: dict[str, dict[str, float]] = {}
    stage_sum_p50 = 0.0
    for stage in sorted(stage_recorders, key=_stage_order_key):
        rec = stage_recorders[stage]
        p50 = rec.p50()
        stage_sum_p50 += p50
        stages_out[stage] = {
            "count": rec.count,
            "mean": rec.mean(),
            "p50": p50,
            "p90": rec.p90(),
            "p99": rec.p99(),
        }

    reconciliation: dict[str, float] = {
        "journey_p50": journey_e2e.p50(),
        "journey_mean": journey_e2e.mean(),
        "journey_p99": journey_e2e.p99(),
        "stage_sum_p50": stage_sum_p50,
    }
    reference = end_to_end.p50() if isinstance(end_to_end, LatencyRecorder) else end_to_end
    if reference is not None:
        reconciliation["recorder_p50"] = reference
        if reference > 0.0:
            reconciliation["error"] = abs(stage_sum_p50 - reference) / reference

    return {
        "seed": recorder.seed,
        "sample_rate": recorder.rate,
        "journeys": {
            "sampled": len(recorder),
            "complete": complete,
            "incomplete": incomplete,
            "windowed_out": windowed_out,
            "retransmits": retransmits,
        },
        "stages": stages_out,
        "end_to_end": reconciliation,
    }


def waterfall_json(waterfall: dict[str, Any]) -> str:
    """Canonical JSON for a waterfall — byte-identical for identical runs."""
    return json.dumps(waterfall, indent=2, sort_keys=True)


# ---------------------------------------------------------------------------
# Deterministic exports

_US = 1_000_000


def journeys_blob(recorder: JourneyRecorder) -> bytes:
    """The sampled journey set as one canonical-codec payload.

    Keys sorted, events in causal order, timestamps as integer
    microseconds (the codec has no float type) — the byte string is the
    determinism fingerprint the tests compare across runs and across
    ``jobs=`` fan-outs.
    """
    body = [
        JOURNEY_MAGIC,
        {"seed": recorder.seed, "rate_bp": recorder._threshold},
        [
            [client_id, sequence, [[label, round(when * _US)] for label, when in events]]
            for (client_id, sequence), events in recorder.journeys()
        ],
    ]
    return encode(body)


def slowest_journeys(
    recorder: JourneyRecorder, k: int, window_start: float = 0.0
) -> list[tuple[tuple[int, int], float, list[tuple[str, float]]]]:
    """The ``k`` slowest complete journeys: ``(key, e2e, checkpoints)``.

    Checkpoints are the deduplicated, time-ordered chain the analyzer
    used (earliest occurrence per label, truncated at ``certified``).
    Ties break on the journey key so the pick is deterministic.
    """
    ranked: list[tuple[float, tuple[int, int], list[tuple[str, float]]]] = []
    for key, events in recorder.journeys():
        submitted = min((t for label, t in events if label == CK_SUBMIT), default=None)
        if submitted is not None and submitted < window_start:
            continue
        breakdown = decompose(events)
        if breakdown is None:
            continue
        stages, e2e = breakdown
        chain = [(CK_SUBMIT, submitted)]
        cursor = submitted
        for stage, duration in stages:
            cursor += duration
            chain.append((stage, cursor))
        ranked.append((e2e, key, chain))
    ranked.sort(key=lambda item: (-item[0], item[1]))
    return [(key, e2e, chain) for e2e, key, chain in ranked[:k]]


def chrome_trace(
    recorder: JourneyRecorder, k: int = 10, window_start: float = 0.0
) -> dict[str, Any]:
    """Chrome ``trace_event`` JSON for the ``k`` slowest journeys.

    One complete ("X") event per stage, ``pid`` = client id, ``tid`` =
    sequence — load the file at ``chrome://tracing`` / Perfetto to see
    where each slow request's time went.
    """
    trace_events: list[dict[str, Any]] = []
    for (client_id, sequence), e2e, chain in slowest_journeys(recorder, k, window_start):
        # Chain entries after ``submit`` are already stage names.
        for (_label, start), (stage, end) in zip(chain, chain[1:]):
            trace_events.append(
                {
                    "name": stage,
                    "cat": "journey",
                    "ph": "X",
                    "ts": round(start * _US),
                    "dur": round((end - start) * _US),
                    "pid": client_id,
                    "tid": sequence,
                    "args": {"e2e_ms": round(e2e * 1000, 3)},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, recorder: JourneyRecorder, k: int = 10, window_start: float = 0.0
) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(recorder, k, window_start), fh, indent=1, sort_keys=True)
