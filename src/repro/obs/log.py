"""Stdlib ``logging`` wiring with per-replica context.

Library rule: nothing in ``repro.*`` ever calls ``logging.basicConfig``
or attaches handlers — importers keep full control of log routing.  The
CLI (an application) opts in via :func:`configure_cli_logging`, driven by
its ``--log-level`` flag.

:func:`replica_logger` returns a :class:`logging.LoggerAdapter` that
prefixes every record with ``[<protocol> r<id> v<view>]``, reading the
view through a callable so records always show the view current at emit
time.  All replica records flow through the ``repro.replica`` logger
subtree, so an application can silence or redirect one protocol with
standard logger configuration.
"""

from __future__ import annotations

import logging
from typing import Any, Callable, MutableMapping

LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


class ReplicaLogAdapter(logging.LoggerAdapter):
    """Injects replica id, current view and protocol into every record."""

    def __init__(
        self,
        logger: logging.Logger,
        protocol: str,
        replica_id: int,
        view_fn: Callable[[], int],
    ) -> None:
        super().__init__(logger, {"protocol": protocol, "replica": replica_id})
        self.protocol = protocol
        self.replica_id = replica_id
        self._view_fn = view_fn

    def process(
        self, msg: str, kwargs: MutableMapping[str, Any]
    ) -> tuple[str, MutableMapping[str, Any]]:
        prefix = f"[{self.protocol} r{self.replica_id} v{self._view_fn()}]"
        extra = kwargs.setdefault("extra", {})
        extra.setdefault("protocol", self.protocol)
        extra.setdefault("replica", self.replica_id)
        return f"{prefix} {msg}", kwargs


def replica_logger(
    protocol: str, replica_id: int, view_fn: Callable[[], int]
) -> ReplicaLogAdapter:
    """The logger a replica should emit through."""
    logger = logging.getLogger(f"repro.replica.{protocol}")
    return ReplicaLogAdapter(logger, protocol, replica_id, view_fn)


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (for harness/CLI modules)."""
    return logging.getLogger(name if name.startswith("repro") else f"repro.{name}")


def configure_cli_logging(level: str) -> None:
    """Application-side setup: one stderr handler on the root logger.

    Only the CLI entry point calls this; see the module docstring for the
    library rule.  Idempotent — re-running just adjusts the level.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"log level must be one of {LOG_LEVELS}, got {level!r}")
    numeric = getattr(logging, level.upper())
    root = logging.getLogger()
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)-7s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(numeric)
