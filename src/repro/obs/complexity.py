"""The complexity observatory: wire cost attributed to protocol structure.

A network tap (:meth:`ComplexityObservatory.tap` registered via the
transport's ``add_tap``) attributes every delivered envelope's messages,
wire bytes and authenticator count to three axes:

* **message type** — the payload class (``PhaseMsg``, ``VoteMsg``, ...);
* **protocol phase** — prepare / pre-commit / commit / decide /
  view-change / client / sync, derived from the payload;
* **view** — the view the message belongs to (consensus messages only).

This is the instrument behind the empirical Table 1: per-view cost-vs-n
points from DES runs feed :func:`fit_loglog_slope`, and the paper's O(n)
happy-path / O(n) view-change claims become assertions on the fitted
log-log slope (linear ⇒ slope ≈ 1; quadratic ⇒ slope ≈ 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

#: Phase buckets the observatory attributes costs to.
PHASE_BUCKETS = (
    "prepare",
    "pre-commit",
    "commit",
    "decide",
    "generic",
    "view-change",
    "client",
    "sync",
    "other",
)

_VOTE_PHASE_BUCKET = {
    "pre-prepare": "view-change",
    "prepare": "prepare",
    "precommit": "pre-commit",
    "commit": "commit",
    "decide": "decide",
    "generic": "generic",
    "view-change": "view-change",
}


@dataclass
class CostCell:
    """Accumulated cost of one attribution bucket."""

    messages: int = 0
    bytes: int = 0
    authenticators: int = 0

    def add(self, size: int, auth: int) -> None:
        self.messages += 1
        self.bytes += size
        self.authenticators += auth


class ComplexityObservatory:
    """Attributes delivered traffic per message type, phase and view."""

    def __init__(self, num_replicas: int | None = None) -> None:
        # Lazy import: obs must stay importable without the harness.
        from repro.harness.analytical import authenticators_in

        self._auth_of: Callable[[Any], int] = authenticators_in
        self.num_replicas = num_replicas
        self.armed = True
        self.per_type: dict[str, CostCell] = {}
        self.per_phase: dict[str, CostCell] = {}
        self.per_view: dict[int, CostCell] = {}
        self.total = CostCell()
        self.consensus = CostCell()
        self.client = CostCell()
        self._classify_cache: dict[type, tuple[str, str]] = {}

    # ------------------------------------------------------------- control

    def arm(self) -> None:
        """Start attributing (warm-up exclusion: construct disarmed)."""
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self) -> None:
        self.per_type.clear()
        self.per_phase.clear()
        self.per_view.clear()
        self.total = CostCell()
        self.consensus = CostCell()
        self.client = CostCell()

    # ------------------------------------------------------------ the tap

    def _classify(self, payload: Any) -> tuple[str, str]:
        """``(type name, phase bucket)`` for one payload, memoised by class.

        ``VoteMsg`` and ``PhaseMsg`` buckets depend on the carried phase,
        so only the static part is cached for them.
        """
        cls = type(payload)
        cached = self._classify_cache.get(cls)
        if cached is None:
            name = cls.__name__
            if name in ("VoteMsg", "PhaseMsg"):
                bucket = ""  # resolved per-message below
            elif name in ("ViewChangeMsg", "PrePrepareMsg", "AggregateNewView"):
                bucket = "view-change"
            elif name in (
                "SyncRequest",
                "SyncResponse",
                "StateTransferRequest",
                "StateTransferResponse",
            ):
                bucket = "sync"
            elif name in (
                "ClientRequest",
                "ClientRequestBatch",
                "ClientReply",
                "ReplyBatch",
                "ReadRequest",
                "ReadReply",
                "LeaseProbe",
                "LeaseAck",
            ):
                bucket = "client"
            else:
                bucket = "other"
            cached = (name, bucket)
            self._classify_cache[cls] = cached
        name, bucket = cached
        if not bucket:
            phase_value = payload.phase.value
            bucket = _VOTE_PHASE_BUCKET.get(phase_value, "other")
        return name, bucket

    def tap(self, envelope: Any) -> None:
        """Observe one delivered envelope (register via ``add_tap``)."""
        if not self.armed:
            return
        payload = envelope.payload
        name, bucket = self._classify(payload)
        size = envelope.size
        if bucket == "client":
            self.client.add(size, 0)
            self.total.add(size, 0)
            cell = self.per_type.get(name)
            if cell is None:
                cell = self.per_type[name] = CostCell()
            cell.add(size, 0)
            cell = self.per_phase.get(bucket)
            if cell is None:
                cell = self.per_phase[bucket] = CostCell()
            cell.add(size, 0)
            return
        auth = self._auth_of(payload)
        self.total.add(size, auth)
        self.consensus.add(size, auth)
        cell = self.per_type.get(name)
        if cell is None:
            cell = self.per_type[name] = CostCell()
        cell.add(size, auth)
        cell = self.per_phase.get(bucket)
        if cell is None:
            cell = self.per_phase[bucket] = CostCell()
        cell.add(size, auth)
        view = getattr(payload, "view", None)
        if view is not None:
            cell = self.per_view.get(view)
            if cell is None:
                cell = self.per_view[view] = CostCell()
            cell.add(size, auth)

    # ------------------------------------------------------------- readouts

    def views_observed(self) -> int:
        return len(self.per_view)

    def rows_by_type(self) -> list[tuple[str, CostCell]]:
        return sorted(self.per_type.items(), key=lambda kv: -kv[1].bytes)

    def rows_by_phase(self) -> list[tuple[str, CostCell]]:
        order = {bucket: index for index, bucket in enumerate(PHASE_BUCKETS)}
        return sorted(self.per_phase.items(), key=lambda kv: order.get(kv[0], 99))

    def rows_by_view(self) -> list[tuple[int, CostCell]]:
        return sorted(self.per_view.items())

    def snapshot(self) -> dict[str, Any]:
        def cell(c: CostCell) -> dict[str, int]:
            return {"messages": c.messages, "bytes": c.bytes, "authenticators": c.authenticators}

        return {
            "total": cell(self.total),
            "consensus": cell(self.consensus),
            "client": cell(self.client),
            "per_type": {name: cell(c) for name, c in self.rows_by_type()},
            "per_phase": {name: cell(c) for name, c in self.rows_by_phase()},
            "per_view": {str(view): cell(c) for view, c in self.rows_by_view()},
        }


# ---------------------------------------------------------------------------
# Slope fitting


def fit_loglog_slope(points: list[tuple[float, float]]) -> float:
    """Least-squares slope of ``log(cost)`` against ``log(n)``.

    For cost ``c(n) = a * n^k`` the fitted slope is ``k``: linear growth
    fits ≈ 1, quadratic ≈ 2.  Non-positive samples are skipped (a cost of
    zero carries no scaling information); fewer than two usable points
    return ``nan``.
    """
    logs = [
        (math.log(n), math.log(cost)) for n, cost in points if n > 0 and cost > 0
    ]
    if len(logs) < 2:
        return float("nan")
    mean_x = sum(x for x, _ in logs) / len(logs)
    mean_y = sum(y for _, y in logs) / len(logs)
    denominator = sum((x - mean_x) ** 2 for x, _ in logs)
    if denominator == 0:
        return float("nan")
    return sum((x - mean_x) * (y - mean_y) for x, y in logs) / denominator


@dataclass
class SlopeFit:
    """A fitted cost-vs-n curve and its verdict against a linearity bound."""

    metric: str
    points: list[tuple[int, float]] = field(default_factory=list)
    max_slope: float = 1.3

    @property
    def slope(self) -> float:
        return fit_loglog_slope([(float(n), cost) for n, cost in self.points])

    @property
    def linear(self) -> bool:
        slope = self.slope
        return not math.isnan(slope) and slope < self.max_slope

    def render(self) -> str:
        slope = self.slope
        verdict = "O(n) ✓" if self.linear else f"super-linear ✗ (bound {self.max_slope})"
        series = ", ".join(f"n={n}: {cost:,.0f}" for n, cost in self.points)
        return f"{self.metric}: slope {slope:.2f} → {verdict}  [{series}]"
