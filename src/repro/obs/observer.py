"""The observability facade the runtimes hand to each replica.

Protocol code never touches the registry or tracer directly; it calls the
semantic hooks on its :class:`ReplicaObs` (``phase_begin``,
``qc_formed``, ``block_committed``, ...).  The default observer is
:data:`NULL_OBS`, whose hooks are all no-ops, so un-observed runs pay one
no-op method call per instrumented site and allocate nothing.

:class:`RunObservability` bundles one metrics registry, one tracer and
the network counters for a whole cluster run, plus the export helpers the
CLI uses (JSON snapshot, Prometheus text, Chrome trace).
"""

from __future__ import annotations

import json
from typing import Any

from repro.obs.audit import OnlineAuditor
from repro.obs.flight import (
    EV_ADMIT,
    EV_COMMIT,
    EV_PHASE,
    EV_PROPOSE,
    EV_QC,
    EV_SYNC,
    EV_TIMEOUT,
    EV_VIEW,
    EV_VIEW_CHANGE,
    EV_VOTE,
    FlightRecorder,
    write_blackbox,
)
from repro.obs.journey import (
    CK_ADMITTED,
    CK_COMMITTED,
    CK_PROPOSED,
    CK_QC_PREFIX,
    JourneyRecorder,
)
from repro.obs.metrics import Counter, Histogram, MetricsRegistry, NetworkMetrics
from repro.obs.tracer import LANE_VIEW, NullTracer, Span, Tracer

#: Phases whose spans nest inside a block's root span, in lifecycle order.
PHASES = ("prepare", "pre-commit", "commit")


class NullReplicaObs:
    """No-op observer; the default for un-observed replicas."""

    enabled = False

    def bind(self, ctx: Any) -> None: ...

    def message_handled(self, payload: Any) -> None: ...

    def vote_sent(self, phase: Any) -> None: ...

    def view_entered(self, view: int, reason: str) -> None: ...

    def view_timeout(self, view: int) -> None: ...

    def view_change_event(self, name: str, view: int, **meta: Any) -> None: ...

    def view_change_done(self, view: int) -> None: ...

    def sync_requested(self, attempt: int) -> None: ...

    def block_proposed(self, digest: bytes, view: int, height: int) -> None: ...

    def ops_proposed(self, block: Any) -> None: ...

    def phase_begin(self, digest: bytes, phase: str, view: int, height: int | None = None) -> None: ...

    def phase_end(self, digest: bytes, phase: str) -> None: ...

    def qc_formed(self, digest: bytes, phase: str, view: int, qc: Any = None) -> None: ...

    def block_committed(
        self, digest: bytes, height: int, num_ops: int, view: int = -1
    ) -> None: ...

    def client_admitted(self, client_id: int, sequence: int) -> None: ...


NULL_OBS = NullReplicaObs()


class ReplicaObs(NullReplicaObs):
    """Metrics + spans for one replica, labelled with its id and protocol."""

    enabled = True

    def __init__(
        self,
        registry: MetricsRegistry,
        tracer: Tracer,
        replica_id: int,
        protocol: str,
    ) -> None:
        self.registry = registry
        self.tracer = tracer
        self.replica = replica_id
        self.protocol = protocol
        self._now = lambda: 0.0

        def counter(name: str, help_text: str, **labels: Any) -> Counter:
            return registry.counter(
                name, help_text, replica=replica_id, protocol=protocol, **labels
            )

        self._messages = counter("replica_messages_handled_total", "Inbound messages dispatched")
        self._votes = counter("replica_votes_sent_total", "Votes sent (all phases)")
        self._proposals = counter("replica_proposals_sent_total", "Proposals broadcast as leader")
        self._views_entered = counter("replica_views_entered_total", "Views entered (any cause)")
        self._view_changes = counter(
            "replica_view_changes_total", "Timeout/failure-triggered view changes"
        )
        self._timeouts = counter("replica_view_timeouts_total", "Pacemaker timer expirations")
        self._syncs = counter("replica_sync_requests_total", "Block-sync fetches issued")
        self._commits = counter("replica_blocks_committed_total", "Blocks committed")
        self._ops = counter("replica_ops_committed_total", "Operations committed (weighted)")
        self._commit_latency = registry.histogram(
            "commit_latency_seconds",
            "First-seen to committed, per block",
            replica=replica_id,
            protocol=protocol,
        )
        self._phase_hist: dict[str, Histogram] = {}
        self._phase_start: dict[tuple[bytes, str], float] = {}
        self._msg_kind: dict[type, Counter] = {}

    # ------------------------------------------------------------- plumbing

    def bind(self, ctx: Any) -> None:
        """Adopt the replica's clock (DES simulated time or wall-clock)."""
        self._now = lambda: ctx.now

    def _phase_histogram(self, phase: str) -> Histogram:
        hist = self._phase_hist.get(phase)
        if hist is None:
            hist = self.registry.histogram(
                "phase_duration_seconds",
                "Per-phase duration of the block lifecycle",
                replica=self.replica,
                protocol=self.protocol,
                phase=phase,
            )
            self._phase_hist[phase] = hist
        return hist

    @staticmethod
    def _key(digest: bytes) -> str:
        return digest.hex()[:16]

    # ----------------------------------------------------- counter hooks

    def message_handled(self, payload: Any) -> None:
        self._messages.inc()
        kind = type(payload)
        counter = self._msg_kind.get(kind)
        if counter is None:
            counter = self.registry.counter(
                "replica_messages_by_kind_total",
                "Inbound messages by payload type",
                replica=self.replica,
                protocol=self.protocol,
                kind=kind.__name__,
            )
            self._msg_kind[kind] = counter
        counter.inc()

    def vote_sent(self, phase: Any) -> None:
        self._votes.inc()

    def sync_requested(self, attempt: int) -> None:
        self._syncs.inc()

    # -------------------------------------------------------- view spans

    def view_entered(self, view: int, reason: str) -> None:
        self._views_entered.inc()
        if reason == "timeout":
            self._view_changes.inc()
        now = self._now()
        previous = self.tracer.open_span(self.replica, "view-change", str(view - 1))
        if previous is not None:
            self.tracer.end(self.replica, "view-change", str(view - 1), now, superseded=True)
        self.tracer.begin(
            self.replica, "view-change", str(view), now, lane=LANE_VIEW,
            view=view, reason=reason,
        )

    def view_timeout(self, view: int) -> None:
        self._timeouts.inc()
        self.tracer.instant(self.replica, "view-timeout", self._now(), lane=LANE_VIEW, view=view)

    def view_change_event(self, name: str, view: int, **meta: Any) -> None:
        self.tracer.instant(
            self.replica, name, self._now(), lane=LANE_VIEW, view=view, **meta
        )

    def view_change_done(self, view: int) -> None:
        """Normal case resumed: close the view's view-change span."""
        span = self.tracer.end(self.replica, "view-change", str(view), self._now())
        if span is not None:
            self._phase_histogram("view-change").observe(span.duration)

    # --------------------------------------------------- lifecycle spans

    def _root(self, digest: bytes, view: int, height: int | None) -> Span:
        key = self._key(digest)
        span = self.tracer.open_span(self.replica, "block", key)
        if span is None:
            span = self.tracer.begin(
                self.replica, "block", key, self._now(), view=view, height=height
            )
        return span

    def block_proposed(self, digest: bytes, view: int, height: int) -> None:
        self._proposals.inc()
        self._root(digest, view, height)
        self.tracer.instant(
            self.replica, "propose", self._now(), key=self._key(digest),
            view=view, height=height,
        )

    def phase_begin(self, digest: bytes, phase: str, view: int, height: int | None = None) -> None:
        handle = (digest, phase)
        if handle in self._phase_start:
            return
        now = self._now()
        self._phase_start[handle] = now
        root = self._root(digest, view, height)
        self.tracer.begin(
            self.replica, phase, self._key(digest), now, parent=root, view=view
        )

    def phase_end(self, digest: bytes, phase: str) -> None:
        started = self._phase_start.pop((digest, phase), None)
        if started is None:
            return
        now = self._now()
        self._phase_histogram(phase).observe(now - started)
        self.tracer.end(self.replica, phase, self._key(digest), now)

    def qc_formed(self, digest: bytes, phase: str, view: int, qc: Any = None) -> None:
        self.tracer.instant(
            self.replica, f"qc:{phase}", self._now(), key=self._key(digest), view=view
        )

    def block_committed(
        self, digest: bytes, height: int, num_ops: int, view: int = -1
    ) -> None:
        self._commits.inc()
        self._ops.inc(num_ops)
        now = self._now()
        for phase in PHASES:
            started = self._phase_start.pop((digest, phase), None)
            if started is not None:
                self._phase_histogram(phase).observe(now - started)
                self.tracer.end(self.replica, phase, self._key(digest), now)
        root = self.tracer.end(
            self.replica, "block", self._key(digest), now, committed=True, ops=num_ops
        )
        if root is not None:
            self._commit_latency.observe(root.duration)


class FlightRecordingObs(NullReplicaObs):
    """Observer that records flight events and feeds the online auditor.

    Wraps an inner observer (metrics + spans, or :data:`NULL_OBS` when
    only the recorder is wanted) so one ``attach_observer`` call wires a
    replica into all three layers.  ``message_handled`` is deliberately
    *not* recorded: the ring holds semantic protocol events, and skipping
    the per-message hot path keeps the recorder cheap enough to stay on.
    """

    enabled = True

    def __init__(
        self,
        inner: NullReplicaObs,
        recorder: FlightRecorder,
        auditor: OnlineAuditor | None = None,
    ) -> None:
        self._inner = inner
        self._inner_enabled = inner.enabled
        self.recorder = recorder
        self.auditor = auditor
        self._replica = recorder.replica_id
        self._now = lambda: 0.0

    def bind(self, ctx: Any) -> None:
        self._now = lambda: ctx.now
        self._inner.bind(ctx)

    # Hot path: counted by the inner observer only, never recorded.
    def message_handled(self, payload: Any) -> None:
        if self._inner_enabled:
            self._inner.message_handled(payload)

    def vote_sent(self, phase: Any) -> None:
        self.recorder.record(
            self._now(), EV_VOTE, -1, detail=getattr(phase, "value", "") or ""
        )
        if self._inner_enabled:
            self._inner.vote_sent(phase)

    def view_entered(self, view: int, reason: str) -> None:
        now = self._now()
        self.recorder.record(now, EV_VIEW, view, detail=reason)
        if self.auditor is not None:
            self.auditor.on_view_entered(self._replica, view, now)
        if self._inner_enabled:
            self._inner.view_entered(view, reason)

    def view_timeout(self, view: int) -> None:
        self.recorder.record(self._now(), EV_TIMEOUT, view)
        if self._inner_enabled:
            self._inner.view_timeout(view)

    def view_change_event(self, name: str, view: int, **meta: Any) -> None:
        self.recorder.record(self._now(), EV_VIEW_CHANGE, view, detail=name)
        if self._inner_enabled:
            self._inner.view_change_event(name, view, **meta)

    def view_change_done(self, view: int) -> None:
        self.recorder.record(self._now(), EV_VIEW_CHANGE, view, detail="done")
        if self._inner_enabled:
            self._inner.view_change_done(view)

    def sync_requested(self, attempt: int) -> None:
        self.recorder.record(self._now(), EV_SYNC, -1, detail=str(attempt))
        if self._inner_enabled:
            self._inner.sync_requested(attempt)

    def block_proposed(self, digest: bytes, view: int, height: int) -> None:
        self.recorder.record(self._now(), EV_PROPOSE, view, height, digest)
        if self._inner_enabled:
            self._inner.block_proposed(digest, view, height)

    def ops_proposed(self, block: Any) -> None:
        # Not recorded: the ring keys on the block digest (EV_PROPOSE),
        # per-op attribution is the journey layer's job.
        if self._inner_enabled:
            self._inner.ops_proposed(block)

    def phase_begin(self, digest: bytes, phase: str, view: int, height: int | None = None) -> None:
        now = self._now()
        h = -1 if height is None else height
        self.recorder.record(now, EV_PHASE, view, h, digest, phase)
        if self.auditor is not None and phase == "prepare":
            self.auditor.on_prepare(self._replica, digest, view, h, now)
        if self._inner_enabled:
            self._inner.phase_begin(digest, phase, view, height)

    def phase_end(self, digest: bytes, phase: str) -> None:
        if self._inner_enabled:
            self._inner.phase_end(digest, phase)

    def qc_formed(self, digest: bytes, phase: str, view: int, qc: Any = None) -> None:
        now = self._now()
        height = qc.block.height if qc is not None else -1
        self.recorder.record(now, EV_QC, view, height, digest, phase)
        if self.auditor is not None:
            self.auditor.on_qc(self._replica, digest, phase, view, now, qc)
        if self._inner_enabled:
            self._inner.qc_formed(digest, phase, view, qc)

    def block_committed(
        self, digest: bytes, height: int, num_ops: int, view: int = -1
    ) -> None:
        now = self._now()
        self.recorder.record(now, EV_COMMIT, view, height, digest, str(num_ops))
        if self.auditor is not None:
            self.auditor.on_commit(self._replica, digest, height, view, now)
        if self._inner_enabled:
            self._inner.block_committed(digest, height, num_ops, view)

    def client_admitted(self, client_id: int, sequence: int) -> None:
        self.recorder.record(
            self._now(), EV_ADMIT, -1, detail=f"{client_id}:{sequence}"
        )
        if self._inner_enabled:
            self._inner.client_admitted(client_id, sequence)


class JourneyObs(NullReplicaObs):
    """Observer that pins block-path checkpoints onto sampled journeys.

    Wraps an inner observer exactly like :class:`FlightRecordingObs`, so
    journeys compose with metrics, spans, and the flight ring in one
    ``attach_observer`` call.  Only the **proposing** replica learns the
    digest→sampled-ops mapping (via the :meth:`ops_proposed` hook, which
    fires where the full block is in scope), so phase/commit checkpoints
    are recorded exactly once per request — on the leader's critical
    path — even though every replica carries this observer.
    """

    enabled = True

    def __init__(
        self, inner: NullReplicaObs, journey: "JourneyRecorder", replica_id: int
    ) -> None:
        self._inner = inner
        self._inner_enabled = inner.enabled
        #: The run's shared :class:`~repro.obs.journey.JourneyRecorder`
        #: (``ClientService`` reads it off ``replica.obs`` for the
        #: executed-at-proposer checkpoint).
        self.journey = journey
        self.replica = replica_id
        #: digest -> sampled op keys of blocks *this* replica proposed.
        self._block_keys: dict[bytes, list[tuple[int, int]]] = {}
        self._now = lambda: 0.0

    def bind(self, ctx: Any) -> None:
        self._now = lambda: ctx.now
        self._inner.bind(ctx)

    # Hot path: journeys key on semantic events only.
    def message_handled(self, payload: Any) -> None:
        if self._inner_enabled:
            self._inner.message_handled(payload)

    def vote_sent(self, phase: Any) -> None:
        if self._inner_enabled:
            self._inner.vote_sent(phase)

    def view_entered(self, view: int, reason: str) -> None:
        if self._inner_enabled:
            self._inner.view_entered(view, reason)

    def view_timeout(self, view: int) -> None:
        if self._inner_enabled:
            self._inner.view_timeout(view)

    def view_change_event(self, name: str, view: int, **meta: Any) -> None:
        if self._inner_enabled:
            self._inner.view_change_event(name, view, **meta)

    def view_change_done(self, view: int) -> None:
        if self._inner_enabled:
            self._inner.view_change_done(view)

    def sync_requested(self, attempt: int) -> None:
        if self._inner_enabled:
            self._inner.sync_requested(attempt)

    def block_proposed(self, digest: bytes, view: int, height: int) -> None:
        if self._inner_enabled:
            self._inner.block_proposed(digest, view, height)

    def ops_proposed(self, block: Any) -> None:
        operations = getattr(block, "operations", None)
        if operations:
            keys = self.journey.sampled_keys(operations)
            if keys:
                self._block_keys[block.digest] = keys
                self.journey.record_keys(keys, CK_PROPOSED, self._now())
        if self._inner_enabled:
            self._inner.ops_proposed(block)

    def phase_begin(self, digest: bytes, phase: str, view: int, height: int | None = None) -> None:
        if self._inner_enabled:
            self._inner.phase_begin(digest, phase, view, height)

    def phase_end(self, digest: bytes, phase: str) -> None:
        if self._inner_enabled:
            self._inner.phase_end(digest, phase)

    def qc_formed(self, digest: bytes, phase: str, view: int, qc: Any = None) -> None:
        keys = self._block_keys.get(digest)
        if keys:
            self.journey.record_keys(keys, CK_QC_PREFIX + phase, self._now())
        if self._inner_enabled:
            self._inner.qc_formed(digest, phase, view, qc)

    def block_committed(
        self, digest: bytes, height: int, num_ops: int, view: int = -1
    ) -> None:
        keys = self._block_keys.pop(digest, None)
        if keys:
            self.journey.record_keys(keys, CK_COMMITTED, self._now())
        if self._inner_enabled:
            self._inner.block_committed(digest, height, num_ops, view)

    def client_admitted(self, client_id: int, sequence: int) -> None:
        if self.journey.sampled(client_id):
            self.journey.record(client_id, sequence, CK_ADMITTED, self._now())
        if self._inner_enabled:
            self._inner.client_admitted(client_id, sequence)


class RunObservability:
    """One registry + tracer + network counters for a whole cluster run.

    ``flight=True`` adds a per-replica :class:`FlightRecorder`;
    ``audit=True`` additionally streams the events through an
    :class:`OnlineAuditor` (and implies ``flight``).  ``metrics=False``
    skips the per-replica metrics/span observer so a flight-only run
    pays just the ring append per event — the mode the DES speed
    benchmark's overhead guard measures.  ``journey`` takes a
    :class:`~repro.obs.journey.JourneyRecorder`: every replica observer
    is then wrapped in a :class:`JourneyObs` feeding that one shared
    recorder, and client layers (:class:`~repro.client.session.ClientSession`
    via :meth:`bind_client_session`, the workload pools) record the
    client-side checkpoints into it.
    """

    def __init__(
        self,
        trace: bool = True,
        flight: bool = False,
        audit: bool = False,
        metrics: bool = True,
        flight_capacity: int = 4096,
        journey: JourneyRecorder | None = None,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Tracer = Tracer() if trace else NullTracer()
        self._metrics_enabled = metrics
        self.net = NetworkMetrics(self.registry) if metrics else None
        self.flight = flight or audit
        self.flight_capacity = flight_capacity
        self.recorders: dict[int, FlightRecorder] = {}
        self.auditor: OnlineAuditor | None = OnlineAuditor() if audit else None
        if self.auditor is not None:
            self.auditor.recorders = self.recorders
        self.journey = journey if journey is not None and journey.enabled else None

    @property
    def metrics_enabled(self) -> bool:
        return self._metrics_enabled

    def journey_only(self) -> bool:
        """True when this layer carries nothing but a journey recorder.

        The one observability shape a sharded run accepts: the recorder
        is shared across groups (journey keys are globally unique), while
        registries/tracers/rings are inherently per-group.
        """
        return (
            self.journey is not None
            and not self._metrics_enabled
            and not self.flight
            and isinstance(self.tracer, NullTracer)
        )

    def replica_obs(self, replica_id: int, protocol: str) -> NullReplicaObs:
        inner: NullReplicaObs = (
            ReplicaObs(self.registry, self.tracer, replica_id, protocol)
            if self._metrics_enabled
            else NULL_OBS
        )
        if self.flight:
            recorder = FlightRecorder(replica_id, self.flight_capacity)
            self.recorders[replica_id] = recorder
            inner = FlightRecordingObs(inner, recorder, self.auditor)
        if self.journey is not None:
            inner = JourneyObs(inner, self.journey, replica_id)
        return inner

    def client_recorder(self, endpoint_id: int) -> FlightRecorder:
        """A flight ring for one client endpoint, included in black boxes.

        Client endpoint ids start above the replica range, so the rings
        share the ``recorders`` map (and therefore every
        :meth:`write_blackbox` dump) without collisions.
        """
        recorder = self.recorders.get(endpoint_id)
        if recorder is None:
            recorder = FlightRecorder(endpoint_id, self.flight_capacity)
            self.recorders[endpoint_id] = recorder
        return recorder

    def bind_client_session(self, session: Any) -> None:
        """Wire one protocol client session into this run's collectors.

        Gives the session the journey recorder when its client id is
        sampled (the session then records submit/retransmit/certified
        checkpoints) and, when the flight layer is armed, a client-path
        flight ring so black-box dumps embed the client side of a
        violation window.
        """
        journey = self.journey
        if journey is not None and journey.sampled(session.client_id):
            session.journey = journey
        if self.flight:
            session.flight = self.client_recorder(session.client_id)

    def finish(self, ts: float) -> None:
        self.tracer.finish(ts)

    # ---------------------------------------------------------- audit layer

    def audit_report(self) -> dict[str, Any]:
        """The auditor's structured report (empty shape when audit is off)."""
        if self.auditor is None:
            return {"ok": True, "events_audited": 0, "violations": [], "violations_by_kind": {}}
        return self.auditor.report()

    def write_blackbox(self, path: str, meta: dict[str, Any] | None = None) -> bytes:
        """Dump every replica's flight ring to a deterministic black box."""
        return write_blackbox(path, self.recorders, meta)

    # -------------------------------------------------------------- exports

    def snapshot(self) -> dict[str, Any]:
        """Per-replica series plus the cluster-wide aggregation."""
        return {
            "per_replica": self.registry.snapshot(),
            "cluster": self.registry.aggregate(drop_labels=("replica",)).snapshot(),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_json())

    def write_chrome_trace(self, path: str) -> None:
        self.tracer.write_chrome_trace(path)

    def phase_latency_summary(self) -> dict[str, dict[str, float]]:
        """Cluster-wide {phase: {count, mean, p50, p99}} from the histograms."""
        merged = self.registry.aggregate(drop_labels=("replica", "protocol"))
        out: dict[str, dict[str, float]] = {}
        for name, series_list in merged.snapshot()["histograms"].items():
            if name != "phase_duration_seconds":
                continue
            for series in series_list:
                phase = series["labels"].get("phase", "?")
                out[phase] = {
                    "count": series["count"],
                    "mean": series["mean"],
                    "p50": series["p50"],
                    "p99": series["p99"],
                }
        return out
