"""Per-replica flight recorder: a bounded ring of protocol events.

Every replica in an observed run keeps the last ``capacity`` protocol
events — proposals, votes, QC formations, view entries, commits, client
admissions — in a preallocated ring.  Recording one event is a tuple
build and a list store, cheap enough to leave on by default (the DES
speed benchmark guards the overhead).

On a safety violation, liveness stall, replica crash, or on demand, the
rings are serialised into a **black box**: a canonical-codec payload
(:mod:`repro.common.encoding`) that is byte-identical across re-runs of
the same seed.  The codec has no float type, so timestamps travel as
integer microseconds; :func:`decode_blackbox` converts them back.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.common.encoding import decode, encode

BLACKBOX_MAGIC = "marlin-blackbox-v1"

#: Event kinds, in the vocabulary the auditor and dump tooling share.
EV_PROPOSE = "propose"
EV_VOTE = "vote"
EV_QC = "qc"
EV_PHASE = "phase"
EV_VIEW = "view"
EV_TIMEOUT = "timeout"
EV_VIEW_CHANGE = "vc"
EV_COMMIT = "commit"
EV_ADMIT = "admit"
EV_SYNC = "sync"
# Client-path events (recorded by ClientSession when a run hands the
# session a flight ring) — a black box then embeds the client side of a
# violation window next to the replicas' protocol events.
EV_SUBMIT = "submit"
EV_RETRANSMIT = "retransmit"
EV_CERTIFIED = "certified"


class FlightEvent(NamedTuple):
    """One recorded protocol event (``height=-1`` / ``digest=b""`` = n/a)."""

    seq: int
    time: float
    kind: str
    view: int
    height: int
    digest: bytes
    detail: str


class FlightRecorder:
    """Bounded, allocation-light ring buffer of :class:`FlightEvent` s."""

    __slots__ = ("replica_id", "capacity", "_ring", "_count")

    def __init__(self, replica_id: int, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ValueError("flight recorder capacity must be positive")
        self.replica_id = replica_id
        self.capacity = capacity
        self._ring: list[tuple | None] = [None] * capacity
        self._count = 0

    def record(
        self,
        time: float,
        kind: str,
        view: int,
        height: int = -1,
        digest: bytes = b"",
        detail: str = "",
    ) -> None:
        seq = self._count
        self._ring[seq % self.capacity] = (seq, time, kind, view, height, digest, detail)
        self._count = seq + 1

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_recorded(self) -> int:
        """Events ever recorded, including those the ring has evicted."""
        return self._count

    def events(self) -> list[FlightEvent]:
        """Retained events, oldest first."""
        count, capacity = self._count, self.capacity
        if count <= capacity:
            raw: Iterable[tuple | None] = self._ring[:count]
        else:
            head = count % capacity
            raw = self._ring[head:] + self._ring[:head]
        return [FlightEvent(*item) for item in raw if item is not None]

    def window(self, last: int | None = None, since: float | None = None) -> list[FlightEvent]:
        """The trailing ``last`` events, optionally only those after ``since``."""
        events = self.events()
        if since is not None:
            events = [event for event in events if event.time >= since]
        if last is not None and len(events) > last:
            events = events[-last:]
        return events


# ---------------------------------------------------------------------------
# Black-box serialisation

_US = 1_000_000


def _event_to_wire(event: FlightEvent) -> list:
    return [
        event.seq,
        round(event.time * _US),
        event.kind,
        event.view,
        event.height,
        event.digest,
        event.detail,
    ]


def _event_from_wire(item: list) -> FlightEvent:
    seq, time_us, kind, view, height, digest, detail = item
    return FlightEvent(seq, time_us / _US, kind, view, height, digest, detail)


def encode_blackbox(
    recorders: dict[int, FlightRecorder], meta: dict[str, object] | None = None
) -> bytes:
    """Serialise every recorder into one deterministic black-box payload.

    ``meta`` values must be canonical-codec encodable (int/str/bytes/bool/
    None/lists/dicts — no floats; convert times to int microseconds).
    """
    body = [
        BLACKBOX_MAGIC,
        dict(meta or {}),
        [
            [replica_id, [_event_to_wire(e) for e in recorder.events()]]
            for replica_id, recorder in sorted(recorders.items())
        ],
    ]
    return encode(body)


def decode_blackbox(data: bytes) -> tuple[dict, dict[int, list[FlightEvent]]]:
    """Inverse of :func:`encode_blackbox`: ``(meta, {replica_id: events})``."""
    magic, meta, per_replica = decode(data)
    if magic != BLACKBOX_MAGIC:
        raise ValueError(f"not a flight-recorder black box (magic {magic!r})")
    return meta, {
        replica_id: [_event_from_wire(item) for item in events]
        for replica_id, events in per_replica
    }


def write_blackbox(
    path: str, recorders: dict[int, FlightRecorder], meta: dict[str, object] | None = None
) -> bytes:
    """Write the black box to ``path``; returns the encoded payload."""
    payload = encode_blackbox(recorders, meta)
    with open(path, "wb") as fh:
        fh.write(payload)
    return payload


def read_blackbox(path: str) -> tuple[dict, dict[int, list[FlightEvent]]]:
    with open(path, "rb") as fh:
        return decode_blackbox(fh.read())
