"""Basic HotStuff (PODC 2019), as reviewed in the paper's Section IV-A.

Normal case — three phases per block, each a CKPS consistent broadcast:

* **prepare**: leader proposes ``b`` extending ``block(highQC)`` with
  ``justify = highQC``; replicas vote under the safeNode rule (``b``
  extends the locked block, or the justify's view exceeds the lock's);
* **pre-commit**: leader broadcasts ``prepareQC(b)``; replicas record it
  as their new ``highQC`` and vote;
* **commit**: leader broadcasts ``precommitQC(b)``; replicas **lock** on
  it and vote; the combined ``commitQC`` is forwarded (DECIDE) and
  everyone commits.

The leader pipelines exactly like the Marlin implementation: when
``prepareQC(b_k)`` forms it both starts ``b_k``'s pre-commit phase and
proposes ``b_{k+1}`` justified by that QC — so HotStuff pays three
broadcast+vote rounds per block where Marlin pays two, the difference
every figure in the paper's evaluation measures.

View change: on timeout a replica enters ``v + 1`` and sends the new
leader a NEW-VIEW message carrying its ``prepareQC`` (here the reused
:class:`~repro.consensus.messages.ViewChangeMsg` with no partial
signature).  The leader picks the QC with the largest height from
``n - f`` messages and extends its block — a fresh three-phase round then
commits it, making the view change three phases as well.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.config import ClusterConfig
from repro.common.errors import InvalidVote
from repro.consensus.block import Block
from repro.consensus.context import NodeContext
from repro.consensus.costs import ZeroCostModel
from repro.consensus.crypto_service import CryptoService
from repro.consensus.messages import Justify, PhaseMsg, ViewChangeMsg, VoteMsg
from repro.consensus.pipeline import PipelineConfig
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.consensus.replica_base import ReplicaBase


def _vh(qc: QuorumCertificate) -> tuple[int, int]:
    """HotStuff orders QCs by (view, height); no Marlin ranks here."""
    return (qc.view, qc.block.height)


class HotStuffReplica(ReplicaBase):
    """One basic-HotStuff replica (pipelined, stable leader per view)."""

    def __init__(
        self,
        replica_id: int,
        config: ClusterConfig,
        ctx: NodeContext,
        crypto: CryptoService,
        costs: ZeroCostModel | None = None,
        rotation_interval: float | None = None,
        forward_requests: bool = True,
        pipeline: PipelineConfig | None = None,
    ) -> None:
        super().__init__(
            replica_id,
            config,
            ctx,
            crypto,
            costs,
            rotation_interval,
            forward_requests,
            pipeline,
        )
        self.prepare_qc: QuorumCertificate = self.genesis_qc  # highQC
        self.locked_qc: QuorumCertificate = self.genesis_qc  # precommitQC lock
        self._last_voted_vh: tuple[int, int] = (0, 0)
        self._leader_ready = False
        self._outstanding_prepare: bytes | None = None
        self._new_views: dict[int, dict[int, ViewChangeMsg]] = {}
        self._started_views: set[int] = set()
        self._verified_blocks: set[bytes] = set()
        self._handlers: dict[type, Callable[[int, Any], None]] = {
            **self._base_handlers(),
            PhaseMsg: self._on_phase_msg,
            VoteMsg: self._on_vote,
            ViewChangeMsg: self._on_new_view,
        }

    @property
    def handlers(self) -> dict[type, Callable[[int, Any], None]]:
        return self._handlers

    # ---------------------------------------------------------- view entry

    def _enter_view(self, view: int) -> None:
        self._leader_ready = False
        self._outstanding_prepare = None
        message = ViewChangeMsg(
            view=view,
            last_voted=self.prepare_qc.block,
            justify=Justify(self.prepare_qc),
            share=None,
        )
        self.ctx.send(self.leader_of(view), message)
        self.obs.view_change_event("new-view-sent", view, leader=self.leader_of(view))

    def _on_new_view(self, src: int, msg: ViewChangeMsg) -> None:
        if msg.view < self.cview or self.leader_of(msg.view) != self.id:
            return
        if msg.view in self._started_views:
            return
        if msg.justify is None or msg.justify.qc.phase != Phase.PREPARE:
            return
        self._charge_qc_verify(msg.justify.qc)
        if not self.crypto.qc_is_valid(msg.justify.qc):
            return
        bucket = self._new_views.setdefault(msg.view, {})
        bucket[src] = msg
        if len(bucket) >= self.config.quorum:
            self._start_view_as_leader(msg.view)

    def _start_view_as_leader(self, view: int) -> None:
        if view in self._started_views:
            return
        self._started_views.add(view)
        if self.cview < view:
            self._advance_view(view)
        messages = self._new_views.pop(view, {})
        best = self.prepare_qc
        for msg in messages.values():
            assert msg.justify is not None
            if _vh(msg.justify.qc) > _vh(best):
                best = msg.justify.qc
        if _vh(best) > _vh(self.prepare_qc):
            self.prepare_qc = best
        self._leader_ready = True
        self.obs.view_change_event("new-view-quorum", view)
        self._maybe_propose(initial=True)

    # ------------------------------------------------------------ proposing

    def _maybe_propose(self, initial: bool = False) -> None:
        if not self.is_leader() or not self._leader_ready:
            return
        if self._outstanding_prepare is not None:
            return
        qc = self.prepare_qc
        block = None if initial else self._take_speculative(qc)
        if block is None:
            batch = self.pool.next_batch()
            if not batch and not initial:
                return
            parent = qc.block
            block = Block(
                parent_link=parent.digest,
                parent_view=parent.view,
                view=self.cview,
                height=parent.height + 1,
                operations=batch,
                justify_digest=qc.digest,
                proposer=self.id,
            )
        self.tree.add(block)
        self._verified_blocks.add(block.digest)
        self._outstanding_prepare = block.digest
        self.stats["proposals_sent"] += 1
        self._note_proposed(block.digest)
        self.obs.block_proposed(block.digest, self.cview, block.height)
        self.obs.ops_proposed(block)
        self.obs.phase_begin(block.digest, "prepare", self.cview, block.height)
        self.ctx.broadcast(
            PhaseMsg(phase=Phase.PREPARE, view=self.cview, justify=Justify(qc), block=block)
        )
        self._stage_next(block, qc)

    # ------------------------------------------------------------- replica

    def _on_phase_msg(self, src: int, msg: PhaseMsg) -> None:
        if msg.phase == Phase.PREPARE:
            self._on_prepare(src, msg)
        elif msg.phase == Phase.PRECOMMIT:
            self._on_precommit(src, msg)
        elif msg.phase == Phase.COMMIT:
            self._on_commit(src, msg)
        elif msg.phase == Phase.DECIDE:
            self._on_decide(src, msg)

    def _catch_up(self, view: int, proof: QuorumCertificate) -> bool:
        if view <= self.cview:
            return True
        if proof.view >= view and self.crypto.qc_is_valid(proof):
            self._advance_view(view)
            return True
        return False

    def _on_prepare(self, src: int, msg: PhaseMsg) -> None:
        if self.leader_of(msg.view) != src or msg.block is None:
            return
        block = msg.block
        qc = msg.justify.qc
        if msg.view > self.cview:
            # Catch up: within a view the justify is a prepareQC of that
            # view; the first proposal of a view carries an older QC, so a
            # lagging replica joins at the next pipelined proposal.
            if not self._catch_up(msg.view, qc):
                return
        if msg.view != self.cview or block.view != msg.view:
            return
        if qc.phase != Phase.PREPARE or block.justify_digest != qc.digest:
            return
        if (
            block.parent_link != qc.block.digest
            or block.height != qc.block.height + 1
            or block.parent_view != qc.block.view
        ):
            return
        if (block.view, block.height) <= self._last_voted_vh:
            return
        self._charge_qc_verify(qc)
        if not self.crypto.qc_is_valid(qc):
            return
        # safeNode: extends the locked block, or the justify unlocks us.
        self.tree.add(block)
        extends_lock = self.tree.extends(block, self.locked_qc.block.digest)
        if not extends_lock and qc.view <= self.locked_qc.view:
            return
        if block.digest not in self._verified_blocks:
            self.ctx.charge(self.costs.verify_block(block))
            self._verified_blocks.add(block.digest)
        if _vh(qc) > _vh(self.prepare_qc):
            self.prepare_qc = qc
        summary = BlockSummary.of(block, justify_in_view=qc.view == block.view)
        self.obs.phase_begin(summary.digest, "prepare", msg.view, block.height)
        self.obs.view_change_done(msg.view)
        share = self.crypto.sign_vote(self.id, Phase.PREPARE, msg.view, summary)
        self._send_vote(
            src, VoteMsg(phase=Phase.PREPARE, view=msg.view, block=summary, share=share)
        )
        self._last_voted_vh = (block.view, block.height)

    def _on_precommit(self, src: int, msg: PhaseMsg) -> None:
        if self.leader_of(msg.view) != src:
            return
        qc = msg.justify.qc
        if qc.phase != Phase.PREPARE or qc.view != msg.view:
            return
        if msg.view > self.cview and not self._catch_up(msg.view, qc):
            return
        if msg.view != self.cview:
            return
        self._charge_qc_verify(qc)
        if not self.crypto.qc_is_valid(qc):
            return
        if _vh(qc) > _vh(self.prepare_qc):
            self.prepare_qc = qc
        self.obs.phase_end(qc.block.digest, "prepare")
        self.obs.phase_begin(qc.block.digest, "pre-commit", msg.view, qc.block.height)
        share = self.crypto.sign_vote(self.id, Phase.PRECOMMIT, msg.view, qc.block)
        self._send_vote(
            src, VoteMsg(phase=Phase.PRECOMMIT, view=msg.view, block=qc.block, share=share)
        )

    def _on_commit(self, src: int, msg: PhaseMsg) -> None:
        if self.leader_of(msg.view) != src:
            return
        qc = msg.justify.qc
        if qc.phase != Phase.PRECOMMIT or qc.view != msg.view:
            return
        if msg.view > self.cview and not self._catch_up(msg.view, qc):
            return
        if msg.view != self.cview:
            return
        self._charge_qc_verify(qc)
        if not self.crypto.qc_is_valid(qc):
            return
        if _vh(qc) > _vh(self.locked_qc):
            self.locked_qc = qc
        self.obs.phase_end(qc.block.digest, "pre-commit")
        self.obs.phase_begin(qc.block.digest, "commit", msg.view, qc.block.height)
        share = self.crypto.sign_vote(self.id, Phase.COMMIT, msg.view, qc.block)
        self._send_vote(
            src, VoteMsg(phase=Phase.COMMIT, view=msg.view, block=qc.block, share=share)
        )

    def _on_decide(self, src: int, msg: PhaseMsg) -> None:
        qc = msg.justify.qc
        if qc.phase != Phase.COMMIT:
            return
        self._charge_qc_verify(qc)
        if not self.crypto.qc_is_valid(qc):
            return
        if msg.view > self.cview:
            self._catch_up(msg.view, qc)
        self._commit_by_qc(qc)

    # -------------------------------------------------------------- leader

    def _on_vote(self, src: int, vote: VoteMsg) -> None:
        if vote.view != self.cview or not self.is_leader(vote.view):
            return
        if self._vote_gate is not None:
            result = self._vote_gate.admit(
                src, vote.phase, vote.view, vote.block, vote.share, carry=vote
            )
            if result.batch_verified:
                self.ctx.charge(self.costs.verify_votes_batch(result.batch_verified))
            for signer, released in result.released:
                self._dispatch_vote(signer, released)
            return
        try:
            self.ctx.charge(self.costs.verify_vote())
            self.crypto.verify_vote(src, vote.phase, vote.view, vote.block, vote.share)
        except InvalidVote:
            return
        self._dispatch_vote(src, vote)

    def _dispatch_vote(self, src: int, vote: VoteMsg) -> None:
        qc = self.collector.add_vote(vote.phase, vote.view, vote.block, src, vote.share)
        if qc is None:
            return
        self.ctx.charge(self.costs.combine(self.config.quorum))
        if vote.phase == Phase.PREPARE:
            self.obs.qc_formed(qc.block.digest, "prepare", vote.view, qc)
            if self._outstanding_prepare == vote.block.digest:
                self._outstanding_prepare = None
            if _vh(qc) > _vh(self.prepare_qc):
                self.prepare_qc = qc
            self.ctx.broadcast(
                PhaseMsg(phase=Phase.PRECOMMIT, view=vote.view, justify=Justify(qc))
            )
            self._maybe_propose()
        elif vote.phase == Phase.PRECOMMIT:
            self.obs.qc_formed(qc.block.digest, "pre-commit", vote.view, qc)
            self.ctx.broadcast(
                PhaseMsg(phase=Phase.COMMIT, view=vote.view, justify=Justify(qc))
            )
        elif vote.phase == Phase.COMMIT:
            self.obs.qc_formed(qc.block.digest, "commit", vote.view, qc)
            self.ctx.broadcast(
                PhaseMsg(phase=Phase.DECIDE, view=vote.view, justify=Justify(qc))
            )
