"""The HotStuff baseline (paper Section IV-A).

Three-phase basic HotStuff with the same pipelining discipline as the
Marlin implementation (a new proposal enters the pipeline as soon as its
parent's ``prepareQC`` forms), so every head-to-head comparison isolates
exactly the protocol difference: three phases and a lock on
``precommitQC`` versus Marlin's two phases and a lock on ``prepareQC``.
"""

from repro.consensus.hotstuff.replica import HotStuffReplica

__all__ = ["HotStuffReplica"]
