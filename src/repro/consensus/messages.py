"""Protocol messages (paper Section V-A, "Message format").

A message ``m`` has ``m.view``, ``m.type``, ``m.block``, ``m.justify`` and
``m.parsig``.  We split the format into typed dataclasses per direction:

* :class:`PhaseMsg` — leader broadcasts for PREPARE / PRECOMMIT / COMMIT /
  DECIDE.  PREPARE carries the full block; the QC-only phases carry just
  the justify (the certified block is identified by its summary).
* :class:`PrePrepareMsg` — the view-change broadcast with one or two
  :class:`Proposal`s.  When two proposals are **shadow blocks** they share
  one operation payload; ``wire_size`` counts the payload once, which is
  exactly the bandwidth saving of Section IV-D.
* :class:`VoteMsg` — a replica's signed response for one phase.  The
  optional ``locked_qc`` field implements view-change Case R2, where the
  voter also ships its ``lockedQC`` to the leader.
* :class:`ViewChangeMsg` — sent to the new leader: the last voted block
  ``lb``, the sender's ``highQC`` (as a :class:`Justify`), and a partial
  signature over the prepare-vote for ``lb`` in the *new* view (this is
  what the happy path combines directly into a ``prepareQC``).
* :class:`SyncRequest` / :class:`SyncResponse` — block fetch, used when a
  replica must commit ancestors it never received (e.g. the resolved
  parent of a virtual block).

Every message exposes ``wire_size`` so the DES bandwidth model and the
Table I communication accounting see realistic byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any

from repro.common.errors import ProtocolError
from repro.consensus.block import Block, Operation
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate

PARTIAL_SIG_WIRE = 48
"""Wire size of one vote share (field element + signer index)."""


@dataclass(frozen=True)
class Justify:
    """One or two QCs, as the paper's ``m.justify``.

    The two-QC form ``(qc, vc)`` arises only for virtual blocks: ``qc`` is
    the pre-prepareQC for the virtual block and ``vc`` the prepareQC for
    its (now real) parent.
    """

    qc: QuorumCertificate
    vc: QuorumCertificate | None = None

    def __post_init__(self) -> None:
        if self.vc is not None and self.vc.phase != Phase.PREPARE:
            raise ProtocolError("the vc component of a justify must be a prepareQC")

    @property
    def is_composite(self) -> bool:
        return self.vc is not None

    @cached_property
    def wire_size(self) -> int:
        total = self.qc.wire_size
        if self.vc is not None:
            total += self.vc.wire_size
        return total

    def qcs(self) -> list[QuorumCertificate]:
        return [self.qc] if self.vc is None else [self.qc, self.vc]


@dataclass(frozen=True)
class PhaseMsg:
    """Leader broadcast driving one phase of one block.

    PREPARE normally carries the full proposed block.  The one exception
    is the prepare phase immediately after a pre-prepare (view-change
    Case N2): the block was already broadcast in the PRE-PREPARE, so the
    PREPARE references it through its QC only — the paper's chaining
    observation that "no new block is proposed in the prepare phase
    immediately after the pre-prepare".
    """

    phase: Phase
    view: int
    justify: Justify
    block: Block | None = None

    def __post_init__(self) -> None:
        if self.phase in (Phase.PRECOMMIT, Phase.COMMIT, Phase.DECIDE) and self.block is not None:
            raise ProtocolError(f"{self.phase.value} messages are QC-only")

    @cached_property
    def wire_size(self) -> int:
        total = 1 + 8 + self.justify.wire_size
        if self.block is not None:
            total += self.block.wire_size
        return total


@dataclass(frozen=True)
class Proposal:
    """One of the (up to two) blocks in a PRE-PREPARE message."""

    block: Block
    justify: Justify

    @property
    def summary(self) -> BlockSummary:
        justify_in_view = (
            self.justify.qc.phase == Phase.PREPARE
            and self.justify.qc.view == self.block.view
        )
        return BlockSummary.of(self.block, justify_in_view=justify_in_view)


@dataclass(frozen=True)
class PrePrepareMsg:
    """The view-change pre-prepare broadcast (one or two proposals)."""

    view: int
    proposals: tuple[Proposal, ...]
    shadow: bool = False

    def __post_init__(self) -> None:
        if not 1 <= len(self.proposals) <= 2:
            raise ProtocolError("PRE-PREPARE carries one or two proposals")
        if self.shadow and len(self.proposals) != 2:
            raise ProtocolError("shadow mode requires exactly two proposals")
        if self.shadow:
            first, second = self.proposals
            if first.block.operations != second.block.operations:
                raise ProtocolError("shadow blocks must share their operation payload")

    @cached_property
    def wire_size(self) -> int:
        total = 8
        for index, proposal in enumerate(self.proposals):
            total += proposal.justify.wire_size
            if self.shadow and index == 1:
                total += proposal.block.header_size
            else:
                total += proposal.block.wire_size
        return total


@dataclass(frozen=True)
class VoteMsg:
    """A replica's signed response for (phase, view, block)."""

    phase: Phase
    view: int
    block: BlockSummary
    share: Any
    locked_qc: QuorumCertificate | None = None

    @property
    def wire_size(self) -> int:
        total = 1 + 8 + self.block.wire_size + PARTIAL_SIG_WIRE
        if self.locked_qc is not None:
            total += self.locked_qc.wire_size
        return total


@dataclass(frozen=True)
class ViewChangeMsg:
    """Sent to the leader of ``view`` when a replica joins that view."""

    view: int
    last_voted: BlockSummary | None
    justify: Justify | None
    share: Any = None

    @property
    def wire_size(self) -> int:
        total = 8 + PARTIAL_SIG_WIRE
        if self.last_voted is not None:
            total += self.last_voted.wire_size
        if self.justify is not None:
            total += self.justify.wire_size
        return total


@dataclass(frozen=True)
class AggregateNewView:
    """Fast-HotStuff / Jolteon-style new-view broadcast (quadratic).

    The new leader ships its *entire* quorum of VIEW-CHANGE messages as
    evidence that the block it extends carries the highest QC any correct
    replica could be locked on — the PBFT-style unlock the paper's
    Section IV-C describes.  Each of the ``n`` replicas receives and
    verifies ``n - f`` embedded QCs: O(n^2) communication and
    authenticators per view change, the cost Table I charges these
    protocols with.
    """

    view: int
    block: Block
    justify: Justify
    proofs: tuple[tuple[int, ViewChangeMsg], ...]

    def __post_init__(self) -> None:
        if not self.proofs:
            raise ProtocolError("an aggregate new-view needs its proof quorum")

    @cached_property
    def wire_size(self) -> int:
        total = 8 + self.block.wire_size + self.justify.wire_size
        for _, proof in self.proofs:
            total += 4 + proof.wire_size
        return total


@dataclass(frozen=True)
class SyncRequest:
    """Ask a peer for the full blocks behind the listed digests."""

    digests: tuple[bytes, ...]

    @property
    def wire_size(self) -> int:
        return 4 + 32 * len(self.digests)


@dataclass(frozen=True)
class SyncResponse:
    """Full blocks answering a :class:`SyncRequest` (best effort).

    ``resolutions`` carries (virtual block digest, resolved parent digest)
    pairs so a syncing replica can reconstruct virtual-parent links it
    missed (they are otherwise only learned from a ``(qc, vc)`` justify).
    """

    blocks: tuple[Block, ...]
    resolutions: tuple[tuple[bytes, bytes], ...] = ()

    @cached_property
    def wire_size(self) -> int:
        return (
            4
            + sum(block.wire_size for block in self.blocks)
            + 64 * len(self.resolutions)
        )


@dataclass(frozen=True)
class CommitEcho:
    """Voter -> learner: "I committed this block".

    Learner replicas take no part in voting, so they learn commits from
    these echoes instead of DECIDE broadcasts: a learner applies a block
    only once ``learner_commit_quorum`` distinct voters have echoed it
    (default ``f + 1`` — at least one correct witness).  The full block
    travels because learners are outside the proposal fan-out.
    ``parent`` is the resolved parent digest for virtual blocks (whose
    ``parent_link`` is None until resolution).
    """

    block: Block
    parent: bytes | None = None

    @cached_property
    def wire_size(self) -> int:
        total = 8 + self.block.wire_size
        if self.parent is not None:
            total += 32
        return total


@dataclass(frozen=True)
class StateTransferRequest:
    """Ask a peer for a checkpoint snapshot (runtime-level recovery).

    Sent by a replica whose local history was garbage-collected past the
    point its WAL can rebuild; answered with a
    :class:`StateTransferResponse`.
    """

    have_height: int

    @property
    def wire_size(self) -> int:
        return 8


@dataclass(frozen=True)
class StateTransferResponse:
    """A checkpoint: application state plus the recent block window."""

    committed_height: int
    head: Block | None
    recent_blocks: tuple[Block, ...]
    app_entries: tuple[tuple[bytes, bytes], ...]

    @cached_property
    def wire_size(self) -> int:
        total = 16
        if self.head is not None:
            total += self.head.wire_size
        total += sum(b.wire_size for b in self.recent_blocks)
        total += sum(len(k) + len(v) + 8 for k, v in self.app_entries)
        return total


@dataclass(frozen=True)
class ClientRequest:
    """A client operation on its way to the leader.

    ``weight`` mirrors :class:`~repro.consensus.block.Operation.weight`:
    one request object can stand for ``weight`` lockstep clients (the
    token-scaling device), and its wire size scales accordingly so the
    bandwidth model sees the same bytes as ``weight`` individual sends.
    """

    client_id: int
    sequence: int
    payload: bytes
    weight: int = 1

    @property
    def wire_size(self) -> int:
        return self.weight * (16 + len(self.payload))


@dataclass(frozen=True)
class ClientRequestBatch:
    """Aggregate client submission used by the DES workload generator.

    One message stands for ``sum(op.weight)`` logical client requests; its
    wire size is the sum of the individual request sizes, so the bandwidth
    model sees exactly the traffic the paper's clients generate.

    Journey tracing (``repro.obs.journey``) adds **nothing** here: its
    trace context is each operation's existing ``(client_id, sequence)``
    identity, and the sample bit is derived from it (seeded CRC), so a
    traced run's wire traffic is byte-identical to an untraced one.
    """

    operations: tuple[Operation, ...]

    @cached_property
    def wire_size(self) -> int:
        return 4 + sum(op.wire_size for op in self.operations)


@dataclass(frozen=True)
class ReplyBatch:
    """Aggregate replica->client replies for one committed block.

    ``result_digests`` carries one digest per op key (empty in legacy
    senders), and ``view`` the replica's view at commit time.  Neither
    changes ``wire_size``: each modelled per-reply record already charges
    24 bytes of header on top of the payload, which is where a 32-byte
    digest travels in the real encoding — keeping the hub model's
    benchmark curves exactly where they were.
    """

    replica: int
    block_digest: bytes
    op_keys: tuple[tuple[int, int], ...]
    num_ops: int
    reply_size: int
    result_digests: tuple[bytes, ...] = ()
    view: int = 1

    def __post_init__(self) -> None:
        if self.result_digests and len(self.result_digests) != len(self.op_keys):
            raise ProtocolError("need one result digest per op key")

    @property
    def wire_size(self) -> int:
        return 40 + self.num_ops * (24 + self.reply_size)


@dataclass(frozen=True)
class ClientReply:
    """A replica's reply to a committed client operation.

    Carries the triple the client certificate is built from —
    ``(sequence, result_digest)`` plus the replica's current ``view`` so
    the client's leader tracker learns about view changes from ordinary
    replies.  ``weight``/``reply_size`` scale the wire size for token
    clients exactly like :class:`ReplyBatch` does per op.
    """

    client_id: int
    sequence: int
    replica: int
    result: bytes = b""
    result_digest: bytes = b""
    view: int = 1
    weight: int = 1
    reply_size: int = 0

    @property
    def wire_size(self) -> int:
        per_reply = 24 + max(self.reply_size, len(self.result) + len(self.result_digest))
        return self.weight * per_reply


@dataclass(frozen=True)
class ReadRequest:
    """A leader-lease read (``reads="leader-lease"``) for one key."""

    client_id: int
    sequence: int
    key: bytes
    weight: int = 1

    @property
    def wire_size(self) -> int:
        return self.weight * (20 + len(self.key))


@dataclass(frozen=True)
class ReadReply:
    """Answer to a :class:`ReadRequest`.

    ``ok=False`` is a redirect: the receiver is not (or no longer) the
    leader; ``view`` tells the client where to look next.
    """

    client_id: int
    sequence: int
    replica: int
    view: int
    value: bytes = b""
    ok: bool = True
    weight: int = 1

    @property
    def wire_size(self) -> int:
        return self.weight * (33 + len(self.value))


@dataclass(frozen=True)
class LeaseProbe:
    """Leader -> replicas: "am I still the leader of ``view``?"

    The quorum check behind a leader-lease read (ReadIndex style): only
    after ``n - f`` replicas (including itself) acknowledge the view does
    the leader serve reads from committed state.
    """

    leader: int
    view: int
    nonce: int

    @property
    def wire_size(self) -> int:
        return 20


@dataclass(frozen=True)
class LeaseAck:
    """Replica -> leader: "yes, ``view`` is still my current view"."""

    replica: int
    view: int
    nonce: int

    @property
    def wire_size(self) -> int:
        return 20
