"""Pluggable vote/QC cryptography.

The paper discusses two instantiations of HotStuff-style QCs (Section I
and III): pairing-based ``(t, n)`` threshold signatures (one authenticator
per QC, linear authenticator complexity) and "a group of n standard
signatures" (faster in practice, quadratic authenticators).  Both are
available here, plus a fast null scheme for large simulations:

* :class:`ThresholdCryptoService` — Shamir-based threshold scheme from
  :mod:`repro.crypto.threshold`; a QC carries one combined signature.
* :class:`MultisigCryptoService` — per-replica conventional signatures
  bundled with a signer bitmap (:mod:`repro.crypto.multisig`).
* :class:`NullCryptoService` — no math; shares are tagged tokens and a QC
  records its signer set.  Quorum counting and duplicate-vote rejection
  stay exact, making it safe for throughput simulations where the cost
  model (not the arithmetic) provides the timing.

Protocol code talks only to :class:`CryptoService` and
:class:`VoteAccumulator`, so switching schemes never touches a replica.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Sequence

from repro.common.errors import CryptoError, InvalidVote
from repro.crypto.keys import KeyRegistry
from repro.crypto.multisig import MultiSigAccumulator, MultiSignature
from repro.crypto.threshold import PartialSignature, ThresholdSignature
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate, vote_payload

#: One vote for batch verification: (signer, phase, view, block, share).
VoteTuple = tuple[int, Phase, int, BlockSummary, Any]

QC_CACHE_SIZE = 256
"""Default LRU capacity of the QC verification cache.

A QC travels in several messages (COMMIT broadcast, justifies, catch-up
proofs); the hot set is the last few pipeline slots, so a small cache
captures nearly every repeat."""


class VoteAccumulator(ABC):
    """Collects vote shares for one (phase, view, block) until quorum."""

    @abstractmethod
    def add(self, signer: int, share: Any) -> bool:
        """Record a verified share; True once the quorum is reached."""

    @property
    @abstractmethod
    def complete(self) -> bool: ...

    @property
    @abstractmethod
    def count(self) -> int: ...

    @abstractmethod
    def finish(self) -> Any:
        """Produce the QC signature object; only valid once complete."""


class CryptoService(ABC):
    """Everything a replica needs to sign votes and validate QCs."""

    #: 'threshold', 'multisig' or 'null' — read by the cost model to decide
    #: whether QC verification is a pairing or n signature verifications.
    scheme: str

    def __init__(
        self, num_replicas: int, quorum: int, qc_cache_size: int = QC_CACHE_SIZE
    ) -> None:
        if not 1 <= quorum <= num_replicas:
            raise CryptoError("quorum must satisfy 1 <= quorum <= n")
        self.num_replicas = num_replicas
        self.quorum = quorum
        # LRU of successfully verified QCs, keyed by (payload, signature).
        # Only successes are cached, so a hit is always a proof.
        self._qc_cache: OrderedDict[tuple[bytes, Any], None] = OrderedDict()
        self._qc_cache_size = qc_cache_size
        self.qc_cache_hits = 0
        self.qc_cache_misses = 0
        self._metric_hits: Any | None = None
        self._metric_misses: Any | None = None

    @abstractmethod
    def sign_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary) -> Any:
        """Produce ``signer``'s share over the vote payload."""

    @abstractmethod
    def verify_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary, share: Any) -> None:
        """Raise :class:`InvalidVote` if the share does not verify."""

    def verify_votes(self, votes: Sequence[VoteTuple]) -> list[int]:
        """Batch-verify votes; indices (input order) that do not verify.

        Equivalent to :meth:`verify_vote` on each element; schemes with
        aggregate structure (threshold shares) override this with a
        genuinely amortised check.
        """
        bad: list[int] = []
        for index, (signer, phase, view, block, share) in enumerate(votes):
            try:
                self.verify_vote(signer, phase, view, block, share)
            except InvalidVote:
                bad.append(index)
        return bad

    @abstractmethod
    def accumulator(self, phase: Phase, view: int, block: BlockSummary) -> VoteAccumulator: ...

    @abstractmethod
    def _verify_qc(self, qc: QuorumCertificate) -> None:
        """Scheme-specific QC signature check (no cache, no genesis case)."""

    def verify_qc(self, qc: QuorumCertificate) -> None:
        """Raise :class:`CryptoError` if the QC's signature is invalid.

        Genesis QCs (view 0, ``signature is None``) always pass: they are
        part of the trusted setup.  Successful verifications land in an
        LRU cache keyed by ``(signed_payload, signature)``, so a QC
        carried in multiple messages is verified once.
        """
        if qc.view == 0 and qc.signature is None:
            return
        key = (qc.signed_payload, qc.signature)
        if key in self._qc_cache:
            self._qc_cache.move_to_end(key)
            self.qc_cache_hits += 1
            if self._metric_hits is not None:
                self._metric_hits.inc()
            return
        self.qc_cache_misses += 1
        if self._metric_misses is not None:
            self._metric_misses.inc()
        self._verify_qc(qc)
        self._qc_cache[key] = None
        if len(self._qc_cache) > self._qc_cache_size:
            self._qc_cache.popitem(last=False)

    def verify_qcs(self, qcs: Sequence[QuorumCertificate]) -> list[int]:
        """Batch-validate QCs (cache-aware); indices that do not verify."""
        return [index for index, qc in enumerate(qcs) if not self.qc_is_valid(qc)]

    def qc_cached(self, qc: QuorumCertificate) -> bool:
        """Non-mutating probe: would :meth:`verify_qc` be a cache hit?"""
        if qc.view == 0 and qc.signature is None:
            return True
        return (qc.signed_payload, qc.signature) in self._qc_cache

    def bind_metrics(self, registry: Any) -> None:
        """Expose QC-cache hit/miss counters on a metrics registry."""
        self._metric_hits = registry.counter(
            "crypto_qc_cache_hits_total", "QC verifications answered from the LRU cache"
        )
        self._metric_misses = registry.counter(
            "crypto_qc_cache_misses_total", "QC verifications that ran the full check"
        )
        self._metric_hits.inc(self.qc_cache_hits)
        self._metric_misses.inc(self.qc_cache_misses)

    def qc_is_valid(self, qc: QuorumCertificate) -> bool:
        try:
            self.verify_qc(qc)
        except CryptoError:
            return False
        return True

    def make_qc(self, phase: Phase, view: int, block: BlockSummary, accumulator: VoteAccumulator) -> QuorumCertificate:
        """Finish an accumulator into a :class:`QuorumCertificate`."""
        return QuorumCertificate(phase=phase, view=view, block=block, signature=accumulator.finish())


# --------------------------------------------------------------------------
# Threshold-signature instantiation


class _ThresholdAccumulator(VoteAccumulator):
    def __init__(self, service: "ThresholdCryptoService", payload: bytes) -> None:
        self._service = service
        self._payload = payload
        self._shares: dict[int, PartialSignature] = {}

    def add(self, signer: int, share: Any) -> bool:
        if not isinstance(share, PartialSignature):
            raise InvalidVote(f"expected a PartialSignature, got {type(share).__name__}")
        self._shares.setdefault(signer, share)
        return self.complete

    @property
    def complete(self) -> bool:
        return len(self._shares) >= self._service.quorum

    @property
    def count(self) -> int:
        return len(self._shares)

    def finish(self) -> ThresholdSignature:
        return self._service.registry.combine(self._payload, list(self._shares.values()))


class ThresholdCryptoService(CryptoService):
    """QCs are combined ``(n - f, n)`` threshold signatures."""

    scheme = "threshold"

    def __init__(self, registry: KeyRegistry) -> None:
        super().__init__(registry.num_replicas, registry.threshold)
        self.registry = registry

    def sign_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary) -> PartialSignature:
        return self.registry.partial_sign(signer, vote_payload(phase, view, block))  # type: ignore[arg-type]

    def verify_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary, share: Any) -> None:
        if not isinstance(share, PartialSignature):
            raise InvalidVote(f"expected a PartialSignature, got {type(share).__name__}")
        if share.signer != signer:
            raise InvalidVote(f"share signer {share.signer} does not match sender {signer}")
        try:
            self.registry.verify_partial(vote_payload(phase, view, block), share)
        except CryptoError as exc:
            raise InvalidVote(str(exc)) from exc

    def verify_votes(self, votes: Sequence[VoteTuple]) -> list[int]:
        """Aggregate-then-verify: group shares by payload, batch-check.

        Shares over the same payload verify with one blinded aggregate
        equation (bisecting on failure), so a quorum of prepare votes
        costs one group check instead of ``n - f``.
        """
        bad: set[int] = set()
        groups: dict[bytes, list[tuple[int, PartialSignature]]] = {}
        for index, (signer, phase, view, block, share) in enumerate(votes):
            if not isinstance(share, PartialSignature) or share.signer != signer:
                bad.add(index)
                continue
            payload = vote_payload(phase, view, block)
            groups.setdefault(payload, []).append((index, share))
        for payload, entries in groups.items():
            shares = [share for _, share in entries]
            for local in self.registry.verify_partials_batch(payload, shares):
                bad.add(entries[local][0])
        return sorted(bad)

    def accumulator(self, phase: Phase, view: int, block: BlockSummary) -> VoteAccumulator:
        return _ThresholdAccumulator(self, vote_payload(phase, view, block))

    def _verify_qc(self, qc: QuorumCertificate) -> None:
        if not isinstance(qc.signature, ThresholdSignature):
            raise CryptoError(f"expected ThresholdSignature, got {type(qc.signature).__name__}")
        self.registry.verify_threshold(qc.signed_payload, qc.signature)


# --------------------------------------------------------------------------
# Multi-signature (bundle of conventional signatures) instantiation


class _MultisigAccumulatorAdapter(VoteAccumulator):
    def __init__(self, inner: MultiSigAccumulator) -> None:
        self._inner = inner

    def add(self, signer: int, share: Any) -> bool:
        return self._inner.add(signer, share)

    @property
    def complete(self) -> bool:
        return self._inner.complete

    @property
    def count(self) -> int:
        return self._inner.count

    def finish(self) -> MultiSignature:
        return self._inner.finish()


class MultisigCryptoService(CryptoService):
    """QCs are bundles of ``n - f`` conventional signatures + bitmap."""

    scheme = "multisig"

    def __init__(self, registry: KeyRegistry) -> None:
        super().__init__(registry.num_replicas, registry.threshold)
        self.registry = registry

    def sign_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary) -> Any:
        return self.registry.sign(signer, vote_payload(phase, view, block))  # type: ignore[arg-type]

    def verify_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary, share: Any) -> None:
        try:
            self.registry.verify(signer, vote_payload(phase, view, block), share)  # type: ignore[arg-type]
        except CryptoError as exc:
            raise InvalidVote(str(exc)) from exc

    def verify_votes(self, votes: Sequence[VoteTuple]) -> list[int]:
        """Batch the registry round-trips for a set of conventional votes."""
        items = [
            (signer, vote_payload(phase, view, block), share)
            for signer, phase, view, block, share in votes
        ]
        return self.registry.verify_batch(items)  # type: ignore[arg-type]

    def accumulator(self, phase: Phase, view: int, block: BlockSummary) -> VoteAccumulator:
        return _MultisigAccumulatorAdapter(MultiSigAccumulator(self.num_replicas, self.quorum))

    def _verify_qc(self, qc: QuorumCertificate) -> None:
        if not isinstance(qc.signature, MultiSignature):
            raise CryptoError(f"expected MultiSignature, got {type(qc.signature).__name__}")
        if len(qc.signature.signers) < self.quorum:
            raise CryptoError("multi-signature carries fewer than quorum signers")
        payload = qc.signed_payload
        bad = self.registry.verify_batch(
            [(signer, payload, signature) for signer, signature in qc.signature.signatures]
        )
        if bad:
            signer = qc.signature.signatures[bad[0]][0]
            raise CryptoError(f"constituent signature from replica {signer} is invalid")


# --------------------------------------------------------------------------
# Null instantiation (fast simulation)


@dataclass(frozen=True)
class NullShare:
    """A vote token: signer + payload digest, no cryptography."""

    signer: int
    tag: bytes

    @property
    def wire_size(self) -> int:
        return 48


@dataclass(frozen=True)
class NullQuorumToken:
    """A QC 'signature' recording exactly who voted."""

    signers: frozenset[int]
    tag: bytes

    @property
    def wire_size(self) -> int:
        return 32


class _NullAccumulator(VoteAccumulator):
    def __init__(self, quorum: int, tag: bytes) -> None:
        self._quorum = quorum
        self._tag = tag
        self._signers: set[int] = set()

    def add(self, signer: int, share: Any) -> bool:
        self._signers.add(signer)
        return self.complete

    @property
    def complete(self) -> bool:
        return len(self._signers) >= self._quorum

    @property
    def count(self) -> int:
        return len(self._signers)

    def finish(self) -> NullQuorumToken:
        if not self.complete:
            raise CryptoError("quorum not reached")
        return NullQuorumToken(signers=frozenset(self._signers), tag=self._tag)


class NullCryptoService(CryptoService):
    """Structure-only crypto: exact quorum counting, zero arithmetic.

    Vote tags still bind (phase, view, block digest), so an accumulator
    can never mix votes for different values; only unforgeability is
    dropped.  Use for throughput simulations, never for adversarial tests.
    """

    scheme = "null"

    def sign_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary) -> NullShare:
        return NullShare(signer=signer, tag=self._tag(phase, view, block))

    def verify_vote(self, signer: int, phase: Phase, view: int, block: BlockSummary, share: Any) -> None:
        if not isinstance(share, NullShare):
            raise InvalidVote("expected a NullShare")
        if not 0 <= signer < self.num_replicas:
            raise InvalidVote(f"signer {signer} is not a voting replica")
        if share.signer != signer or share.tag != self._tag(phase, view, block):
            raise InvalidVote("null share does not match vote")

    def accumulator(self, phase: Phase, view: int, block: BlockSummary) -> VoteAccumulator:
        return _NullAccumulator(self.quorum, self._tag(phase, view, block))

    def _verify_qc(self, qc: QuorumCertificate) -> None:
        if not isinstance(qc.signature, NullQuorumToken):
            raise CryptoError("expected NullQuorumToken")
        if len(qc.signature.signers) < self.quorum:
            raise CryptoError("token has fewer than quorum signers")
        rogue = [s for s in qc.signature.signers if not 0 <= s < self.num_replicas]
        if rogue:
            raise CryptoError(f"token signed by non-members {sorted(rogue)}")
        if qc.signature.tag != self._tag(qc.phase, qc.view, qc.block):
            raise CryptoError("token tag does not match QC contents")

    @staticmethod
    @lru_cache(maxsize=4096)
    def _tag(phase: Phase, view: int, block: BlockSummary) -> bytes:
        # Pure function of its arguments; sign/verify/accumulate for one
        # vote round all recompute the same tag, so memoize it.  A
        # BlockSummary is a frozen dataclass, hence hashable.
        from repro.crypto.hashing import hash_bytes

        return hash_bytes(vote_payload(phase, view, block))
