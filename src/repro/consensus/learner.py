"""Non-voting learner replicas (flexible quorums).

A learner is a full copy of the replicated state machine that takes no
part in consensus: it never votes, never leads, and holds no key
material.  Voting replicas echo every block they commit
(:class:`~repro.consensus.messages.CommitEcho`); the learner applies a
block once ``learner_commit_quorum`` *distinct* voters have echoed it —
``f + 1`` by default, so at least one echo came from a correct replica.
Raising the threshold buys stronger evidence at the cost of commit
latency (and of liveness when fewer than the threshold voters are up),
which is exactly the trade the adversary campaigns measure.

Learners commit strictly in chain order: a block is applied only when it
directly extends the learner's committed head *and* has met the echo
threshold, so a learner can never be tricked into applying a block whose
ancestors lack evidence.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.config import ClusterConfig
from repro.consensus.block import Block, genesis_block
from repro.consensus.blocktree import BlockTree
from repro.consensus.context import NodeContext
from repro.consensus.costs import ZeroCostModel
from repro.consensus.ledger import Ledger
from repro.consensus.messages import CommitEcho
from repro.obs.log import replica_logger
from repro.obs.observer import NULL_OBS, NullReplicaObs

CommitListener = Callable[[Block, float], None]


class LearnerReplica:
    """A non-voting replica that commits at its own echo threshold."""

    #: Harness hooks (client services, reply senders) skip non-voters.
    is_voter = False

    def __init__(
        self,
        replica_id: int,
        config: ClusterConfig,
        ctx: NodeContext,
        costs: ZeroCostModel | None = None,
    ) -> None:
        self.id = replica_id
        self.config = config
        self.ctx = ctx
        self.costs = costs or ZeroCostModel()
        self.cview = 0
        self.client_service: Any = None
        self.commit_listeners: list[CommitListener] = []

        self.genesis = genesis_block()
        self.tree = BlockTree(self.genesis)
        self.ledger = Ledger(self.tree, on_commit_block=self._on_block_committed)

        #: digest -> voter ids that echoed it.
        self._echoes: dict[bytes, set[int]] = {}
        #: digests that met the threshold but do not yet extend the head.
        self._ready: set[bytes] = set()

        self.stats: dict[str, int] = {
            "views_entered": 0,
            "view_changes": 0,
            "timeouts": 0,
            "blocks_committed": 0,
            "ops_committed": 0,
            "messages_handled": 0,
            "votes_sent": 0,
            "proposals_sent": 0,
            "echoes_received": 0,
        }
        self.obs: NullReplicaObs = NULL_OBS
        self.log = replica_logger(self.protocol_name, replica_id, lambda: self.cview)
        self._handlers: dict[type, Callable[[int, Any], None]] = {
            CommitEcho: self._on_commit_echo,
        }

    @property
    def protocol_name(self) -> str:
        return "learner"

    @property
    def handlers(self) -> dict[type, Callable[[int, Any], None]]:
        return self._handlers

    def attach_observer(self, obs: NullReplicaObs) -> None:
        self.obs = obs
        obs.bind(self.ctx)

    def start(self) -> None:
        """Learners are passive: nothing to boot, no timers to arm."""

    def on_message(self, src: int, payload: Any) -> None:
        self.stats["messages_handled"] += 1
        handler = self._handlers.get(type(payload))
        if handler is not None:
            handler(src, payload)

    def close(self) -> None:
        """Nothing to release; mirrors the ReplicaBase lifecycle."""

    # ------------------------------------------------------------- echoes

    def _on_commit_echo(self, src: int, echo: CommitEcho) -> None:
        if not 0 <= src < self.config.num_replicas:
            return  # only voting replicas can witness a commit
        block = echo.block
        self.stats["echoes_received"] += 1
        witnesses = self._echoes.setdefault(block.digest, set())
        if src in witnesses:
            return
        witnesses.add(src)
        if self.tree.get(block.digest) is None:
            self.ctx.charge(self.costs.verify_block(block))
            self.tree.add(block)
            if block.is_virtual and echo.parent is not None:
                self.tree.resolve_virtual_parent(block.digest, echo.parent)
        if len(witnesses) >= self.config.learner_commit_quorum:
            self._ready.add(block.digest)
            self._drain()

    def _drain(self) -> None:
        """Apply ready blocks that directly extend the committed head.

        Strict chain order: implicit ancestor commits are forbidden here —
        every applied block must have met the echo threshold itself.
        """
        progressed = True
        while progressed:
            progressed = False
            head = self.ledger.committed_head.digest
            for digest in list(self._ready):
                block = self.tree.get(digest)
                if block is None or self.tree.parent_digest(block) != head:
                    continue
                self._ready.discard(digest)
                self.ledger.commit(block)
                self.ctx.charge(self.costs.db_write(block))
                self.ctx.charge(self.costs.execute(len(block.operations)))
                self._echoes.pop(digest, None)
                progressed = True
                break

    def _on_block_committed(self, block: Block) -> None:
        self.stats["blocks_committed"] += 1
        self.stats["ops_committed"] += len(block.operations)
        if self.obs.enabled:
            self.obs.block_committed(
                block.digest, block.height, len(block.operations), block.view
            )
        now = self.ctx.now
        for listener in self.commit_listeners:
            listener(block, now)
