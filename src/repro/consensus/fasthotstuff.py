"""Fast-HotStuff / Jolteon: two-phase BFT with a quadratic view change.

The paper's Section IV-C characterises Fast-HotStuff and Jolteon as "a
hybrid of HotStuff and the classic PBFT-like view change: the new leader
should present a proposal together with evidence of a quorum of view
change messages to unlock the locked QC.  Hence, both achieve quadratic
complexity."

This implementation reproduces exactly that trade-off so Table I's
contrast can be *measured* against Marlin:

* the normal case is Marlin's two-phase commit, unchanged (both protocols
  lock on ``prepareQC``s);
* the view change ships an :class:`~repro.consensus.messages.AggregateNewView`
  containing the leader's full quorum of VIEW-CHANGE messages.  A replica
  verifies every embedded QC (O(n) work each, O(n^2) total) and, if the
  evidence is a genuine quorum whose maximum the proposal extends, votes
  **regardless of its own lock** — the evidence proves no conflicting
  block can have committed (if one had, f+1 correct replicas would be
  locked on its QC, and any quorum of VIEW-CHANGE messages would contain
  it, forcing the leader to extend it).

Jolteon's mechanism (timeout certificates over signed high-QC claims) has
the same asymptotics; this class stands in for both in the measured
complexity benchmarks.
"""

from __future__ import annotations

from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import AggregateNewView, Justify, VoteMsg
from repro.consensus.qc import BlockSummary, Phase
from repro.consensus.rank import Rank, compare_qc_rank, highest_qcs


class FastHotStuffReplica(MarlinReplica):
    """Marlin's normal case + the PBFT-style quadratic view change."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.handlers[AggregateNewView] = self._on_aggregate_new_view

    def _begin_pre_prepare(self, view: int) -> None:
        """Replace Marlin's pre-prepare with the aggregate broadcast."""
        if view in self._pre_prepare_started:
            return
        self._pre_prepare_started.add(view)
        if self.cview < view:
            self._advance_view(view)
        messages = self._vc_messages.pop(view, {})
        prepare_qcs = [
            m.justify.qc
            for m in messages.values()
            if m.justify is not None and m.justify.qc.phase == Phase.PREPARE
        ]
        maxima = highest_qcs(prepare_qcs)
        if not maxima:
            return
        qc = maxima[0]
        batch = self.pool.next_batch()
        block = self._extend(qc.block, view, batch, qc)
        self.tree.add(block)
        self._leader_ready = True
        self._outstanding_prepare = block.digest
        self.stats["proposals_sent"] += 1
        self.obs.view_change_event("agg-new-view", view, proofs=len(messages))
        self.obs.block_proposed(block.digest, view, block.height)
        self.obs.ops_proposed(block)
        self.obs.phase_begin(block.digest, "prepare", view, block.height)
        self.ctx.broadcast(
            AggregateNewView(
                view=view,
                block=block,
                justify=Justify(qc),
                proofs=tuple(sorted(messages.items())),
            )
        )

    def _on_aggregate_new_view(self, src: int, msg: AggregateNewView) -> None:
        if self.leader_of(msg.view) != src:
            return
        if msg.view > self.cview:
            # A quorum of view-v VIEW-CHANGE messages IS proof the view
            # started; validated below before any action.
            pass
        elif msg.view < self.cview:
            return
        # Verify the evidence: a quorum of distinct, valid VIEW-CHANGE
        # messages for this view.  This is the O(n) per-replica work that
        # makes the protocol quadratic overall.
        distinct: set[int] = set()
        best = None
        for sender, proof in msg.proofs:
            if proof.view != msg.view or proof.justify is None:
                continue
            justify = proof.justify
            if justify.qc.phase != Phase.PREPARE:
                continue
            self.ctx.charge(self.costs.verify_qc(justify.qc))
            if not self.crypto.qc_is_valid(justify.qc):
                continue
            distinct.add(sender)
            if best is None or compare_qc_rank(justify.qc, best) is Rank.HIGHER:
                best = justify.qc
        if len(distinct) < self.config.quorum or best is None:
            return
        block = msg.block
        qc = msg.justify.qc
        # The proposal must extend exactly the evidence's maximum.
        if compare_qc_rank(qc, best) is not Rank.EQUAL:
            return
        if (
            block.view != msg.view
            or block.parent_link != qc.block.digest
            or block.height != qc.block.height + 1
            or block.justify_digest != qc.digest
        ):
            return
        if not self.crypto.qc_is_valid(qc):
            return
        if msg.view > self.cview:
            self._advance_view(msg.view)
        # PBFT-style unlock: no rank-versus-lock check here.  The quorum
        # evidence overrides the lock — a committed block's QC would
        # necessarily appear in it, so extending the evidence's maximum
        # can never conflict with a committed block.
        summary = BlockSummary.of(block, justify_in_view=False)
        if summary.view < self.last_voted.view:
            return
        if summary.view == self.last_voted.view and summary.height <= self.last_voted.height:
            return
        self.ctx.charge(self.costs.verify_block(block))
        self.tree.add(block)
        self.obs.view_change_event("agg-unlock-vote", msg.view, unlocked=True)
        self.obs.phase_begin(summary.digest, "prepare", msg.view, summary.height)
        self.obs.view_change_done(msg.view)
        share = self.crypto.sign_vote(self.id, Phase.PREPARE, msg.view, summary)
        self._send_vote(
            src, VoteMsg(phase=Phase.PREPARE, view=msg.view, block=summary, share=share)
        )
        self.last_voted = summary
        self.high_qc = Justify(qc)
