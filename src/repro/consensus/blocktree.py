"""The per-replica tree of blocks (paper Section III-A).

Each replica stores a tree rooted at the genesis block.  On top of plain
digest-linked storage the tree adds what Marlin needs:

* **virtual-block resolution** — a virtual block has ``parent_link=None``;
  once a ``prepareQC`` ``vc`` for its real parent is validated, the tree
  records ``resolved parent`` so branch traversal works (Section V-C);
* branch queries: ``extends`` (is b' on the branch led by b), conflict
  detection, and path extraction used at commit time;
* pending-parent tracking for out-of-order arrival (block sync).
"""

from __future__ import annotations

from typing import Iterator

from repro.common.errors import InvalidBlock
from repro.consensus.block import Block
from repro.crypto.hashing import Digest


class BlockTree:
    """Digest-indexed tree with virtual-parent resolution."""

    def __init__(self, genesis: Block) -> None:
        if not genesis.is_genesis:
            raise InvalidBlock("block tree must be rooted at a genesis block")
        self._genesis = genesis
        self._blocks: dict[Digest, Block] = {genesis.digest: genesis}
        self._resolved_parent: dict[Digest, Digest] = {}

    @property
    def genesis(self) -> Block:
        return self._genesis

    def add(self, block: Block) -> None:
        """Insert a block; idempotent.  Parents may arrive later."""
        self._blocks.setdefault(block.digest, block)

    def get(self, digest: Digest) -> Block | None:
        return self._blocks.get(digest)

    def __contains__(self, digest: Digest) -> bool:
        return digest in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def resolve_virtual_parent(self, virtual_digest: Digest, parent_digest: Digest) -> None:
        """Record the real parent of a virtual block (from its ``vc``)."""
        self._resolved_parent[virtual_digest] = parent_digest

    def parent_digest(self, block: Block) -> Digest | None:
        """Parent digest, following virtual resolution when needed."""
        if block.parent_link is not None:
            return block.parent_link
        if block.is_genesis:
            return None
        return self._resolved_parent.get(block.digest)

    def parent(self, block: Block) -> Block | None:
        digest = self.parent_digest(block)
        if digest is None:
            return None
        return self._blocks.get(digest)

    def branch(self, block: Block) -> Iterator[Block]:
        """Yield ``block`` then each known ancestor, newest first.

        Stops at genesis or at the first missing/unresolved parent.
        """
        current: Block | None = block
        while current is not None:
            yield current
            if current.is_genesis:
                return
            current = self.parent(current)

    def missing_ancestor(self, block: Block) -> Digest | None:
        """Digest of the first ancestor we lack, or None if branch complete.

        An unresolved virtual block also counts as a gap (we cannot know
        its parent digest yet), reported as its own digest.
        """
        current: Block | None = block
        while current is not None and not current.is_genesis:
            digest = self.parent_digest(current)
            if digest is None:
                return current.digest
            parent = self._blocks.get(digest)
            if parent is None:
                return digest
            current = parent
        return None

    def extends(self, descendant: Block, ancestor_digest: Digest) -> bool:
        """Is the block with ``ancestor_digest`` on ``descendant``'s branch?

        A block is considered an extension of itself (matches the paper's
        use in locking rules, where "b or an extension of b" is the safe
        set).
        """
        for node in self.branch(descendant):
            if node.digest == ancestor_digest:
                return True
        return False

    def conflicts(self, a: Block, b: Block) -> bool:
        """Two blocks conflict iff neither's branch contains the other."""
        return not self.extends(a, b.digest) and not self.extends(b, a.digest)

    def path_between(self, ancestor_digest: Digest, descendant: Block) -> list[Block] | None:
        """Blocks strictly after ``ancestor`` up to ``descendant``, oldest first.

        Returns None if ``ancestor`` is not on the branch (or a gap hides
        it).  An empty list means descendant *is* the ancestor.
        """
        path: list[Block] = []
        for node in self.branch(descendant):
            if node.digest == ancestor_digest:
                path.reverse()
                return path
            path.append(node)
        return None

    def prune_keep(self, keep: set[Digest]) -> int:
        """Drop all blocks outside ``keep`` (checkpointing); returns count."""
        keep = set(keep) | {self._genesis.digest}
        doomed = [d for d in self._blocks if d not in keep]
        for digest in doomed:
            del self._blocks[digest]
            self._resolved_parent.pop(digest, None)
        return len(doomed)
