"""Blocks: the unit of agreement (paper Sections III-A and V-A).

A block is ``b = [pl, pview, view, height, op, justify]``:

* ``pl`` — hash digest of the parent block (``None`` for virtual blocks
  and for the genesis block);
* ``pview`` — the view number of the parent block (a Marlin addition to
  the HotStuff syntax);
* ``view`` / ``height`` — where the block sits in the view/height grid;
* ``op`` — a batch of client operations;
* ``justify`` — a QC for the parent block (digest-linked here to keep
  block identity well-founded; the full QC travels in the message).

**Virtual blocks** (Section V-A) have ``pl = None``; they are proposed in
view-change Case V1 against a parent that may not exist yet, and acquire a
real parent when a ``prepareQC`` ``vc`` for that parent surfaces.

**Shadow blocks** (Section IV-D) are two blocks proposed together sharing
one operation payload; sharing is expressed at the message layer (the
second proposal's wire size omits the payload) while each block object
still owns its ``operations`` tuple, so digests stay self-contained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.common.errors import InvalidBlock
from repro.crypto.hashing import Digest, digest_of, short_hex

OPERATION_OVERHEAD = 16
"""Wire overhead per operation: client id, sequence number, length."""


class Operation:
    """One client operation: an opaque payload plus its provenance.

    ``weight`` lets a single object stand for ``weight`` identical
    back-to-back operations from one client — a simulation-scaling device
    (wire size, execution cost and throughput all scale by it) that keeps
    object counts manageable at paper-scale loads.  Real deployments use
    ``weight == 1``.

    Hand-written rather than a frozen dataclass: the workload generator
    creates one Operation per simulated request, and a frozen dataclass
    pays an ``object.__setattr__`` per field on every construction.  The
    wire size and dedup key are precomputed here because they are read on
    every hot path (batching, sizing, reply matching).
    """

    __slots__ = ("client_id", "sequence", "payload", "weight", "wire_size", "_key")

    def __init__(
        self,
        client_id: int,
        sequence: int,
        payload: bytes = b"",
        weight: int = 1,
    ) -> None:
        if weight < 1:
            raise InvalidBlock(f"operation weight must be >= 1, got {weight}")
        self.client_id = client_id
        self.sequence = sequence
        self.payload = payload
        self.weight = weight
        self.wire_size = (OPERATION_OVERHEAD + len(payload)) * weight
        self._key = (client_id, sequence)

    def key(self) -> tuple[int, int]:
        """Deduplication key: (client, sequence)."""
        return self._key

    def encodable(self) -> list:
        return [self.client_id, self.sequence, self.payload, self.weight]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Operation):
            return NotImplemented
        return (
            self._key == other._key
            and self.payload == other.payload
            and self.weight == other.weight
        )

    def __hash__(self) -> int:
        return hash((self.client_id, self.sequence, self.payload, self.weight))

    def __repr__(self) -> str:
        return (
            f"Operation(client_id={self.client_id}, sequence={self.sequence}, "
            f"payload={self.payload!r}, weight={self.weight})"
        )


@dataclass(frozen=True)
class Block:
    """An immutable block; identity is the digest of its canonical form."""

    parent_link: Digest | None
    parent_view: int
    view: int
    height: int
    operations: tuple[Operation, ...]
    justify_digest: Digest
    proposer: int = 0

    def __post_init__(self) -> None:
        if self.view < 0 or self.height < 0 or self.parent_view < 0:
            raise InvalidBlock("view/height fields cannot be negative")
        if self.parent_view > self.view:
            raise InvalidBlock(
                f"parent view {self.parent_view} exceeds block view {self.view}"
            )
        if self.parent_link is not None and len(self.parent_link) != 32:
            raise InvalidBlock("parent link must be a 32-byte digest")

    @property
    def is_virtual(self) -> bool:
        """True for the view-change virtual blocks of Section V-A."""
        return self.parent_link is None and self.height > 0

    @property
    def is_genesis(self) -> bool:
        return self.height == 0

    @cached_property
    def digest(self) -> Digest:
        return digest_of(
            [
                self.parent_link,
                self.parent_view,
                self.view,
                self.height,
                [[op.client_id, op.sequence, op.payload, op.weight] for op in self.operations],
                self.justify_digest,
                self.proposer,
            ]
        )

    @cached_property
    def num_ops(self) -> int:
        """Logical operation count (weighted)."""
        return sum(op.weight for op in self.operations)

    @cached_property
    def payload_size(self) -> int:
        return sum(op.wire_size for op in self.operations)

    @property
    def header_size(self) -> int:
        """Wire size of everything except the operation payload."""
        return 32 + 8 + 8 + 8 + 32 + 8

    @cached_property
    def wire_size(self) -> int:
        return self.header_size + self.payload_size

    def __repr__(self) -> str:
        kind = "virtual" if self.is_virtual else "block"
        return (
            f"<{kind} v={self.view} h={self.height} "
            f"ops={len(self.operations)} {short_hex(self.digest)}>"
        )


_GENESIS_JUSTIFY = digest_of(["genesis-justify"])


def genesis_block() -> Block:
    """The common root of every replica's tree (view 0, height 0)."""
    return Block(
        parent_link=None,
        parent_view=0,
        view=0,
        height=0,
        operations=(),
        justify_digest=_GENESIS_JUSTIFY,
        proposer=0,
    )


def make_child(
    parent: "Block",
    view: int,
    operations: tuple[Operation, ...],
    justify_digest: Digest,
    proposer: int = 0,
) -> Block:
    """Convenience constructor for a normal block extending ``parent``."""
    return Block(
        parent_link=parent.digest,
        parent_view=parent.view,
        view=view,
        height=parent.height + 1,
        operations=operations,
        justify_digest=justify_digest,
        proposer=proposer,
    )


@dataclass
class BatchPool:
    """A mempool of pending operations, drained into block batches.

    ``max_batch`` counts *weighted* operations.  Committed operations are
    pruned from the pending queue (they may sit in several replicas'
    pools under leader rotation) but stay in the dedup set so a later
    leader cannot re-admit them.
    """

    max_batch: int = 400
    _pending: list[Operation] = field(default_factory=list)
    _seen: set[tuple[int, int]] = field(default_factory=set)
    _staged: tuple[Operation, ...] | None = None
    staged_epoch: int = 0

    def add(self, op: Operation) -> bool:
        """Queue an operation; duplicate (client, seq) pairs are dropped."""
        key = op._key
        seen = self._seen
        if key in seen:
            return False
        seen.add(key)
        self._pending.append(op)
        return True

    def add_many(self, ops) -> bool:
        """Bulk :meth:`add`; True if any operation was admitted.

        One call per client batch instead of one per operation — the DES
        workload generator delivers hundreds of operations per message.
        """
        seen = self._seen
        pending = self._pending
        admitted = False
        for op in ops:
            key = op._key
            if key in seen:
                continue
            seen.add(key)
            pending.append(op)
            admitted = True
        return admitted

    def next_batch(self) -> tuple[Operation, ...]:
        """Remove and return up to ``max_batch`` weighted operations (FIFO).

        Always returns at least one operation when any is pending, even if
        its weight alone exceeds the cap.
        """
        batch: list[Operation] = []
        total = 0
        for op in self._pending:
            if batch and total + op.weight > self.max_batch:
                break
            batch.append(op)
            total += op.weight
        del self._pending[: len(batch)]
        return tuple(batch)

    def requeue(self, ops: tuple[Operation, ...]) -> None:
        """Put operations back at the front (e.g. proposal abandoned)."""
        self._pending[:0] = list(ops)

    def stage(self) -> tuple[Operation, ...]:
        """Pre-assemble the next batch without committing to it.

        A pipelining leader stages the batch for its *next* proposal while
        the current QC is still forming.  The staged operations leave the
        pending queue; :meth:`take_staged` hands them out and
        :meth:`unstage` puts them back.  Re-staging returns the existing
        staged batch.
        """
        if self._staged is None:
            batch = self.next_batch()
            if not batch:
                return ()
            self._staged = batch
        return self._staged

    def take_staged(self) -> tuple[Operation, ...]:
        """Consume the staged batch (empty tuple if nothing staged)."""
        staged = self._staged or ()
        self._staged = None
        return staged

    def unstage(self) -> None:
        """Abandon the staged batch, returning its operations to the front."""
        if self._staged is not None:
            self.requeue(self._staged)
            self._staged = None

    @property
    def staged_weight(self) -> int:
        """Weighted size of the staged batch (0 when nothing staged)."""
        return sum(op.weight for op in self._staged) if self._staged else 0

    def forget(self, ops: tuple[Operation, ...]) -> None:
        """Prune committed operations from the pending queue."""
        keys = {op._key for op in ops}
        if not keys:
            return
        if self._pending:
            self._pending = [op for op in self._pending if op._key not in keys]
        if self._staged is not None and any(op._key in keys for op in self._staged):
            # A speculative batch containing now-committed operations is
            # stale; drop those ops and invalidate any block built on it.
            self._staged = tuple(op for op in self._staged if op._key not in keys)
            self.staged_epoch += 1

    @property
    def pending_ops(self) -> int:
        """Weighted count of queued operations."""
        return sum(op.weight for op in self._pending)

    def __len__(self) -> int:
        return len(self._pending)
