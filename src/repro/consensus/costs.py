"""CPU cost model hooks called by replicas at semantic points.

The protocol core calls ``ctx.charge(costs.<something>())`` wherever a
real implementation would burn CPU: verifying a batch of client request
signatures, verifying a QC, signing a vote, combining shares, persisting
a block.  Two implementations:

* :class:`ZeroCostModel` — every operation is free; used by logic tests.
* :class:`PaperCostModel` — calibrated from a
  :class:`~repro.common.config.MachineProfile` and the active signature
  scheme.  Batch work (request verification, QC verification under the
  multisig scheme) is divided by the core count, reflecting that real
  implementations verify signatures on a thread pool — this is the term
  that makes small-``f`` peak throughput CPU-bound, as in the paper.
"""

from __future__ import annotations

from repro.common.config import MachineProfile
from repro.consensus.block import Block
from repro.consensus.qc import QuorumCertificate


class ZeroCostModel:
    """All operations cost zero simulated seconds."""

    def verify_block(self, block: Block) -> float:
        return 0.0

    def verify_qc(self, qc: QuorumCertificate) -> float:
        return 0.0

    def verify_vote(self) -> float:
        return 0.0

    def verify_votes_batch(self, count: int) -> float:
        return 0.0

    def qc_cache_lookup(self) -> float:
        return 0.0

    def sign_vote(self) -> float:
        return 0.0

    def combine(self, shares: int) -> float:
        return 0.0

    def db_write(self, block: Block) -> float:
        return 0.0

    def execute(self, num_ops: int) -> float:
        return 0.0

    def handle_message(self) -> float:
        return 0.0

    def checkpoint(self) -> float:
        return 0.0


class PaperCostModel(ZeroCostModel):
    """Costs matching the paper's testbed machines.

    ``scheme`` selects the QC instantiation: ``"threshold"`` verifies a QC
    with one pairing; ``"multisig"`` verifies ``quorum`` conventional
    signatures (parallelised over cores).  Vote shares cost one
    sign/verify either way.
    """

    def __init__(
        self,
        machine: MachineProfile,
        scheme: str = "threshold",
        quorum: int = 3,
        per_message_overhead: float = 6e-6,
        verify_client_sigs: bool = False,
    ) -> None:
        if scheme not in ("threshold", "multisig", "null"):
            raise ValueError(f"unknown scheme {scheme!r}")
        self.machine = machine
        self.scheme = "threshold" if scheme == "null" else scheme
        self.quorum = quorum
        self.per_message_overhead = per_message_overhead
        self.verify_client_sigs = verify_client_sigs

    def verify_block(self, block: Block) -> float:
        """Admission cost of a received block.

        Matching the paper's artifact, operations are opaque payloads:
        replicas hash the block but do not verify per-operation client
        signatures on the critical path (set ``verify_client_sigs=True``
        for the ablation that puts them there — a thread-pool verify over
        ``cores`` cores).
        """
        if not block.operations:
            return 0.0
        cost = self.machine.hash_cost_per_byte * block.payload_size
        if self.verify_client_sigs:
            cost += block.num_ops * self.machine.verify_cost / self.machine.cores
        return cost

    def verify_qc(self, qc: QuorumCertificate) -> float:
        if qc.view == 0:
            return 0.0
        if self.scheme == "threshold":
            return self.machine.pairing_cost
        return self.quorum * self.machine.verify_cost / self.machine.cores

    def verify_vote(self) -> float:
        return self.machine.share_verify_cost

    def verify_votes_batch(self, count: int) -> float:
        """Verify ``count`` vote shares in one batched call.

        Real implementations push a quorum of share verifications onto a
        ``cores``-wide verifier pool and pay one dispatch overhead, so the
        per-share cost is divided by the core count — the amortisation
        batching exists to buy.
        """
        if count <= 0:
            return 0.0
        return (
            self.per_message_overhead
            + count * self.machine.share_verify_cost / self.machine.cores
        )

    def qc_cache_lookup(self) -> float:
        """A QC verification answered from the LRU cache: a dict probe."""
        return self.per_message_overhead

    def sign_vote(self) -> float:
        return self.machine.share_sign_cost

    def combine(self, shares: int) -> float:
        if self.scheme == "threshold":
            return shares * self.machine.combine_cost_per_share
        return 0.0

    def db_write(self, block: Block) -> float:
        return self.machine.db_write_cost(block.wire_size)

    def execute(self, num_ops: int) -> float:
        return num_ops * self.machine.exec_cost_per_op

    def handle_message(self) -> float:
        return self.per_message_overhead

    def checkpoint(self) -> float:
        return self.machine.checkpoint_cost
