"""The sans-io boundary between protocol cores and their runtime.

A replica never touches a socket, an event loop, or a clock directly; it
talks to a :class:`NodeContext`.  Three implementations exist:

* :class:`repro.harness.des_runtime.DESContext` — discrete-event
  simulation with CPU cost accounting (drives every published figure);
* :class:`repro.runtime.node.AsyncioContext` — real asyncio execution;
* :class:`LocalContext` (below) — a synchronous, zero-delay context for
  unit tests: sends append to an outbox the test inspects, timers are
  manual.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable


class NodeContext(ABC):
    """Runtime services available to one replica."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (simulated or wall-clock)."""

    @abstractmethod
    def send(self, dst: int, payload: Any) -> None:
        """Send ``payload`` to replica/client ``dst`` (fire-and-forget)."""

    @abstractmethod
    def broadcast(self, payload: Any) -> None:
        """Send ``payload`` to every replica, including the sender.

        Self-delivery goes through the normal delivery path (loopback), so
        a leader processes its own proposals exactly like everyone else.
        """

    @abstractmethod
    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        """Arm (or rearm) the named timer."""

    @abstractmethod
    def cancel_timer(self, name: str) -> None: ...

    @abstractmethod
    def charge(self, seconds: float) -> None:
        """Account ``seconds`` of CPU work (no-op outside the DES)."""


class LocalContext(NodeContext):
    """Synchronous test context: explicit outbox, manually fired timers."""

    def __init__(self, replica_id: int, num_replicas: int) -> None:
        self.replica_id = replica_id
        self.num_replicas = num_replicas
        self.outbox: list[tuple[int, Any]] = []
        self.timers: dict[str, tuple[float, Callable[[], None]]] = {}
        self.cpu_charged = 0.0
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds

    def send(self, dst: int, payload: Any) -> None:
        self.outbox.append((dst, payload))

    def broadcast(self, payload: Any) -> None:
        for dst in range(self.num_replicas):
            self.outbox.append((dst, payload))

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self.timers[name] = (self._now + delay, callback)

    def cancel_timer(self, name: str) -> None:
        self.timers.pop(name, None)

    def charge(self, seconds: float) -> None:
        self.cpu_charged += seconds

    # -- test helpers -------------------------------------------------

    def drain(self) -> list[tuple[int, Any]]:
        """Return and clear the outbox."""
        out = self.outbox
        self.outbox = []
        return out

    def fire_timer(self, name: str) -> None:
        """Manually trigger a pending timer (tests drive time)."""
        deadline, callback = self.timers.pop(name)
        self._now = max(self._now, deadline)
        callback()
