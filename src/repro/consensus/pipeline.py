"""Hot-path batching and pipelining knobs (off by default).

Marlin's linear authenticator complexity puts signature work on the hot
path: the leader verifies a quorum of vote shares per phase and every
replica verifies the QCs riding in each message.  This module holds the
machinery that amortises that work, mirroring the engineering HotStuff
and Fast-HotStuff deployments rely on for their throughput numbers:

* :class:`PipelineConfig` — one frozen knob bundle threaded from the
  runtimes down to the replicas.  ``None`` (the default everywhere)
  reproduces the unbatched per-item behaviour exactly.
* :class:`VoteBatchGate` — buffers unverified vote shares per
  ``(phase, view, block)`` until a quorum's worth arrive, batch-verifies
  them in one aggregate check, and drops post-quorum stragglers without
  verifying them at all.
* :class:`AdaptiveBatchController` — nudges ``BatchPool.max_batch`` to
  keep commit latency inside a target band, using the commit-latency
  signal the PR-1 metrics layer already records.

Everything here is deterministic: the gate releases votes in a canonical
order and the controller is pure arithmetic, so the DES stays
reproducible with pipelining enabled.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.consensus.qc import BlockSummary, Phase

if TYPE_CHECKING:
    from repro.consensus.crypto_service import CryptoService
    from repro.crypto.verifier_pool import VerifierPool


@dataclass(frozen=True)
class PipelineConfig:
    """Batching/pipelining switches for one replica.

    Passing ``None`` instead of a config (the default) keeps the replica
    on the seed behaviour: per-vote verification, no speculation, fixed
    batch size.
    """

    #: Buffer vote shares and verify a quorum in one aggregate check.
    batch_votes: bool = True
    #: Leader speculatively builds the next block while the QC forms.
    speculative_proposals: bool = True
    #: Let commit latency drive ``BatchPool.max_batch``.
    adaptive_batch: bool = False
    #: (low, high) commit-latency band the adaptive controller targets.
    target_latency: tuple[float, float] = (0.2, 0.8)
    #: Adaptive controller never shrinks the batch below this.
    min_batch: int = 100
    #: Adaptive controller never grows the batch beyond this (None = the
    #: replica's configured batch size).
    max_batch: int | None = None
    #: Verifier pool kind: "inline" (DES-safe) or "threads" (asyncio).
    verifier: str = "inline"
    #: Worker count for the "threads" verifier pool.
    verifier_workers: int = 4

    def for_des(self) -> "PipelineConfig":
        """The same config with the verifier forced inline.

        The discrete-event simulator must never touch real threads:
        verification cost is charged through the cost model and execution
        order must stay deterministic.
        """
        if self.verifier == "inline":
            return self
        return dataclasses.replace(self, verifier="inline")


@dataclass(frozen=True)
class GateResult:
    """What :meth:`VoteBatchGate.admit` released for processing.

    ``released`` lists ``(src, carry)`` pairs whose shares verified, in
    canonical (src-sorted) order — ``carry`` is whatever the caller
    passed alongside the share (typically the whole vote message).
    ``batch_verified`` is the number of shares checked by the aggregate
    verification this arrival triggered — the quantity the DES charges
    via ``costs.verify_votes_batch`` — and is 0 when nothing was
    verified.
    """

    released: tuple[tuple[int, Any], ...] = ()
    batch_verified: int = 0


@dataclass
class _GateTarget:
    #: src -> (share, carry)
    pending: dict[int, tuple[Any, Any]] = field(default_factory=dict)
    done: bool = False


class VoteBatchGate:
    """Defers vote verification until a quorum's worth of shares arrive.

    Rationale: a leader only needs ``quorum`` valid shares to form a QC.
    Verifying each share on arrival wastes work twice over — per-share
    calls forgo the aggregate batch check, and shares arriving after the
    QC formed are verified for nothing.  The gate buffers unverified
    shares per ``(phase, view, block)``; once ``quorum`` distinct signers
    are buffered it batch-verifies them (one blinded aggregate equation
    for threshold shares) and releases the valid ones in src order.
    Shares arriving after the target completed are dropped unverified.

    Invalid shares found by the batch check are discarded and the target
    keeps collecting, so a Byzantine share can delay but never prevent QC
    formation — the same robustness the per-item path has.
    """

    def __init__(
        self,
        crypto: "CryptoService",
        quorum: int,
        pool: "VerifierPool | None" = None,
    ) -> None:
        self._crypto = crypto
        self._quorum = quorum
        self._pool = pool
        self._targets: dict[tuple[Phase, int, bytes], _GateTarget] = {}
        #: Total shares dropped unverified after their QC formed.
        self.dropped_late = 0
        #: Total shares rejected by batch verification.
        self.rejected = 0

    #: Minimum shares per worker before fanning out to threads: smaller
    #: batches stay on the calling thread in one aggregate check, since
    #: splitting a quorum-sized batch into single-share chunks would undo
    #: the amortisation (and pay thread handoff on top).
    MIN_CHUNK = 4

    def _verify(self, votes: list[Any]) -> list[int]:
        """Batch-verify, fanning chunks across the worker pool if present.

        The inline pool (and the no-pool DES path) runs the single
        aggregate check on the calling thread; a thread pool splits the
        batch into per-worker chunks so the asyncio runtime does the
        signature math off the protocol thread across real cores.
        """
        workers = getattr(self._pool, "workers", 1)
        if self._pool is None or workers <= 1 or len(votes) < 2 * self.MIN_CHUNK:
            return self._crypto.verify_votes(votes)
        size = -(-len(votes) // workers)  # ceil division
        chunks = [votes[i : i + size] for i in range(0, len(votes), size)]
        results = self._pool.map(self._crypto.verify_votes, chunks)
        bad: list[int] = []
        offset = 0
        for chunk, chunk_bad in zip(chunks, results):
            bad.extend(offset + index for index in chunk_bad)
            offset += len(chunk)
        return bad

    def admit(
        self,
        src: int,
        phase: Phase,
        view: int,
        block: BlockSummary,
        share: Any,
        carry: Any = None,
    ) -> GateResult:
        """Buffer one share; returns any votes released by this arrival.

        ``carry`` rides along unverified and is handed back with the
        release, so callers can thread the originating message through.
        """
        key = (phase, view, block.digest)
        target = self._targets.get(key)
        if target is None:
            target = self._targets[key] = _GateTarget()
        if target.done:
            self.dropped_late += 1
            return GateResult()
        if src in target.pending:
            return GateResult()
        target.pending[src] = (share, carry)
        if len(target.pending) < self._quorum:
            return GateResult()
        entries = sorted(target.pending.items())
        votes = [(signer, phase, view, block, sh) for signer, (sh, _) in entries]
        bad = set(self._verify(votes))
        self.rejected += len(bad)
        batch_size = len(entries)
        good = [(signer, pair) for index, (signer, pair) in enumerate(entries) if index not in bad]
        if len(good) < self._quorum:
            # Not enough valid shares yet: keep the good ones buffered and
            # wait for more, re-verifying the survivors with the next
            # arrival (they are few — only Byzantine floods hit this).
            target.pending = dict(good)
            return GateResult(released=(), batch_verified=batch_size)
        target.done = True
        target.pending.clear()
        released = tuple((signer, carried) for signer, (_, carried) in good)
        return GateResult(released=released, batch_verified=batch_size)

    def discard_view(self, view: int) -> None:
        """Drop all targets for views ``<= view`` (mirrors VoteCollector)."""
        stale = [key for key in self._targets if key[1] <= view]
        for key in stale:
            del self._targets[key]


class AdaptiveBatchController:
    """Keeps commit latency in a target band by resizing the batch cap.

    An EMA of observed proposal→commit latency drives a multiplicative
    controller: above the band the batch shrinks (×0.8) so blocks clear
    the pipe faster; below it the batch grows (×1.25) to amortise more
    signature work per QC.  Clamped to ``[min_batch, cap]``.
    """

    SHRINK = 0.8
    GROW = 1.25
    ALPHA = 0.3

    def __init__(
        self,
        band: tuple[float, float],
        min_batch: int,
        cap: int,
        metric: Any | None = None,
    ) -> None:
        low, high = band
        if not 0 < low < high:
            raise ValueError(f"need 0 < low < high, got {band}")
        if not 1 <= min_batch <= cap:
            raise ValueError(f"need 1 <= min_batch <= cap, got {min_batch}, {cap}")
        self.band = band
        self.min_batch = min_batch
        self.cap = cap
        self.ema: float | None = None
        self._metric = metric

    def observe(self, latency: float, current: int) -> int:
        """Fold in one commit latency; returns the new batch cap."""
        self.ema = (
            latency
            if self.ema is None
            else self.ALPHA * latency + (1 - self.ALPHA) * self.ema
        )
        low, high = self.band
        if self.ema > high:
            current = int(current * self.SHRINK)
        elif self.ema < low:
            current = int(current * self.GROW) or 1
        current = max(self.min_batch, min(self.cap, current))
        if self._metric is not None:
            self._metric.set(current)
        return current
