"""Quorum certificates and vote payloads (paper Section V-A).

A QC is a threshold signature (or signature bundle) over a vote message
``m`` for a block ``b``.  Following the paper's notation:

* ``type(qc)`` is ``m.type`` — here :attr:`QuorumCertificate.phase`;
* ``qc`` exposes the *formation view* ``m.view`` — the view whose votes
  built it — as :attr:`QuorumCertificate.view`.  The rank rules (Fig. 4)
  and the Case N1 check ``qc.view = cview`` operate on this view.  In the
  normal case it equals the block's own view; after a happy-path view
  change a ``prepareQC`` for an old block is formed from VIEW-CHANGE
  votes cast in the *new* view, and ranks accordingly;
* the block-level fields the paper writes ``qc.height`` / ``qc.pview``
  come from the embedded :class:`BlockSummary`.

A :class:`BlockSummary` is the digest-plus-metadata projection of a block
that votes and QCs carry: enough to run every rank comparison and
view-change rule without shipping operation payloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any

from repro.common.errors import InvalidQC
from repro.common.encoding import encode
from repro.consensus.block import Block
from repro.crypto.hashing import Digest, digest_of, short_hex


class Phase(Enum):
    """Message/QC types across all protocols in the repository.

    Marlin uses NEW_VIEW? no — Marlin uses VIEW_CHANGE, PRE_PREPARE,
    PREPARE, COMMIT (Section V-A).  The HotStuff baseline additionally
    uses PRECOMMIT and DECIDE.  GENERIC is the chained-mode phase.
    """

    VIEW_CHANGE = "view-change"
    PRE_PREPARE = "pre-prepare"
    PREPARE = "prepare"
    PRECOMMIT = "precommit"
    COMMIT = "commit"
    DECIDE = "decide"
    GENERIC = "generic"


@dataclass(frozen=True)
class BlockSummary:
    """Digest-linked block metadata carried by votes, QCs and view changes.

    ``justify_in_view`` records whether the block's ``justify`` is a
    ``prepareQC`` formed in the block's own view — the third clause of the
    paper's block-rank rule (Section V-A), which a verifier of a bare
    summary could not otherwise evaluate.
    """

    digest: Digest
    view: int
    height: int
    parent_view: int
    is_virtual: bool = False
    justify_in_view: bool = True

    def __post_init__(self) -> None:
        if len(self.digest) != 32:
            raise InvalidQC("block summary digest must be 32 bytes")
        if self.view < 0 or self.height < 0 or self.parent_view < 0:
            raise InvalidQC("block summary fields cannot be negative")

    @classmethod
    def of(cls, block: Block, justify_in_view: bool = True) -> "BlockSummary":
        return cls(
            digest=block.digest,
            view=block.view,
            height=block.height,
            parent_view=block.parent_view,
            is_virtual=block.is_virtual,
            justify_in_view=justify_in_view,
        )

    @property
    def wire_size(self) -> int:
        return 32 + 8 + 8 + 8 + 2

    def encodable(self) -> list:
        return [
            self.digest,
            self.view,
            self.height,
            self.parent_view,
            self.is_virtual,
            self.justify_in_view,
        ]

    def __repr__(self) -> str:
        kind = "virt" if self.is_virtual else "blk"
        return f"<{kind}sum v={self.view} h={self.height} {short_hex(self.digest)}>"


def vote_payload(phase: Phase, view: int, block: BlockSummary) -> bytes:
    """The byte string a vote signs: binds phase, formation view, block.

    Every voter for the same (phase, view, block) signs identical bytes,
    which is what lets ``t`` partial signatures combine into one QC.
    """
    return encode(["vote", phase.value, view, block.encodable()])


@dataclass(frozen=True)
class QuorumCertificate:
    """A certificate that ``n - f`` replicas voted (phase, view, block).

    ``signature`` is whatever the active crypto service produces: a
    combined :class:`~repro.crypto.threshold.ThresholdSignature`, a
    :class:`~repro.crypto.multisig.MultiSignature`, or an opaque token in
    fast-simulation mode.  Validation goes through the crypto service so
    protocol code never inspects it.
    """

    phase: Phase
    view: int
    block: BlockSummary
    signature: Any

    def __post_init__(self) -> None:
        if self.view < 0:
            raise InvalidQC("QC view cannot be negative")
        if self.phase == Phase.VIEW_CHANGE:
            raise InvalidQC("VIEW_CHANGE messages do not form QCs directly")

    @property
    def height(self) -> int:
        """``qc.height`` in the paper: the certified block's height."""
        return self.block.height

    @property
    def parent_view(self) -> int:
        """``qc.pview`` in the paper: the certified block's parent view."""
        return self.block.parent_view

    @property
    def block_digest(self) -> Digest:
        return self.block.digest

    @property
    def signed_payload(self) -> bytes:
        return vote_payload(self.phase, self.view, self.block)

    @property
    def wire_size(self) -> int:
        signature_size = getattr(self.signature, "wire_size", 32)
        return 1 + 8 + self.block.wire_size + int(signature_size)

    @property
    def digest(self) -> Digest:
        return digest_of(["qc", self.phase.value, self.view, self.block.encodable()])

    def __repr__(self) -> str:
        return (
            f"<QC {self.phase.value} view={self.view} "
            f"h={self.height} {short_hex(self.block.digest)}>"
        )


def genesis_qc(block: Block) -> QuorumCertificate:
    """A synthetic PREPARE QC for the genesis block, trusted by fiat.

    Every replica boots with this as its ``highQC``; it validates without
    signature checking (all crypto services special-case view 0).
    """
    return QuorumCertificate(
        phase=Phase.PREPARE,
        view=0,
        block=BlockSummary.of(block, justify_in_view=True),
        signature=None,
    )
