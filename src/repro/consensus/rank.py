"""Rank comparison rules (paper Fig. 4 and Section V-A).

Rank is a *partial* order: it only defines higher/lower/equal, never a
numeric value.  The QC rules, verbatim from Fig. 4 — ``rank(qc1) >
rank(qc2)`` iff one of:

(a) ``qc1.view > qc2.view``;
(b) same view, ``type(qc1) in {PREPARE, COMMIT}`` and
    ``type(qc2) = PRE-PREPARE``;
(c) same view, both types in ``{PREPARE, COMMIT}``, and
    ``qc1.height > qc2.height``.

If neither direction holds, the ranks are equal.  Consequences the
protocol relies on: two ``pre-prepareQC``s from one view always tie (a
correct leader in Case V3 may hold two); PREPARE and COMMIT QCs for the
same block tie; within a view, later (taller) prepare QCs dominate.

Block ranks (Section V-A): ``rank(b1) > rank(b2)`` iff ``b1.view >
b2.view``, or (same view, ``b1.height > b2.height``, **and** ``b1``'s
justify is a ``prepareQC`` formed in ``b1``'s own view).  The extra
clause makes the two shadow proposals of a view change (whose justifies
come from older views) mutually unordered, so a replica that prepare-voted
one never prepare-votes the other — the paper's fix for "forking".
"""

from __future__ import annotations

from enum import Enum

from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate

_RANKED_HIGH = frozenset({Phase.PREPARE, Phase.COMMIT})


class Rank(Enum):
    """Outcome of a rank comparison."""

    LOWER = -1
    EQUAL = 0
    HIGHER = 1

    @property
    def at_least(self) -> bool:
        """True for HIGHER or EQUAL — the paper's ``rank(a) >= rank(b)``."""
        return self is not Rank.LOWER


def qc_rank_higher(qc1: QuorumCertificate, qc2: QuorumCertificate) -> bool:
    """Fig. 4: is ``rank(qc1) > rank(qc2)``?"""
    if qc1.view != qc2.view:
        return qc1.view > qc2.view
    if qc1.phase in _RANKED_HIGH and qc2.phase == Phase.PRE_PREPARE:
        return True
    if qc1.phase in _RANKED_HIGH and qc2.phase in _RANKED_HIGH:
        return qc1.height > qc2.height
    return False


def compare_qc_rank(qc1: QuorumCertificate | None, qc2: QuorumCertificate | None) -> Rank:
    """Three-way rank comparison; ``None`` ranks below everything.

    Two ``None``s compare equal (both "no QC yet").
    """
    if qc1 is None and qc2 is None:
        return Rank.EQUAL
    if qc1 is None:
        return Rank.LOWER
    if qc2 is None:
        return Rank.HIGHER
    if qc_rank_higher(qc1, qc2):
        return Rank.HIGHER
    if qc_rank_higher(qc2, qc1):
        return Rank.LOWER
    return Rank.EQUAL


def block_rank_higher(b1: BlockSummary, b2: BlockSummary) -> bool:
    """Section V-A: is ``rank(b1) > rank(b2)``?"""
    if b1.view > b2.view:
        return True
    if b1.view == b2.view and b1.height > b2.height and b1.justify_in_view:
        return True
    return False


def compare_block_rank(b1: BlockSummary | None, b2: BlockSummary | None) -> Rank:
    """Three-way block-rank comparison; ``None`` ranks below everything."""
    if b1 is None and b2 is None:
        return Rank.EQUAL
    if b1 is None:
        return Rank.LOWER
    if b2 is None:
        return Rank.HIGHER
    if block_rank_higher(b1, b2):
        return Rank.HIGHER
    if block_rank_higher(b2, b1):
        return Rank.LOWER
    return Rank.EQUAL


def highest_qcs(qcs: list[QuorumCertificate]) -> list[QuorumCertificate]:
    """All maxima of the rank partial order over ``qcs``, deduplicated.

    This computes the view-change ``highQC_v``: "valid QC(s) with the
    highest rank" — possibly two pre-prepareQCs of equal rank (Lemma 4).
    """
    maxima: list[QuorumCertificate] = []
    for qc in qcs:
        dominated = False
        for other in qcs:
            if other is not qc and qc_rank_higher(other, qc):
                dominated = True
                break
        if dominated:
            continue
        if any(
            existing.phase == qc.phase
            and existing.view == qc.view
            and existing.block == qc.block
            for existing in maxima
        ):
            continue
        maxima.append(qc)
    return maxima


def highest_block(blocks: list[BlockSummary]) -> BlockSummary | None:
    """One block with the highest rank (the view-change ``b_v``)."""
    best: BlockSummary | None = None
    for block in blocks:
        if best is None or block_rank_higher(block, best):
            best = block
    return best
