"""The committed ledger: a monotonically growing branch.

Commitment in BFT-over-graphs (Section III-A): committing block ``b``
commits every uncommitted ancestor first, and the committed branch only
ever grows.  The ledger enforces that invariant defensively — an attempt
to commit a block conflicting with the committed branch raises
:class:`~repro.common.errors.SafetyViolation`, which the safety test
suites use as a tripwire (it must never fire for correct protocols).

The ledger also drives execution: committed operations are applied, in
block order, to an application callback, and per-operation commit
latencies are handed to the metrics sink.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import SafetyViolation
from repro.consensus.block import Block, Operation
from repro.consensus.blocktree import BlockTree
from repro.crypto.hashing import Digest


class Ledger:
    """Tracks the committed branch of one replica and executes it."""

    def __init__(
        self,
        tree: BlockTree,
        on_execute: Callable[[Block, Operation], None] | None = None,
        on_commit_block: Callable[[Block], None] | None = None,
    ) -> None:
        self._tree = tree
        self._on_execute = on_execute
        self._on_commit_block = on_commit_block
        self._committed: list[Digest] = [tree.genesis.digest]
        self._committed_set: set[Digest] = {tree.genesis.digest}
        self._executed_keys: set[tuple[int, int]] = set()
        self._ops_committed = 0

    def set_executor(self, on_execute: Callable[[Block, Operation], None]) -> None:
        """Attach (or replace) the application execution callback."""
        self._on_execute = on_execute

    @property
    def committed_head(self) -> Block:
        head = self._tree.get(self._committed[-1])
        assert head is not None, "committed head must stay in the tree"
        return head

    @property
    def committed_height(self) -> int:
        return self.committed_head.height

    @property
    def num_committed_blocks(self) -> int:
        """Committed blocks excluding genesis."""
        return len(self._committed) - 1

    @property
    def ops_committed(self) -> int:
        return self._ops_committed

    def is_committed(self, digest: Digest) -> bool:
        return digest in self._committed_set

    def committed_digests(self) -> list[Digest]:
        return list(self._committed)

    def can_commit(self, block: Block) -> bool:
        """True if ``block``'s branch is fully known down to the head."""
        if block.digest in self._committed_set:
            return True
        return self._tree.path_between(self._committed[-1], block) is not None

    def mark_committed(self, block: Block) -> None:
        """Restore path: record ``block`` as committed WITHOUT executing.

        Used when rebuilding a replica from durable storage, where the
        application state was persisted separately — re-executing would
        double-apply.  The block must directly extend the committed head.
        """
        if block.digest in self._committed_set:
            return
        head = self.committed_head
        if self._tree.parent_digest(block) != head.digest:
            raise SafetyViolation(
                f"restore out of order: {block!r} does not extend {head!r}"
            )
        self._committed.append(block.digest)
        self._committed_set.add(block.digest)
        for op in block.operations:
            if op.key() not in self._executed_keys:
                self._executed_keys.add(op.key())
                self._ops_committed += op.weight

    def install_snapshot(self, head: Block) -> None:
        """Adopt ``head`` as the committed frontier without replay.

        Used by checkpoint-based state transfer: the application state
        arrives separately; the ledger only needs to know where the
        committed branch now ends.  History below ``head`` is treated as
        committed-but-unknown (operation dedup restarts at the snapshot
        boundary, as in checkpointed BFT systems generally).
        """
        if self._committed_set and head.digest in self._committed_set:
            return
        if head.height <= self.committed_head.height and len(self._committed) > 1:
            raise SafetyViolation(
                f"snapshot head {head!r} is below the committed head"
            )
        self._tree.add(head)
        self._committed = [head.digest]
        self._committed_set = {head.digest}
        self._executed_keys.clear()

    def commit(self, block: Block) -> list[Block]:
        """Commit ``block`` and all uncommitted ancestors; returns them.

        Raises :class:`SafetyViolation` if ``block`` conflicts with the
        committed branch, and ``ValueError`` if ancestors are missing
        (callers must block-sync first; see :meth:`can_commit`).
        """
        if block.digest in self._committed_set:
            return []
        path = self._tree.path_between(self._committed[-1], block)
        if path is None:
            if self._tree.missing_ancestor(block) is not None:
                raise ValueError(
                    f"cannot commit {block!r}: branch has gaps (sync required)"
                )
            raise SafetyViolation(
                f"block {block!r} conflicts with committed head {self.committed_head!r}"
            )
        executed = self._executed_keys
        on_execute = self._on_execute
        on_commit_block = self._on_commit_block
        for node in path:
            self._committed.append(node.digest)
            self._committed_set.add(node.digest)
            for op in node.operations:
                # Exactly-once execution: an operation re-proposed by a
                # later leader (possible under rotation) executes once.
                key = op._key
                if key in executed:
                    continue
                executed.add(key)
                self._ops_committed += op.weight
                if on_execute is not None:
                    on_execute(node, op)
            if on_commit_block is not None:
                on_commit_block(node)
        return path
