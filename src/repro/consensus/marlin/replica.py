"""The Marlin replica (paper Section V, Figures 6, 7 and 9).

Normal case — two phases:

* **prepare**: the leader broadcasts a block whose ``justify`` is its
  ``highQC``; replicas vote if the block outranks their last voted block
  and the justify outranks their ``lockedQC``.  Receiving a ``prepareQC``
  in a justify *locks* a replica on it (two-phase locking);
* **commit**: the leader broadcasts the freshly combined ``prepareQC``;
  replicas lock on it and vote; the combined ``commitQC`` is forwarded
  (DECIDE) and everyone commits the block and its ancestors.

The leader pipelines: as soon as ``prepareQC(b_k)`` forms it broadcasts
``COMMIT(b_k)`` and proposes ``b_{k+1}`` justified by that same QC, so at
steady state one block enters the pipeline per round trip while each block
commits after two.

View change — two or three phases:

* every replica entering view ``v`` sends the leader a VIEW-CHANGE with
  its last voted block ``lb``, its ``highQC``, and a partial signature
  over the *prepare vote for lb in view v*;
* **happy path** (two phases): if all ``n - f`` VIEW-CHANGE messages name
  the same ``lb``, the leader combines the partial signatures directly
  into a ``prepareQC`` (formation view ``v``) and resumes the normal case;
* **unhappy path** (three phases): the leader runs the **pre-prepare**
  phase, choosing Case V1 / V2 / V3 of Fig. 9 — possibly proposing a
  *virtual block* (a block whose parent may not exist) alongside a normal
  one, the two sharing one operation payload (*shadow blocks*); replicas
  answer according to Cases R1 / R2 / R3, where R2 both votes for the
  virtual block and ships the voter's ``lockedQC`` (the future ``vc``
  that gives the virtual block a real parent).

Replicas never lock on a ``pre-prepareQC`` (that is precisely the
insecure-two-phase bug of Section IV-B); locks move only to higher-ranked
``prepareQC``s.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.common.config import ClusterConfig
from repro.common.errors import CryptoError, InvalidVote
from repro.consensus.block import Block
from repro.consensus.context import NodeContext
from repro.consensus.costs import ZeroCostModel
from repro.consensus.crypto_service import CryptoService
from repro.consensus.messages import (
    Justify,
    PhaseMsg,
    PrePrepareMsg,
    Proposal,
    ViewChangeMsg,
    VoteMsg,
)
from repro.consensus.pipeline import PipelineConfig
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.consensus.rank import (
    Rank,
    block_rank_higher,
    compare_qc_rank,
    highest_block,
    highest_qcs,
)
from repro.consensus.replica_base import ReplicaBase


class MarlinReplica(ReplicaBase):
    """One Marlin replica; drive it with ``start()`` and ``on_message()``."""

    def __init__(
        self,
        replica_id: int,
        config: ClusterConfig,
        ctx: NodeContext,
        crypto: CryptoService,
        costs: ZeroCostModel | None = None,
        rotation_interval: float | None = None,
        force_unhappy: bool = False,
        forward_requests: bool = True,
        pipeline: PipelineConfig | None = None,
    ) -> None:
        super().__init__(
            replica_id,
            config,
            ctx,
            crypto,
            costs,
            rotation_interval,
            forward_requests,
            pipeline,
        )
        #: Skip the happy path even when every lb matches — used by the
        #: view-change benchmarks to force the pre-prepare phase (Fig 10i).
        self.force_unhappy = force_unhappy

        genesis_summary = BlockSummary.of(self.genesis, justify_in_view=True)
        self.last_voted: BlockSummary = genesis_summary
        self.locked_qc: QuorumCertificate = self.genesis_qc
        self.high_qc: Justify = Justify(self.genesis_qc)

        # Leader-side state, reset at each view entry.
        self._leader_ready = False
        self._outstanding_prepare: bytes | None = None
        self._vc_messages: dict[int, dict[int, ViewChangeMsg]] = {}
        self._pre_prepare_started: set[int] = set()
        self._pending_ppqcs: dict[int, list[QuorumCertificate]] = {}
        self._best_vc: dict[int, QuorumCertificate] = {}
        self._verified_blocks: set[bytes] = set()

        self.stats.update(
            {
                "happy_view_changes": 0,
                "unhappy_view_changes": 0,
                "case_v1": 0,
                "case_v2": 0,
                "case_v3": 0,
                "votes_r1": 0,
                "votes_r2": 0,
                "votes_r3": 0,
                "lemma4_violations": 0,
            }
        )
        self._handlers: dict[type, Callable[[int, Any], None]] = {
            **self._base_handlers(),
            PhaseMsg: self._on_phase_msg,
            PrePrepareMsg: self._on_pre_prepare,
            VoteMsg: self._on_vote,
            ViewChangeMsg: self._on_view_change,
        }

    @property
    def handlers(self) -> dict[type, Callable[[int, Any], None]]:
        return self._handlers

    # =================================================== view entry / exit

    def _enter_view(self, view: int) -> None:
        self._leader_ready = False
        self._outstanding_prepare = None
        share = self.crypto.sign_vote(self.id, Phase.PREPARE, view, self.last_voted)
        self.ctx.charge(self.costs.sign_vote())
        message = ViewChangeMsg(
            view=view, last_voted=self.last_voted, justify=self.high_qc, share=share
        )
        self.ctx.send(self.leader_of(view), message)
        self.obs.view_change_event("view-change-sent", view, leader=self.leader_of(view))

    def _catch_up(self, view: int, proof: QuorumCertificate) -> bool:
        """Jump to ``view`` when a QC proves a quorum entered it."""
        if view <= self.cview:
            return True
        if proof.view >= view and self.crypto.qc_is_valid(proof):
            self._advance_view(view)
            return True
        return False

    # ======================================================== leader: VCs

    def _on_view_change(self, src: int, msg: ViewChangeMsg) -> None:
        if msg.view < self.cview or self.leader_of(msg.view) != self.id:
            return
        if msg.view in self._pre_prepare_started:
            return
        if msg.last_voted is None:
            return
        if not self._validate_justify(msg.justify, before_view=msg.view):
            return
        try:
            self.ctx.charge(self.costs.verify_vote())
            self.crypto.verify_vote(src, Phase.PREPARE, msg.view, msg.last_voted, msg.share)
        except InvalidVote:
            return
        bucket = self._vc_messages.setdefault(msg.view, {})
        bucket[src] = msg
        if msg.justify is not None and msg.justify.qc.phase == Phase.PREPARE:
            self._offer_vc_candidate(msg.view, msg.justify.qc)
        if len(bucket) >= self.config.quorum:
            self._begin_pre_prepare(msg.view)

    def _offer_vc_candidate(self, view: int, qc: QuorumCertificate) -> None:
        """Track the highest prepareQC seen — a future virtual-block vc."""
        current = self._best_vc.get(view)
        if current is None or compare_qc_rank(qc, current) is Rank.HIGHER:
            self._best_vc[view] = qc

    def _begin_pre_prepare(self, view: int) -> None:
        if view in self._pre_prepare_started:
            return
        self._pre_prepare_started.add(view)
        if self.cview < view:
            self._advance_view(view)
        messages = self._vc_messages.pop(view, {})

        if not self.force_unhappy and self._try_happy_path(view, messages):
            self.stats["happy_view_changes"] += 1
            self.obs.view_change_event("happy-qc", view)
            return
        self.stats["unhappy_view_changes"] += 1
        self.obs.view_change_event("pre-prepare-start", view)
        self._run_pre_prepare_cases(view, messages)

    def _try_happy_path(self, view: int, messages: dict[int, ViewChangeMsg]) -> bool:
        """Two-phase view change: combine VC partial sigs into a prepareQC."""
        summaries = {m.last_voted for m in messages.values() if m.last_voted is not None}
        if len(summaries) != 1 or len(messages) < self.config.quorum:
            return False
        (lb,) = summaries
        accumulator = self.crypto.accumulator(Phase.PREPARE, view, lb)
        for src, msg in messages.items():
            accumulator.add(src, msg.share)
        if not accumulator.complete:
            return False
        try:
            qc = self.crypto.make_qc(Phase.PREPARE, view, lb, accumulator)
        except CryptoError:
            return False
        self.ctx.charge(self.costs.combine(self.config.quorum))
        self.high_qc = Justify(qc)
        self._leader_ready = True
        # Two-phase resume: commit lb (idempotent if already committed)
        # and pipeline the next proposal in the same instant.
        self.ctx.broadcast(PhaseMsg(phase=Phase.COMMIT, view=view, justify=Justify(qc)))
        self._maybe_propose()
        return True

    def _run_pre_prepare_cases(self, view: int, messages: dict[int, ViewChangeMsg]) -> None:
        """Leader Cases V1 / V2 / V3 of Fig. 9."""
        justifies: dict[bytes, Justify] = {}
        for msg in messages.values():
            if msg.justify is not None:
                justifies.setdefault(msg.justify.qc.digest, msg.justify)
        candidates = [justify.qc for justify in justifies.values()]
        maxima = highest_qcs(candidates)
        bv = highest_block([m.last_voted for m in messages.values() if m.last_voted])
        batch = self.pool.next_batch()

        proposals: list[Proposal]
        if len(maxima) == 1 and maxima[0].phase == Phase.PREPARE:
            qc = maxima[0]
            if bv is not None and block_rank_higher(bv, qc.block):
                # Case V1: shadow-propose a normal and a virtual block.
                self.stats["case_v1"] += 1
                normal = self._extend(qc.block, view, batch, qc)
                virtual = Block(
                    parent_link=None,
                    parent_view=qc.view,
                    view=view,
                    height=qc.block.height + 2,
                    operations=batch,
                    justify_digest=qc.digest,
                    proposer=self.id,
                )
                proposals = [
                    Proposal(normal, Justify(qc)),
                    Proposal(virtual, Justify(qc)),
                ]
            else:
                # Case V2 (prepareQC variant): safe snapshot, one block.
                self.stats["case_v2"] += 1
                proposals = [Proposal(self._extend(qc.block, view, batch, qc), Justify(qc))]
        elif len(maxima) == 1:
            # Case V2 (single pre-prepareQC variant).
            self.stats["case_v2"] += 1
            qc = maxima[0]
            justify = justifies[qc.digest]
            proposals = [Proposal(self._extend(qc.block, view, batch, qc), justify)]
        else:
            # Case V3: two pre-prepareQCs of equal rank (Lemma 4 caps it
            # at two for correct executions; extras are defensively
            # ignored and counted — the fuzz suite asserts this never
            # fires without Byzantine equivocation).
            if len(maxima) > 2:
                self.stats["lemma4_violations"] += 1
            self.stats["case_v3"] += 1
            first, second = maxima[0], maxima[1]
            proposals = [
                Proposal(self._extend(first.block, view, batch, first), justifies[first.digest]),
                Proposal(self._extend(second.block, view, batch, second), justifies[second.digest]),
            ]
        for proposal in proposals:
            self.tree.add(proposal.block)
        self.stats["proposals_sent"] += 1
        self.obs.view_change_event("pre-prepare-broadcast", view, proposals=len(proposals))
        self.ctx.broadcast(
            PrePrepareMsg(view=view, proposals=tuple(proposals), shadow=len(proposals) == 2)
        )

    def _extend(
        self, parent: BlockSummary, view: int, batch: tuple, qc: QuorumCertificate
    ) -> Block:
        return Block(
            parent_link=parent.digest,
            parent_view=parent.view,
            view=view,
            height=parent.height + 1,
            operations=batch,
            justify_digest=qc.digest,
            proposer=self.id,
        )

    # ============================================ replica: pre-prepare (R*)

    def _on_pre_prepare(self, src: int, msg: PrePrepareMsg) -> None:
        if msg.view < self.cview or self.leader_of(msg.view) != src:
            return
        if msg.view > self.cview:
            # A pre-prepare justify is formed *before* msg.view, so it
            # cannot prove a quorum entered msg.view; only replicas whose
            # own timeout reached the view participate, which is enough
            # (the leader already holds n - f VIEW-CHANGE messages).
            return
        for proposal in msg.proposals:
            self._consider_pre_prepare_vote(src, msg.view, proposal)

    def _consider_pre_prepare_vote(self, leader: int, view: int, proposal: Proposal) -> None:
        justify = proposal.justify
        block = proposal.block
        if block.view != view or block.justify_digest != justify.qc.digest:
            return
        if not self._validate_justify(justify, before_view=view):
            return
        qc = justify.qc
        if block.is_virtual:
            # Valid virtual block: justified by a prepareQC, two heights
            # above it, parent view = the QC's formation view (Fig. 9 V1).
            if qc.phase != Phase.PREPARE or justify.vc is not None:
                return
            if block.height != qc.block.height + 2 or block.parent_view != qc.view:
                return
        else:
            if (
                block.parent_link != qc.block.digest
                or block.height != qc.block.height + 1
                or block.parent_view != qc.block.view
            ):
                return

        locked = self.locked_qc
        attach: QuorumCertificate | None = None
        if compare_qc_rank(qc, locked).at_least:
            self.stats["votes_r1"] += 1  # Case R1
            case = "R1"
        elif (
            justify.vc is None
            and qc.phase == Phase.PREPARE
            and block.is_virtual
            and qc.view == locked.view
            and qc.block.height == locked.block.height - 1
        ):
            self.stats["votes_r2"] += 1  # Case R2: also ship lockedQC.
            attach = locked
            case = "R2"
        elif qc.phase == Phase.PRE_PREPARE and qc.block.digest == locked.block.digest:
            self.stats["votes_r3"] += 1  # Case R3
            case = "R3"
        else:
            return

        self.tree.add(block)
        summary = proposal.summary
        self.obs.view_change_event(
            "pre-prepare-vote", view, case=case, virtual=block.is_virtual
        )
        share = self.crypto.sign_vote(self.id, Phase.PRE_PREPARE, view, summary)
        self._send_vote(
            leader,
            VoteMsg(
                phase=Phase.PRE_PREPARE,
                view=view,
                block=summary,
                share=share,
                locked_qc=attach,
            ),
        )

    # ======================================================== vote intake

    def _on_vote(self, src: int, vote: VoteMsg) -> None:
        if vote.view != self.cview or not self.is_leader(vote.view):
            return
        if self._vote_gate is not None:
            result = self._vote_gate.admit(
                src, vote.phase, vote.view, vote.block, vote.share, carry=vote
            )
            if result.batch_verified:
                self.ctx.charge(self.costs.verify_votes_batch(result.batch_verified))
            for signer, released in result.released:
                self._dispatch_vote(signer, released)
            return
        try:
            self.ctx.charge(self.costs.verify_vote())
            self.crypto.verify_vote(src, vote.phase, vote.view, vote.block, vote.share)
        except InvalidVote:
            return
        self._dispatch_vote(src, vote)

    def _dispatch_vote(self, src: int, vote: VoteMsg) -> None:
        if vote.phase == Phase.PRE_PREPARE:
            self._on_pre_prepare_vote(src, vote)
        elif vote.phase == Phase.PREPARE:
            self._on_prepare_vote(src, vote)
        elif vote.phase == Phase.COMMIT:
            self._on_commit_vote(src, vote)

    def _on_pre_prepare_vote(self, src: int, vote: VoteMsg) -> None:
        view = vote.view
        if self._leader_ready:
            return
        if vote.locked_qc is not None:
            # R2 attachment: a prepareQC that may validate the virtual block.
            if vote.locked_qc.phase == Phase.PREPARE and self.crypto.qc_is_valid(vote.locked_qc):
                self._charge_qc_verify(vote.locked_qc)
                self._offer_vc_candidate(view, vote.locked_qc)
        qc = self.collector.add_vote(Phase.PRE_PREPARE, view, vote.block, src, vote.share)
        if qc is not None:
            self.ctx.charge(self.costs.combine(self.config.quorum))
            self._pending_ppqcs.setdefault(view, []).append(qc)
            self.obs.qc_formed(qc.block.digest, "pre-prepare", view, qc)
        self._try_start_prepare(view)

    def _try_start_prepare(self, view: int) -> None:
        """Case 1 / Case 2 of Section IV-D: use the first usable ppQC."""
        if self._leader_ready:
            return
        for qc in self._pending_ppqcs.get(view, []):
            if not qc.block.is_virtual:
                self.high_qc = Justify(qc)
            else:
                vc = self._best_vc.get(view)
                if (
                    vc is None
                    or vc.view != qc.parent_view
                    or vc.block.height != qc.block.height - 1
                ):
                    continue
                self.tree.resolve_virtual_parent(qc.block.digest, vc.block.digest)
                self.high_qc = Justify(qc, vc)
            self._leader_ready = True
            self._outstanding_prepare = qc.block.digest
            self.stats["proposals_sent"] += 1
            self.obs.block_proposed(qc.block.digest, view, qc.block.height)
            self.obs.phase_begin(qc.block.digest, "prepare", view, qc.block.height)
            # Case N2 re-proposes by reference: the block travelled in the
            # PRE-PREPARE broadcast, so this PREPARE carries only the QC.
            self.ctx.broadcast(
                PhaseMsg(phase=Phase.PREPARE, view=view, justify=self.high_qc, block=None)
            )
            return

    def _on_prepare_vote(self, src: int, vote: VoteMsg) -> None:
        qc = self.collector.add_vote(Phase.PREPARE, vote.view, vote.block, src, vote.share)
        if qc is None:
            return
        self.ctx.charge(self.costs.combine(self.config.quorum))
        self.obs.qc_formed(qc.block.digest, "prepare", vote.view, qc)
        if self._outstanding_prepare == vote.block.digest:
            self._outstanding_prepare = None
        if compare_qc_rank(qc, self.high_qc.qc) is Rank.HIGHER:
            self.high_qc = Justify(qc)
        self._leader_ready = True
        self.ctx.broadcast(PhaseMsg(phase=Phase.COMMIT, view=vote.view, justify=Justify(qc)))
        self._maybe_propose()

    def _on_commit_vote(self, src: int, vote: VoteMsg) -> None:
        qc = self.collector.add_vote(Phase.COMMIT, vote.view, vote.block, src, vote.share)
        if qc is None:
            return
        self.ctx.charge(self.costs.combine(self.config.quorum))
        self.obs.qc_formed(qc.block.digest, "commit", vote.view, qc)
        self.ctx.broadcast(PhaseMsg(phase=Phase.DECIDE, view=vote.view, justify=Justify(qc)))

    # ================================================== normal case phases

    def _maybe_propose(self) -> None:
        """Case N1: extend the block of a current-view prepareQC."""
        if not self.is_leader() or not self._leader_ready:
            return
        if self._outstanding_prepare is not None:
            return
        qc = self.high_qc.qc
        if qc.phase != Phase.PREPARE or qc.view != self.cview:
            return
        block = self._take_speculative(qc)
        if block is None:
            batch = self.pool.next_batch()
            if not batch:
                return
            block = self._extend(qc.block, self.cview, batch, qc)
        self.tree.add(block)
        self._verified_blocks.add(block.digest)
        self._outstanding_prepare = block.digest
        self.stats["proposals_sent"] += 1
        self._note_proposed(block.digest)
        self.obs.block_proposed(block.digest, self.cview, block.height)
        self.obs.ops_proposed(block)
        self.obs.phase_begin(block.digest, "prepare", self.cview, block.height)
        self.ctx.broadcast(
            PhaseMsg(phase=Phase.PREPARE, view=self.cview, justify=Justify(qc), block=block)
        )
        self._stage_next(block, qc)

    def _on_phase_msg(self, src: int, msg: PhaseMsg) -> None:
        if msg.phase == Phase.PREPARE:
            self._on_prepare(src, msg)
        elif msg.phase == Phase.COMMIT:
            self._on_commit(src, msg)
        elif msg.phase == Phase.DECIDE:
            self._on_decide(src, msg)

    def _on_prepare(self, src: int, msg: PhaseMsg) -> None:
        if self.leader_of(msg.view) != src:
            return
        if msg.view > self.cview and not self._catch_up(msg.view, msg.justify.qc):
            return
        if msg.view != self.cview:
            return
        block = msg.block
        justify = msg.justify
        qc = justify.qc
        if qc.phase == Phase.PREPARE:
            # Case N1: a fresh block extending block(qc), carried in full.
            if block is None or justify.is_composite:
                return
            if block.view != msg.view:
                return
            if (
                block.justify_digest != qc.digest
                or block.parent_link != qc.block.digest
                or block.height != qc.block.height + 1
            ):
                return
            summary = BlockSummary.of(block, justify_in_view=qc.view == block.view)
        elif qc.phase == Phase.PRE_PREPARE:
            # Case N2: the block *is* block(qc).  It normally travels by
            # reference (it was broadcast in the PRE-PREPARE); a replica
            # that never received it can still vote from the summary and
            # fetch the body before committing.
            if qc.block.view != msg.view:
                return
            if block is not None and block.digest != qc.block.digest:
                return
            if justify.is_composite != qc.block.is_virtual:
                return
            summary = qc.block
        else:
            return
        if not block_rank_higher(summary, self.last_voted):
            return
        if not self._validate_justify(justify, before_view=None):
            return
        if qc.view != self.cview:
            return
        if not compare_qc_rank(qc, self.locked_qc).at_least:
            return
        if block is not None:
            if block.digest not in self._verified_blocks:
                self.ctx.charge(self.costs.verify_block(block))
                self._verified_blocks.add(block.digest)
            self.tree.add(block)
        self.obs.phase_begin(summary.digest, "prepare", msg.view, summary.height)
        self.obs.view_change_done(msg.view)
        share = self.crypto.sign_vote(self.id, Phase.PREPARE, msg.view, summary)
        self._send_vote(
            src, VoteMsg(phase=Phase.PREPARE, view=msg.view, block=summary, share=share)
        )
        self.last_voted = summary
        self.high_qc = justify
        if qc.phase == Phase.PREPARE and compare_qc_rank(qc, self.locked_qc) is Rank.HIGHER:
            self.locked_qc = qc

    def _on_commit(self, src: int, msg: PhaseMsg) -> None:
        if self.leader_of(msg.view) != src:
            return
        qc = msg.justify.qc
        if qc.phase != Phase.PREPARE or qc.view != msg.view:
            return
        if msg.view > self.cview and not self._catch_up(msg.view, qc):
            return
        if msg.view != self.cview:
            return
        self._verify_justify_sigs(msg.justify)
        if not self.crypto.qc_is_valid(qc):
            return
        self.obs.phase_end(qc.block.digest, "prepare")
        self.obs.phase_begin(qc.block.digest, "commit", msg.view, qc.block.height)
        self.obs.view_change_done(msg.view)
        share = self.crypto.sign_vote(self.id, Phase.COMMIT, msg.view, qc.block)
        self._send_vote(
            src, VoteMsg(phase=Phase.COMMIT, view=msg.view, block=qc.block, share=share)
        )
        if compare_qc_rank(qc, self.locked_qc) is Rank.HIGHER:
            self.locked_qc = qc
        if compare_qc_rank(qc, self.high_qc.qc) is Rank.HIGHER:
            self.high_qc = Justify(qc)

    def _on_decide(self, src: int, msg: PhaseMsg) -> None:
        qc = msg.justify.qc
        if qc.phase != Phase.COMMIT:
            return
        self._verify_justify_sigs(msg.justify)
        if not self.crypto.qc_is_valid(qc):
            return
        if msg.view > self.cview:
            self._catch_up(msg.view, qc)
        self._commit_by_qc(qc)

    # ------------------------------------------------------------ helpers

    def _verify_justify_sigs(self, justify: Justify) -> None:
        for qc in justify.qcs():
            self._charge_qc_verify(qc)

    def _validate_justify(self, justify: Justify | None, before_view: int | None) -> bool:
        """Structural + signature validation of a justify.

        ``before_view`` enforces the view-change requirement that every QC
        was formed before the new view; pass None to skip that check.
        """
        if justify is None:
            return False
        qc = justify.qc
        if before_view is not None and qc.view >= before_view:
            return False
        if justify.vc is not None:
            vc = justify.vc
            if qc.phase != Phase.PRE_PREPARE or not qc.block.is_virtual:
                return False
            if vc.view != qc.parent_view or vc.block.height != qc.block.height - 1:
                return False
            if before_view is not None and vc.view >= before_view:
                return False
        self._verify_justify_sigs(justify)
        for item in justify.qcs():
            if not self.crypto.qc_is_valid(item):
                return False
        if justify.vc is not None:
            self.tree.resolve_virtual_parent(qc.block.digest, justify.vc.block.digest)
        return True
