"""Marlin: two-phase BFT with linearity (the paper's contribution).

* :mod:`repro.consensus.marlin.replica` — the full protocol of Section V:
  two-phase normal case (Fig. 6/7), three-case view change (Fig. 9) with
  virtual and shadow blocks, and the two-phase happy-path view change.
"""

from repro.consensus.marlin.replica import MarlinReplica

__all__ = ["MarlinReplica"]
