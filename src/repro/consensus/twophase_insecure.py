"""The insecure two-phase HotStuff strawman (paper Section IV-B).

Normal case: identical to Marlin (prepare + commit, lock on
``prepareQC``).  View change: the naive design — the new leader picks the
highest ``prepareQC`` from ``n - f`` VIEW-CHANGE messages and immediately
proposes an extension of its block; replicas vote only if that QC ranks at
least as high as their lock.

The defect (Fig. 2b): with an *unsafe snapshot* the leader's chosen QC may
rank below some correct replica's lock; that replica refuses every
proposal, and with ``f`` Byzantine replicas withholding votes the quorum
is unreachable — liveness fails even though all messages arrive.  The
test suite and ``examples/view_change_anatomy.py`` reproduce the failure
and show Marlin recovering from the identical scenario (its PRE-PREPARE
broadcast reaches the locked replica, which unlocks it via Case R2).

This protocol is **intentionally broken**; it exists to demonstrate why
Marlin's pre-prepare phase is necessary.  Never deploy it.
"""

from __future__ import annotations

from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import Justify, PhaseMsg, ViewChangeMsg, VoteMsg
from repro.consensus.qc import BlockSummary, Phase
from repro.consensus.rank import Rank, block_rank_higher, compare_qc_rank, highest_qcs


class TwoPhaseInsecureReplica(MarlinReplica):
    """Marlin's normal case with the broken direct-extension view change."""

    def _begin_pre_prepare(self, view: int) -> None:
        """Naive new-view: extend the highest prepareQC, no pre-prepare."""
        if view in self._pre_prepare_started:
            return
        self._pre_prepare_started.add(view)
        if self.cview < view:
            self._advance_view(view)
        messages = self._vc_messages.pop(view, {})
        prepare_qcs = [
            m.justify.qc
            for m in messages.values()
            if m.justify is not None and m.justify.qc.phase == Phase.PREPARE
        ]
        maxima = highest_qcs(prepare_qcs)
        if not maxima:
            return
        qc = maxima[0]
        batch = self.pool.next_batch()
        block = self._extend(qc.block, view, batch, qc)
        self.tree.add(block)
        self._leader_ready = True
        self._outstanding_prepare = block.digest
        self.stats["proposals_sent"] += 1
        self.ctx.broadcast(
            PhaseMsg(phase=Phase.PREPARE, view=view, justify=Justify(qc), block=block)
        )

    def _on_view_change(self, src: int, msg: ViewChangeMsg) -> None:
        # Reuse Marlin's collection, minus the R2 vc bookkeeping.
        super()._on_view_change(src, msg)

    def _on_prepare(self, src: int, msg: PhaseMsg) -> None:
        """Marlin's Case N1 with the view restriction dropped.

        The justify may be a prepareQC from an *older* view (the naive
        view change reuses it directly); a replica votes iff it ranks at
        least as high as its lock.  That "iff" is exactly the bug: a
        replica locked higher refuses forever.
        """
        if self.leader_of(msg.view) != src or msg.block is None:
            return
        if msg.view > self.cview and not self._catch_up_insecure(msg.view):
            return
        if msg.view != self.cview:
            return
        block = msg.block
        justify = msg.justify
        qc = justify.qc
        if justify.is_composite or qc.phase != Phase.PREPARE:
            return
        if block.justify_digest != qc.digest or block.view != msg.view:
            return
        if (
            block.parent_link != qc.block.digest
            or block.height != qc.block.height + 1
        ):
            return
        summary = BlockSummary.of(
            block, justify_in_view=(qc.view == block.view)
        )
        if not block_rank_higher(summary, self.last_voted):
            return
        self._verify_justify_sigs(justify)
        if not self.crypto.qc_is_valid(qc):
            return
        if not compare_qc_rank(qc, self.locked_qc).at_least:
            return  # <-- the liveness trap: locked replicas never vote
        self.tree.add(block)
        share = self.crypto.sign_vote(self.id, Phase.PREPARE, msg.view, summary)
        self._send_vote(
            src, VoteMsg(phase=Phase.PREPARE, view=msg.view, block=summary, share=share)
        )
        self.last_voted = summary
        self.high_qc = justify
        if compare_qc_rank(qc, self.locked_qc) is Rank.HIGHER:
            self.locked_qc = qc

    def _catch_up_insecure(self, view: int) -> bool:
        """The strawman has no in-view QC proof on first proposals; jump
        optimistically (it is a demonstration protocol)."""
        self._advance_view(view)
        return True

    def _maybe_propose(self) -> None:
        """Case N1 pipeline, accepting the old-view justify after a VC."""
        if not self.is_leader() or not self._leader_ready:
            return
        if self._outstanding_prepare is not None:
            return
        qc = self.high_qc.qc
        if qc.phase != Phase.PREPARE:
            return
        batch = self.pool.next_batch()
        if not batch:
            return
        block = self._extend(qc.block, self.cview, batch, qc)
        self.tree.add(block)
        self._outstanding_prepare = block.digest
        self.stats["proposals_sent"] += 1
        self.ctx.broadcast(
            PhaseMsg(phase=Phase.PREPARE, view=self.cview, justify=Justify(qc), block=block)
        )
