"""The sans-io replica skeleton shared by every protocol.

Subclasses (Marlin, HotStuff, the insecure strawman) provide the phase
logic; this base owns everything protocol-agnostic:

* the block tree, ledger, mempool and vote collector;
* the pacemaker: a view timer with exponential back-off, reset on commit
  progress, plus an optional rotating-leader mode (fixed-period view
  advancement, as in the paper's Fig. 10j experiments);
* message dispatch with per-message CPU accounting;
* client request intake (with forwarding to the current leader);
* commit plumbing, including block sync for missing ancestors;
* statistics every experiment reads (commits, view changes, timing).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable

from repro.common.config import ClusterConfig
from repro.common.errors import ProtocolError
from repro.consensus.block import BatchPool, Block, Operation, genesis_block
from repro.consensus.blocktree import BlockTree
from repro.consensus.context import NodeContext
from repro.consensus.costs import ZeroCostModel
from repro.consensus.crypto_service import CryptoService
from repro.consensus.ledger import Ledger
from repro.consensus.messages import (
    ClientRequest,
    ClientRequestBatch,
    CommitEcho,
    LeaseAck,
    LeaseProbe,
    ReadRequest,
    SyncRequest,
    SyncResponse,
)
from repro.consensus.pipeline import AdaptiveBatchController, PipelineConfig, VoteBatchGate
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate, genesis_qc
from repro.consensus.votes import VoteCollector
from repro.crypto.verifier_pool import VerifierPool, make_verifier_pool
from repro.obs.log import replica_logger
from repro.obs.observer import NULL_OBS, NullReplicaObs

CommitListener = Callable[[Block, float], None]

TIMER_VIEW = "view-timer"


class ReplicaBase(ABC):
    """Common state machine chassis for HotStuff-family replicas."""

    #: Voting member of the consensus group (learners override to False).
    is_voter = True

    def __init__(
        self,
        replica_id: int,
        config: ClusterConfig,
        ctx: NodeContext,
        crypto: CryptoService,
        costs: ZeroCostModel | None = None,
        rotation_interval: float | None = None,
        forward_requests: bool = True,
        pipeline: PipelineConfig | None = None,
    ) -> None:
        self.id = replica_id
        self.config = config
        self.ctx = ctx
        self.crypto = crypto
        self.costs = costs or ZeroCostModel()
        self.rotation_interval = rotation_interval
        self.forward_requests = forward_requests
        self.pipeline = pipeline

        self.genesis = genesis_block()
        self.genesis_qc = genesis_qc(self.genesis)
        self.tree = BlockTree(self.genesis)
        self.ledger = Ledger(self.tree, on_commit_block=self._on_block_committed)
        self.pool = BatchPool(max_batch=config.batch_size)
        self.collector = VoteCollector(crypto)

        # Batching/pipelining state; all of it is inert when ``pipeline``
        # is None (the default), which reproduces the seed behaviour.
        self._vote_gate: VoteBatchGate | None = None
        self._verifier_pool: VerifierPool | None = None
        self._batch_controller: AdaptiveBatchController | None = None
        #: (block, justify_digest, staged_epoch) of the speculatively
        #: built next proposal, or None.
        self._speculative: tuple[Block, bytes, int] | None = None
        self._proposed_at: dict[bytes, float] = {}
        if pipeline is not None:
            self._verifier_pool = make_verifier_pool(
                pipeline.verifier, pipeline.verifier_workers
            )
            if pipeline.batch_votes:
                self._vote_gate = VoteBatchGate(
                    crypto, config.quorum, pool=self._verifier_pool
                )
            if pipeline.adaptive_batch:
                self._batch_controller = AdaptiveBatchController(
                    band=pipeline.target_latency,
                    min_batch=min(pipeline.min_batch, config.batch_size),
                    cap=pipeline.max_batch or config.batch_size,
                )

        self.cview = 0
        self.current_timeout = config.base_timeout
        self.commit_listeners: list[CommitListener] = []
        #: Optional :class:`repro.client.service.ClientService` — installed
        #: by ``ClientService.install()``; None keeps the seed behaviour.
        self.client_service: Any = None
        self._pending_commits: dict[bytes, QuorumCertificate | None] = {}
        self._sync_inflight: set[bytes] = set()
        self._sync_attempts: dict[bytes, int] = {}

        # Statistics read by experiments.  ``views_entered`` counts every
        # view advance (bootstrap, catch-up, rotation included);
        # ``view_changes`` counts only timeout/failure-triggered changes,
        # so failure experiments (Fig. 10i/10j) are not polluted by
        # normal rotation or catch-up.
        self.stats: dict[str, int] = {
            "views_entered": 0,
            "view_changes": 0,
            "timeouts": 0,
            "blocks_committed": 0,
            "ops_committed": 0,
            "messages_handled": 0,
            "votes_sent": 0,
            "proposals_sent": 0,
        }
        self.view_entered_at: float = 0.0
        # Observability: a no-op observer by default; the harness swaps in
        # a real one via attach_observer().  Zero behavioural impact.
        self.obs: NullReplicaObs = NULL_OBS
        self.log = replica_logger(self.protocol_name, replica_id, lambda: self.cview)

    # ------------------------------------------------------------ plumbing

    @property
    def protocol_name(self) -> str:
        """Short protocol label for logs and metric labels."""
        return type(self).__name__.removesuffix("Replica").lower()

    def attach_observer(self, obs: NullReplicaObs) -> None:
        """Install a real observer (metrics + tracing) for this replica."""
        self.obs = obs
        obs.bind(self.ctx)

    @property
    @abstractmethod
    def handlers(self) -> dict[type, Callable[[int, Any], None]]:
        """Payload-type -> handler dispatch table (built once)."""

    @abstractmethod
    def _enter_view(self, view: int) -> None:
        """Protocol-specific actions on entering ``view`` (send VC, ...)."""

    @abstractmethod
    def _maybe_propose(self) -> None:
        """Leader hook: propose if conditions allow."""

    def start(self) -> None:
        """Boot the replica: enter view 1 through the view-change path.

        Starting via a view change (rather than a special genesis case)
        keeps the protocol uniform: view 1's leader assembles its first
        ``highQC`` exactly like any later view's leader.
        """
        self._advance_view(1, reason="start")

    def on_message(self, src: int, payload: Any) -> None:
        """Single entry point for every inbound message."""
        self.stats["messages_handled"] += 1
        if self.obs.enabled:
            self.obs.message_handled(payload)
        self.ctx.charge(self.costs.handle_message())
        handler = self.handlers.get(type(payload))
        if handler is None:
            return
        try:
            handler(src, payload)
        except ProtocolError:
            # Malformed/invalid messages from (possibly Byzantine) peers
            # are dropped; correct peers never trigger this path.
            pass

    # -------------------------------------------------------------- views

    def is_leader(self, view: int | None = None) -> bool:
        return self.config.leader_of(view if view is not None else self.cview) == self.id

    def leader_of(self, view: int) -> int:
        return self.config.leader_of(view)

    def _advance_view(self, new_view: int | None = None, *, reason: str = "advance") -> None:
        """Enter a higher view.

        ``reason`` labels the cause for statistics and tracing: "start"
        (bootstrap), "timeout" (pacemaker fired — a rotation tick in
        rotating-leader mode, a real failure otherwise), "catch-up" (a QC
        proved a quorum moved on), or "quorum" (leader assembled n - f
        view-change messages).  Only non-rotation timeouts count as view
        changes; every advance counts as a view entered.
        """
        target = new_view if new_view is not None else self.cview + 1
        if target <= self.cview:
            return
        self.cview = target
        self.stats["views_entered"] += 1
        if reason == "timeout" and self.rotation_interval is None:
            self.stats["view_changes"] += 1
        self.view_entered_at = self.ctx.now
        self.obs.view_entered(target, reason)
        self.log.debug("entering view %d (%s)", target, reason)
        self.collector.discard_view(target - 1)
        if self._vote_gate is not None:
            self._vote_gate.discard_view(target - 1)
        self._drop_speculation()
        if self.client_service is not None:
            self.client_service.on_view_change()
        self._arm_view_timer()
        self._enter_view(target)

    def _arm_view_timer(self) -> None:
        if self.rotation_interval is not None:
            self.ctx.set_timer(TIMER_VIEW, self.rotation_interval, self._on_view_timeout)
        else:
            self.ctx.set_timer(TIMER_VIEW, self.current_timeout, self._on_view_timeout)

    def _on_view_timeout(self) -> None:
        self.stats["timeouts"] += 1
        self.obs.view_timeout(self.cview)
        if self.rotation_interval is None:
            self.current_timeout = min(
                self.current_timeout * self.config.timeout_multiplier,
                self.config.max_timeout,
            )
        self._advance_view(
            reason="rotation" if self.rotation_interval is not None else "timeout"
        )

    def _on_progress(self) -> None:
        """Commit progress observed: reset back-off, rearm the timer.

        In rotating-leader mode the period is fixed, so progress does not
        defer the next rotation (matching the Fig. 10j methodology).
        """
        if self.rotation_interval is None:
            self.current_timeout = self.config.base_timeout
            self._arm_view_timer()

    # ------------------------------------------------------------- clients

    def on_client_request(self, request: ClientRequest) -> None:
        """Accept an operation; leaders enqueue, others forward."""
        op = Operation(
            request.client_id, request.sequence, request.payload, weight=request.weight
        )
        if self.is_leader():
            if self.pool.add(op):
                self._maybe_propose()
        elif self.forward_requests:
            self.ctx.send(self.leader_of(self.cview), request)
        else:
            self.pool.add(op)

    def submit_operations(self, ops: list[Operation]) -> None:
        """Bulk intake used by the DES workload generator (leader only)."""
        self.pool.add_many(ops)
        if self.is_leader():
            self._maybe_propose()

    def _handle_client_request(self, src: int, request: ClientRequest) -> None:
        # The client service (when installed) filters first: a committed
        # duplicate is replayed from its cache, a full admission window
        # sheds — either way the request never re-enters the pool.  For
        # admitted requests the service also paces the leader's proposal
        # (intake coalescing), so per-client sends batch like the
        # aggregate submissions do.
        service = self.client_service
        if service is not None:
            if service.intake(src, request):
                return
            op = Operation(
                request.client_id, request.sequence, request.payload,
                weight=request.weight,
            )
            if self.is_leader():
                if self.pool.add(op):
                    service.schedule_propose()
            elif self.forward_requests:
                self.ctx.send(self.leader_of(self.cview), request)
            else:
                self.pool.add(op)
            return
        self.on_client_request(request)

    def _handle_read_request(self, src: int, request: ReadRequest) -> None:
        if self.client_service is not None:
            self.client_service.on_read_request(src, request)

    def _handle_lease_probe(self, src: int, probe: LeaseProbe) -> None:
        if self.client_service is not None:
            self.client_service.on_lease_probe(src, probe)

    def _handle_lease_ack(self, src: int, ack: LeaseAck) -> None:
        if self.client_service is not None:
            self.client_service.on_lease_ack(src, ack)

    def _handle_request_batch(self, src: int, batch: ClientRequestBatch) -> None:
        """Aggregate intake from the DES workload generator.

        Non-leaders keep the operations locally (they may become leader
        after a rotation) rather than forwarding — the generator already
        fans batches out to every replica it wants them at.
        """
        self.pool.add_many(batch.operations)
        if self.is_leader():
            self._maybe_propose()

    # -------------------------------------------------------------- commit

    def _commit_by_qc(self, qc: QuorumCertificate) -> None:
        """Commit the block certified by a COMMIT QC, syncing if needed."""
        self._commit_digest(qc.block.digest, qc)

    def _commit_digest(self, digest: bytes, qc: QuorumCertificate | None = None) -> None:
        """Commit the block with ``digest`` (and ancestors), syncing gaps.

        ``qc`` is retained for bookkeeping only; chained-mode commits have
        no explicit COMMIT QC (the chain of prepare QCs is the proof) and
        pass None.
        """
        block = self.tree.get(digest)
        if block is None or not self.ledger.can_commit(block):
            self._pending_commits[digest] = qc
            missing = self.tree.missing_ancestor(block) if block is not None else digest
            if missing is not None:
                self._request_sync(missing)
            return
        if self.ledger.is_committed(block.digest):
            return
        committed = self.ledger.commit(block)
        for node in committed:
            self.ctx.charge(self.costs.db_write(node))
            self.ctx.charge(self.costs.execute(len(node.operations)))
        self._on_progress()

    def _on_block_committed(self, block: Block) -> None:
        self.stats["blocks_committed"] += 1
        self.stats["ops_committed"] += len(block.operations)
        if self.obs.enabled:
            self.obs.block_committed(
                block.digest, block.height, len(block.operations), block.view
            )
        self.pool.forget(block.operations)
        now = self.ctx.now
        if self._batch_controller is not None:
            proposed = self._proposed_at.pop(block.digest, None)
            if proposed is not None:
                self.pool.max_batch = self._batch_controller.observe(
                    now - proposed, self.pool.max_batch
                )
        for listener in self.commit_listeners:
            listener(block, now)
        if self.config.learners:
            echo = CommitEcho(block=block, parent=self.tree.parent_digest(block))
            for learner_id in self.config.learner_ids:
                self.ctx.send(learner_id, echo)

    # ---------------------------------------------------------------- sync

    def _request_sync(self, digest: bytes) -> None:
        """Fetch one missing block from a single peer, with retries.

        One peer at a time keeps sync traffic off the hot path (a fan-out
        of full-block responses can monopolise every NIC); the retry
        timer walks the peer ring, so a block held by only one correct
        replica is still found within ``n`` attempts.
        """
        if digest in self._sync_inflight:
            return
        self._sync_inflight.add(digest)
        attempt = self._sync_attempts.get(digest, 0)
        self._sync_attempts[digest] = attempt + 1
        self.obs.sync_requested(attempt)
        target = (self.leader_of(self.cview) + attempt) % self.config.num_replicas
        if target == self.id:
            target = (target + 1) % self.config.num_replicas
            self._sync_attempts[digest] += 1
        self.ctx.send(target, SyncRequest(digests=(digest,)))
        self.ctx.set_timer("sync-retry", 0.5, self._sync_retry)

    def _sync_retry(self) -> None:
        """Re-issue sync requests that have not been satisfied yet."""
        self._sync_inflight.clear()
        self._retry_pending_commits()
        # Re-request whatever the pending commits still lack (the attempt
        # counter moves each retry to the next peer in the ring).
        for digest in list(self._pending_commits):
            block = self.tree.get(digest)
            missing = self.tree.missing_ancestor(block) if block is not None else digest
            if missing is not None:
                self._request_sync(missing)

    def _handle_sync_request(self, src: int, request: SyncRequest) -> None:
        blocks: list[Block] = []
        resolutions: list[tuple[bytes, bytes]] = []
        for digest in request.digests:
            block = self.tree.get(digest)
            if block is None:
                continue
            # Serve a short branch suffix only: a requester more than a
            # couple of blocks behind re-requests the next gap, which
            # keeps any single response off the responder's NIC hot path.
            for node in self.tree.branch(block):
                if node.is_genesis:
                    break
                blocks.append(node)
                if node.is_virtual:
                    parent = self.tree.parent_digest(node)
                    if parent is not None:
                        resolutions.append((node.digest, parent))
                if len(blocks) >= 2:
                    break
        if blocks:
            self.ctx.send(src, SyncResponse(blocks=tuple(blocks), resolutions=tuple(resolutions)))

    def _handle_sync_response(self, src: int, response: SyncResponse) -> None:
        for block in response.blocks:
            self.ctx.charge(self.costs.verify_block(block))
            self.tree.add(block)
            self._sync_inflight.discard(block.digest)
        for virtual_digest, parent_digest in response.resolutions:
            self.tree.resolve_virtual_parent(virtual_digest, parent_digest)
            self._sync_inflight.discard(virtual_digest)
        self._retry_pending_commits()

    def _retry_pending_commits(self) -> None:
        for digest in list(self._pending_commits):
            qc = self._pending_commits[digest]
            block = self.tree.get(digest)
            if block is not None and self.ledger.can_commit(block):
                del self._pending_commits[digest]
                self._commit_digest(digest, qc)

    # ------------------------------------------------------------- helpers

    def _base_handlers(self) -> dict[type, Callable[[int, Any], None]]:
        return {
            ClientRequest: self._handle_client_request,
            ClientRequestBatch: self._handle_request_batch,
            ReadRequest: self._handle_read_request,
            LeaseProbe: self._handle_lease_probe,
            LeaseAck: self._handle_lease_ack,
            SyncRequest: self._handle_sync_request,
            SyncResponse: self._handle_sync_response,
        }

    def _send_vote(self, dst: int, vote: Any) -> None:
        self.stats["votes_sent"] += 1
        if self.obs.enabled:
            self.obs.vote_sent(getattr(vote, "phase", None))
        self.ctx.charge(self.costs.sign_vote())
        self.ctx.send(dst, vote)

    def _verify_qc_or_raise(self, qc: QuorumCertificate) -> None:
        self._charge_qc_verify(qc)
        self.crypto.verify_qc(qc)

    def _charge_qc_verify(self, qc: QuorumCertificate) -> None:
        """Charge CPU for verifying ``qc``, cache-aware when pipelining.

        With pipelining off the charge is always the full verification
        (the seed behaviour, keeping old traces byte-identical).  With it
        on, a QC already in the crypto service's LRU cache costs only a
        lookup — the amortisation the cache exists to provide.
        """
        if self.pipeline is not None and self.crypto.qc_cached(qc):
            self.ctx.charge(self.costs.qc_cache_lookup())
        else:
            self.ctx.charge(self.costs.verify_qc(qc))

    def _phase_qc_valid(self, qc: QuorumCertificate, phase: Phase) -> bool:
        if qc.phase != phase:
            return False
        return self.crypto.qc_is_valid(qc)

    # -------------------------------------------------- pipelining helpers

    def _note_proposed(self, digest: bytes) -> None:
        """Record proposal time so commit latency can drive batch sizing."""
        if self._batch_controller is not None:
            self._proposed_at[digest] = self.ctx.now
            if len(self._proposed_at) > 1024:
                # Blocks abandoned by view changes never commit; bound the map.
                oldest = next(iter(self._proposed_at))
                del self._proposed_at[oldest]

    def _stage_next(self, proposed: Block, qc: QuorumCertificate) -> None:
        """Speculatively build the next block while ``proposed``'s QC forms.

        The prepare-QC digest for ``proposed`` is predictable before any
        vote arrives — a QC's digest covers (phase, view, block) but not
        its signature — so the leader can assemble the entire next block
        (batch, links, justify digest) during the vote round trip.
        ``qc`` is the justify ``proposed`` itself was built on.
        """
        if self.pipeline is None or not self.pipeline.speculative_proposals:
            return
        self._drop_speculation()
        batch = self.pool.stage()
        if not batch:
            return
        summary = BlockSummary.of(proposed, justify_in_view=qc.view == proposed.view)
        expected = QuorumCertificate(
            phase=Phase.PREPARE, view=self.cview, block=summary, signature=None
        ).digest
        child = Block(
            parent_link=proposed.digest,
            parent_view=proposed.view,
            view=self.cview,
            height=proposed.height + 1,
            operations=batch,
            justify_digest=expected,
            proposer=self.id,
        )
        self._speculative = (child, expected, self.pool.staged_epoch)

    def _take_speculative(self, qc: QuorumCertificate) -> Block | None:
        """Consume the speculative block if the formed QC matches its bet.

        Rejects (and falls back to a fresh build) when the QC digest
        differs from the prediction, the view moved, committed operations
        were pruned out of the staged batch, or a fresh batch would be
        strictly larger — speculation must never shrink throughput.
        """
        if self._speculative is None:
            return None
        block, expected, epoch = self._speculative
        if (
            qc.digest != expected
            or block.view != self.cview
            or epoch != self.pool.staged_epoch
        ):
            self._drop_speculation()
            return None
        if self.pool.staged_weight < self.pool.max_batch and self.pool.pending_ops > 0:
            self._drop_speculation()
            return None
        self._speculative = None
        if not self.pool.take_staged():
            return None
        return block

    def _drop_speculation(self) -> None:
        """Abandon any speculatively built block, returning its batch."""
        if self._speculative is not None:
            self._speculative = None
            self.pool.unstage()

    def close(self) -> None:
        """Release resources (verifier pool workers)."""
        if self._verifier_pool is not None:
            self._verifier_pool.close()
