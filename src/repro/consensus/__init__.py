"""Consensus: BFT over a graph of blocks (paper Section III-A onward).

Layout:

* :mod:`repro.consensus.block` — normal/virtual/shadow blocks, operations;
* :mod:`repro.consensus.qc` — quorum certificates and vote payloads;
* :mod:`repro.consensus.rank` — the rank rules of Fig. 4 / Section V-A;
* :mod:`repro.consensus.messages` — every protocol message with wire sizes;
* :mod:`repro.consensus.blocktree` — the per-replica tree of blocks;
* :mod:`repro.consensus.ledger` — committed-branch tracking and execution;
* :mod:`repro.consensus.crypto_service` — pluggable vote/QC cryptography;
* :mod:`repro.consensus.pacemaker` — timeouts, view advancement, rotation;
* :mod:`repro.consensus.replica_base` — the sans-io replica skeleton;
* :mod:`repro.consensus.hotstuff` — the baseline (basic + chained);
* :mod:`repro.consensus.marlin` — the paper's contribution;
* :mod:`repro.consensus.twophase_insecure` — the Section IV-B strawman.
"""

from repro.consensus.block import Block, Operation, genesis_block
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate
from repro.consensus.rank import Rank, compare_block_rank, compare_qc_rank

__all__ = [
    "Block",
    "BlockSummary",
    "Operation",
    "Phase",
    "QuorumCertificate",
    "Rank",
    "compare_block_rank",
    "compare_qc_rank",
    "genesis_block",
]
