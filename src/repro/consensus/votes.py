"""Vote collection: accumulate shares into QCs, once per target.

A :class:`VoteCollector` keys accumulators by (phase, view, block digest)
and guarantees each target yields at most one QC — later votes for a
finished target are absorbed silently, and duplicate votes from one
replica are ignored inside the accumulator.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.crypto_service import CryptoService, VoteAccumulator
from repro.consensus.qc import BlockSummary, Phase, QuorumCertificate

_Key = tuple[Phase, int, bytes]


class VoteCollector:
    """Per-replica vote aggregation across all phases and views."""

    def __init__(self, crypto: CryptoService) -> None:
        self._crypto = crypto
        self._accumulators: dict[_Key, VoteAccumulator] = {}
        self._blocks: dict[_Key, BlockSummary] = {}
        self._finished: set[_Key] = set()

    def add_vote(
        self, phase: Phase, view: int, block: BlockSummary, signer: int, share: Any
    ) -> QuorumCertificate | None:
        """Record a (pre-verified) vote; returns the QC on quorum, once."""
        key = (phase, view, block.digest)
        if key in self._finished:
            return None
        acc = self._accumulators.get(key)
        if acc is None:
            acc = self._crypto.accumulator(phase, view, block)
            self._accumulators[key] = acc
            self._blocks[key] = block
        if acc.add(signer, share):
            self._finished.add(key)
            qc = self._crypto.make_qc(phase, view, block, acc)
            del self._accumulators[key]
            return qc
        return None

    def votes_for(self, phase: Phase, view: int, digest: bytes) -> int:
        """Current vote count for a target (0 after the QC is formed)."""
        acc = self._accumulators.get((phase, view, digest))
        return acc.count if acc is not None else 0

    def discard_view(self, view: int) -> None:
        """Drop all in-progress accumulation for views <= ``view``."""
        stale = [key for key in self._accumulators if key[1] <= view]
        for key in stale:
            del self._accumulators[key]
            self._blocks.pop(key, None)
