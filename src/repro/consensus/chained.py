"""Chained (pipelined) Marlin and HotStuff.

The paper: "As in HotStuff and all its descendants, Marlin fully supports
the chaining (pipelining) mode."  In chained mode one broadcast per block
drives every phase at once: the PREPARE for block ``b_{k+1}`` carries the
``prepareQC`` for ``b_k``, and that QC doubles as the later-phase message
for the ancestors.  Commits follow chain rules instead of explicit
COMMIT/DECIDE rounds:

* **Chained Marlin** (2-chain): a ``prepareQC`` for ``b'`` certifies that
  a quorum voted for ``b'`` under the N1 rule — and the N1 rule makes
  every such voter *lock* on ``b'.justify``, the ``prepareQC`` of the
  direct parent ``b``.  A quorum locked on ``prepareQC(b)`` is exactly
  what a ``commitQC(b)`` proves in the event-driven protocol, so ``b``
  commits as soon as ``prepareQC(b')`` is observed (``b'`` a direct,
  same-view child of ``b``).

* **Chained HotStuff** (3-chain): the classic rule — observing
  ``prepareQC(b'')`` over a direct same-view chain ``b <- b' <- b''``
  locks ``b'`` and commits ``b``.

When the leader has nothing to propose, both variants *flush* by falling
back to their event-driven parent (explicit COMMIT/PRECOMMIT rounds), so
the last blocks of a burst still commit promptly and the view-change
machinery is inherited unchanged (including Marlin's pre-prepare phase,
virtual blocks and the happy path).
"""

from __future__ import annotations

from repro.consensus.hotstuff.replica import HotStuffReplica
from repro.consensus.marlin.replica import MarlinReplica
from repro.consensus.messages import Justify, PhaseMsg, VoteMsg
from repro.consensus.qc import Phase, QuorumCertificate
from repro.consensus.rank import Rank, compare_qc_rank


class ChainedMarlinReplica(MarlinReplica):
    """Two-phase Marlin with one broadcast per block under load."""

    def _on_prepare_vote(self, src: int, vote: VoteMsg) -> None:
        qc = self.collector.add_vote(Phase.PREPARE, vote.view, vote.block, src, vote.share)
        if qc is None:
            return
        self.ctx.charge(self.costs.combine(self.config.quorum))
        if self._outstanding_prepare == vote.block.digest:
            self._outstanding_prepare = None
        if compare_qc_rank(qc, self.high_qc.qc) is Rank.HIGHER:
            self.high_qc = Justify(qc)
        self._leader_ready = True
        self._chain_commit_under(qc)
        before = self.stats["proposals_sent"]
        self._maybe_propose()
        if self.stats["proposals_sent"] == before:
            # Nothing to chain onto: flush with an explicit COMMIT round
            # so the certified block does not dangle awaiting load.
            self.ctx.broadcast(
                PhaseMsg(phase=Phase.COMMIT, view=vote.view, justify=Justify(qc))
            )

    def _on_prepare(self, src: int, msg: PhaseMsg) -> None:
        qc = msg.justify.qc
        if (
            qc.phase == Phase.PREPARE
            and self.leader_of(msg.view) == src
            and self.crypto.qc_is_valid(qc)
        ):
            self._chain_commit_under(qc)
        super()._on_prepare(src, msg)

    def _chain_commit_under(self, qc: QuorumCertificate) -> None:
        """2-chain rule: commit the direct same-view parent of block(qc).

        ``justify_in_view`` on the certified summary says the block's own
        justify is a prepareQC formed in its view — i.e. the parent is a
        direct, same-view predecessor whose prepareQC every voter locked
        on.  That quorum-of-locks is the event-driven ``commitQC``.
        """
        summary = qc.block
        if qc.phase != Phase.PREPARE or not summary.justify_in_view:
            return
        block = self.tree.get(summary.digest)
        if block is None or block.parent_link is None:
            return
        parent = self.tree.get(block.parent_link)
        if parent is None or parent.height + 1 != block.height:
            return
        if self.ledger.is_committed(parent.digest):
            return
        self._commit_digest(parent.digest)


class ChainedHotStuffReplica(HotStuffReplica):
    """Three-phase HotStuff with one broadcast per block under load."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Recent prepareQCs by certified-block digest (the 2-chain lock
        #: needs the parent's QC object, which travelled in an earlier
        #: proposal's justify).
        self._qc_by_block: dict[bytes, QuorumCertificate] = {}

    def _dispatch_vote(self, src: int, vote: VoteMsg) -> None:
        if vote.phase != Phase.PREPARE:
            super()._dispatch_vote(src, vote)
            return
        qc = self.collector.add_vote(vote.phase, vote.view, vote.block, src, vote.share)
        if qc is None:
            return
        self.ctx.charge(self.costs.combine(self.config.quorum))
        if self._outstanding_prepare == vote.block.digest:
            self._outstanding_prepare = None
        if (qc.view, qc.block.height) > (self.prepare_qc.view, self.prepare_qc.block.height):
            self.prepare_qc = qc
        self._observe_chain(qc)
        before = self.stats["proposals_sent"]
        self._maybe_propose()
        if self.stats["proposals_sent"] == before:
            # Flush: fall back to the explicit three-phase tail.
            self.ctx.broadcast(
                PhaseMsg(phase=Phase.PRECOMMIT, view=vote.view, justify=Justify(qc))
            )

    def _on_prepare(self, src: int, msg: PhaseMsg) -> None:
        qc = msg.justify.qc
        if (
            qc.phase == Phase.PREPARE
            and self.leader_of(msg.view) == src
            and self.crypto.qc_is_valid(qc)
        ):
            self._observe_chain(qc)
        super()._on_prepare(src, msg)

    def _observe_chain(self, qc: QuorumCertificate) -> None:
        """Record ``qc`` and apply the 2-chain lock / 3-chain commit rules."""
        self._qc_by_block[qc.block.digest] = qc
        if len(self._qc_by_block) > 256:
            # Bounded memory: drop arbitrary old entries (chain rules only
            # ever look a couple of blocks back).
            for key in list(self._qc_by_block)[:64]:
                del self._qc_by_block[key]
        b2 = self.tree.get(qc.block.digest)
        if b2 is None or b2.parent_link is None:
            return
        b1 = self.tree.get(b2.parent_link)
        if b1 is None or b1.view != b2.view or b1.height + 1 != b2.height:
            return
        # 2-chain: lock on the parent's prepareQC.
        parent_qc = self._qc_by_block.get(b1.digest)
        if parent_qc is not None and (
            (parent_qc.view, parent_qc.block.height)
            > (self.locked_qc.view, self.locked_qc.block.height)
        ):
            self.locked_qc = parent_qc
        if b1.parent_link is None:
            return
        b0 = self.tree.get(b1.parent_link)
        if b0 is None or b0.view != b1.view or b0.height + 1 != b1.height:
            return
        # 3-chain: commit the grandparent.
        if not self.ledger.is_committed(b0.digest):
            self._commit_digest(b0.digest)
