"""Key→shard routing: the client-side half of the sharded runtime.

A sharded deployment runs G independent consensus groups; every command
belongs to exactly one of them, named by its *routing key* (for the
closed-loop workloads: the client's identity, standing for the data
partition that client's state lives in).  :class:`ShardRouter` is the
one deterministic map from keys to groups that every party — clients,
workload generators, and the groups' own misroute guards — must agree
on, so it is deliberately tiny and dependency-free:

* ``scheme="hash"`` (default) — an 8-byte BLAKE2b digest of the key,
  salted with ``seed``, reduced mod G.  Stable across processes and
  Python versions (unlike the builtin ``hash``, which is randomised),
  so parallel sweep workers and replica-side guards always agree.
* ``scheme="modulo"`` — ``int(key) % G`` for integer-like keys; the
  transparent placement tests and examples use.

The router lives in the client layer because routing is a *client*
responsibility: a correct client never sends a command to the wrong
group, and a group presented with a foreign command rejects rather than
commits it (see :class:`repro.shard.ShardedCluster`).
"""

from __future__ import annotations

import hashlib

from repro.common.encoding import encode
from repro.common.errors import ConfigError

ROUTER_SCHEMES = ("hash", "modulo")


class ShardRouter:
    """Deterministic key→shard map shared by clients and groups."""

    def __init__(self, shards: int, scheme: str = "hash", seed: int = 0) -> None:
        if shards < 1:
            raise ConfigError(f"ShardRouter.shards must be >= 1, got {shards}")
        if scheme not in ROUTER_SCHEMES:
            raise ConfigError(
                f"ShardRouter.scheme must be one of {ROUTER_SCHEMES}, got {scheme!r}"
            )
        self.shards = shards
        self.scheme = scheme
        self.seed = seed
        self._salt = encode(["shard-router", seed])

    # ------------------------------------------------------------- routing

    def shard_of(self, key: bytes) -> int:
        """The shard owning ``key``; total and deterministic."""
        if self.shards == 1:
            return 0
        if self.scheme == "modulo":
            return int.from_bytes(key, "big") % self.shards
        digest = hashlib.blake2b(self._salt + key, digest_size=8).digest()
        return int.from_bytes(digest, "big") % self.shards

    @staticmethod
    def key_of_client(client_id: int) -> bytes:
        """Canonical routing key of a client identity."""
        return encode(["client", client_id])

    def shard_of_client(self, client_id: int) -> int:
        """The shard a client's commands belong to (key = its identity)."""
        if self.shards == 1:
            return 0
        if self.scheme == "modulo":
            return client_id % self.shards
        return self.shard_of(self.key_of_client(client_id))

    # ------------------------------------------------------------ utilities

    def partition_clients(self, client_ids: list[int]) -> list[list[int]]:
        """Split client ids into per-shard lists (order preserved)."""
        groups: list[list[int]] = [[] for _ in range(self.shards)]
        for client_id in client_ids:
            groups[self.shard_of_client(client_id)].append(client_id)
        return groups

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardRouter(shards={self.shards}, scheme={self.scheme!r}, seed={self.seed})"
