"""Replica-side client service: dedup, replies, reads, admission.

:class:`ClientService` is the piece of a replica that faces clients.  It
bolts onto a :class:`~repro.consensus.replica_base.ReplicaBase` (which
calls :meth:`intake` before its normal request path and exposes the
read/lease handlers through its dispatch table) and owns four concerns:

* **exactly-once** — a :class:`SessionTable` remembers, per client, the
  highest committed sequence and its cached reply.  A retransmitted,
  already-committed request is answered from that cache and *never*
  reaches the pool or the state machine again (the ledger's
  ``_executed_keys`` is the second, independent line of defence);
* **replies** — on every commit the service sends each operation's
  client a :class:`~repro.consensus.messages.ClientReply` carrying
  ``(view, seq, result_digest)``, the triple reply certificates are made
  of.  When an application executor is attached the digest commits to
  the real execution result; otherwise it is the deterministic
  request-derived digest every correct replica agrees on;
* **leader-lease reads** — a leader serves a read from committed state
  only after a quorum of replicas (``n - f``, itself included) confirms
  it still owns the current view (ReadIndex-style).  Non-leaders send a
  redirect carrying their view.  ``lease_duration`` lets one confirmed
  quorum check cover subsequent reads for that long;
* **admission control** — a bounded inflight window of weighted,
  admitted-but-uncommitted operations.  Beyond it, new requests are shed
  (silently dropped — the client's retransmit timer is the retry) and
  counted in ``client_requests_shed_total``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.client.config import ClientConfig
from repro.client.session import result_digest_of
from repro.common.errors import UnknownPeer
from repro.consensus.block import Block, Operation
from repro.consensus.messages import (
    ClientReply,
    ClientRequest,
    LeaseAck,
    LeaseProbe,
    ReadReply,
    ReadRequest,
)
from repro.obs.journey import CK_EXECUTED

#: maps a committed operation to its result bytes.
ResultFn = Callable[[Block, Operation], bytes]
#: serves a key from committed application state.
ReadFn = Callable[[bytes], bytes]


class SessionTable:
    """Per-client committed progress and last-reply cache."""

    def __init__(self) -> None:
        #: client -> (highest committed seq, result, result digest).
        self._last: dict[int, tuple[int, bytes, bytes]] = {}
        self.replays = 0

    def committed(self, client_id: int, sequence: int) -> bool:
        """True if ``(client, seq)`` already committed (cache or older)."""
        last = self._last.get(client_id)
        return last is not None and sequence <= last[0]

    def record(self, client_id: int, sequence: int, result: bytes, digest: bytes) -> None:
        """Note a committed request; keeps only the newest per client.

        Client sequences are monotonic and closed-loop (one outstanding
        request), so caching the latest reply is enough — the classic
        PBFT session-table shape.
        """
        last = self._last.get(client_id)
        if last is None or sequence > last[0]:
            self._last[client_id] = (sequence, result, digest)

    def cached_reply(self, client_id: int, sequence: int) -> tuple[bytes, bytes] | None:
        """(result, digest) for the client's cached reply, if it is ``seq``."""
        last = self._last.get(client_id)
        if last is not None and last[0] == sequence:
            return last[1], last[2]
        return None

    def last_sequence(self, client_id: int) -> int:
        last = self._last.get(client_id)
        return last[0] if last is not None else 0

    def __len__(self) -> int:
        return len(self._last)


class ClientService:
    """Client-facing half of one replica (dedup/replies/reads/admission)."""

    TIMER_LEASE = "lease-probe"
    TIMER_COALESCE = "client-intake-coalesce"

    def __init__(
        self,
        replica: Any,
        config: ClientConfig | None = None,
        *,
        result_fn: ResultFn | None = None,
        read_fn: ReadFn | None = None,
        send_replies: bool = True,
        reply_size: int = 0,
    ) -> None:
        self.replica = replica
        self.config = config or ClientConfig()
        self.sessions = SessionTable()
        self.result_fn = result_fn
        self.read_fn = read_fn
        self.send_replies = send_replies
        self.reply_size = reply_size

        #: weighted admitted-but-uncommitted ops, per the admission window.
        self.inflight_weight = 0
        self._inflight: dict[tuple[int, int], int] = {}

        #: True while the intake-coalescing proposal timer is armed.
        self._propose_armed = False

        # Leader-lease read state.
        self._lease_view = 0
        self._lease_until = -1.0
        self._probe_nonce = 0
        self._probe_acks: set[int] = set()
        self._pending_reads: list[ReadRequest] = []

        # Counters (also mirrored into the obs registry when present).
        self.shed = 0
        self.replies_sent = 0
        self.reads_served = 0
        self.redirects_sent = 0
        self._shed_counter = None
        self._replay_counter = None

        registry = getattr(getattr(replica, "obs", None), "registry", None)
        if registry is not None:
            labels = {"replica": replica.id, "protocol": replica.protocol_name}
            self._shed_counter = registry.counter(
                "client_requests_shed_total",
                "Client requests dropped by the admission window",
                **labels,
            )
            self._replay_counter = registry.counter(
                "client_replays_total",
                "Duplicate requests answered from the session cache",
                **labels,
            )

    # ------------------------------------------------------------ install

    def install(self) -> "ClientService":
        """Hook into the replica: intake filter + commit listener."""
        self.replica.client_service = self
        self.replica.commit_listeners.append(self._on_commit)
        return self

    # ------------------------------------------------------------- intake

    def intake(self, src: int, request: ClientRequest) -> bool:
        """Pre-filter one client request; True means fully handled here.

        Order matters: the dedup check runs before admission, so a
        retransmit of a committed request is always answered (never shed)
        — otherwise a full window could starve a client of the reply it
        is retrying for.
        """
        key = (request.client_id, request.sequence)
        if self.sessions.committed(request.client_id, request.sequence):
            self.sessions.replays += 1
            if self._replay_counter is not None:
                self._replay_counter.inc()
            self._send_cached_reply(request)
            return True
        if key not in self._inflight:
            limit = self.config.max_inflight
            if limit is not None and self.inflight_weight + request.weight > limit:
                self.shed += 1
                if self._shed_counter is not None:
                    self._shed_counter.inc()
                return True  # shed: silence → the client's backoff retries
            self._inflight[key] = request.weight
            self.inflight_weight += request.weight
            obs = getattr(self.replica, "obs", None)
            if obs is not None and obs.enabled:
                obs.client_admitted(request.client_id, request.sequence)
        # Proceed down the normal pool/forward path even for an op that
        # is already admitted: its first copy may have been drained into
        # a proposal that died with its view, and the retransmit is the
        # only way it re-enters the new leader's pool.  While the op is
        # still queued the pool dedups it, and a double *commit* is
        # impossible anyway (ledger exactly-once + session table).
        return False

    def schedule_propose(self) -> None:
        """Debounced leader proposal after the coalescing window.

        Per-client requests arrive as individual messages; proposing on
        the first one would split a burst (which an aggregate batch
        submission would keep together) across several small blocks.
        Holding the proposal for ``config.coalesce`` seconds lets one
        burst settle into the pool first — the classic batching timer.
        """
        if self._propose_armed:
            return
        if self.config.coalesce <= 0:
            self.replica._maybe_propose()
            return
        self._propose_armed = True

        def fire() -> None:
            self._propose_armed = False
            self.replica._maybe_propose()

        self.replica.ctx.set_timer(self.TIMER_COALESCE, self.config.coalesce, fire)

    def _send_cached_reply(self, request: ClientRequest) -> None:
        cached = self.sessions.cached_reply(request.client_id, request.sequence)
        if cached is None:
            # Committed but older than the cached reply: the client has
            # certified it long ago; a fresh digest still lets a slow
            # client finish its certificate.
            result = b""
            digest = self._result_digest(request.client_id, request.sequence, b"")
        else:
            result, digest = cached
        self._emit_reply(
            request.client_id, request.sequence, result, digest, request.weight
        )

    # ------------------------------------------------------------- commit

    def execute(self, block: Block, op: Operation) -> None:
        """Ledger executor wrapper: run the app, cache the real result.

        Installed via ``ledger.set_executor`` when an application is
        attached (the asyncio runtime); ``result_fn`` produces the result
        bytes.  The session table is fed *here*, under the ledger's
        exactly-once guard, so a cached reply always reflects a single
        application.
        """
        result = self.result_fn(block, op) if self.result_fn is not None else b""
        digest = self._result_digest(op.client_id, op.sequence, result)
        self.sessions.record(op.client_id, op.sequence, result, digest)

    def _on_commit(self, block: Block, now: float) -> None:
        # Journey "executed" checkpoint: charged once per request, on the
        # proposer (the replica whose reply path the client's certificate
        # clock started from).  Only sampled keys cost anything.
        journey = getattr(getattr(self.replica, "obs", None), "journey", None)
        if journey is not None and block.proposer == self.replica.id:
            journey.record_ops(block.operations, CK_EXECUTED, now)
        for op in block.operations:
            key = (op.client_id, op.sequence)
            weight = self._inflight.pop(key, None)
            if weight is not None:
                self.inflight_weight -= weight
            if self.result_fn is None:
                # No application attached (DES replicas): the result is
                # empty and its digest request-derived — identical on
                # every correct replica, which is all certificates need.
                digest = self._result_digest(op.client_id, op.sequence, b"")
                self.sessions.record(op.client_id, op.sequence, b"", digest)
            cached = self.sessions.cached_reply(op.client_id, op.sequence)
            if cached is None:
                continue
            result, digest = cached
            self._emit_reply(op.client_id, op.sequence, result, digest, op.weight)

    def _result_digest(self, client_id: int, sequence: int, result: bytes) -> bytes:
        return result_digest_of(client_id, sequence, result)

    def _emit_reply(
        self, client_id: int, sequence: int, result: bytes, digest: bytes, weight: int
    ) -> None:
        if not self.send_replies:
            return
        reply = ClientReply(
            client_id=client_id,
            sequence=sequence,
            replica=self.replica.id,
            result=result,
            result_digest=digest,
            view=self.replica.cview,
            weight=weight,
            reply_size=self.reply_size,
        )
        self.replies_sent += 1
        try:
            self.replica.ctx.send(client_id, reply)
        except UnknownPeer:
            # The submitter is not a registered client endpoint (e.g. a
            # test driving on_message directly); replies are best-effort.
            pass

    # -------------------------------------------------------------- reads

    def on_read_request(self, src: int, request: ReadRequest) -> None:
        replica = self.replica
        if not replica.is_leader():
            self.redirects_sent += 1
            replica.ctx.send(
                request.client_id,
                ReadReply(
                    client_id=request.client_id,
                    sequence=request.sequence,
                    replica=replica.id,
                    view=replica.cview,
                    ok=False,
                    weight=request.weight,
                ),
            )
            return
        now = replica.ctx.now
        if self._lease_view == replica.cview and now < self._lease_until:
            self._serve_read(request)
            return
        self._pending_reads.append(request)
        self._start_probe()

    def _start_probe(self) -> None:
        replica = self.replica
        self._probe_nonce += 1
        self._probe_acks = set()
        probe = LeaseProbe(
            leader=replica.id, view=replica.cview, nonce=self._probe_nonce
        )
        replica.ctx.broadcast(probe)

    def on_lease_probe(self, src: int, probe: LeaseProbe) -> None:
        replica = self.replica
        # Ack only if the prober really is the leader of *our* current
        # view — this is the check that makes a deposed leader unable to
        # assemble a quorum, and therefore unable to serve a stale read.
        if probe.view != replica.cview or replica.leader_of(probe.view) != probe.leader:
            return
        replica.ctx.send(
            src, LeaseAck(replica=replica.id, view=probe.view, nonce=probe.nonce)
        )

    def on_lease_ack(self, src: int, ack: LeaseAck) -> None:
        replica = self.replica
        if (
            ack.nonce != self._probe_nonce
            or ack.view != replica.cview
            or not replica.is_leader()
        ):
            return
        self._probe_acks.add(ack.replica)
        if len(self._probe_acks) < replica.config.quorum:
            return
        self._lease_view = replica.cview
        self._lease_until = replica.ctx.now + self.config.lease_duration
        pending, self._pending_reads = self._pending_reads, []
        for request in pending:
            self._serve_read(request)

    def _serve_read(self, request: ReadRequest) -> None:
        replica = self.replica
        value = self.read_fn(request.key) if self.read_fn is not None else b""
        self.reads_served += 1
        replica.ctx.send(
            request.client_id,
            ReadReply(
                client_id=request.client_id,
                sequence=request.sequence,
                replica=replica.id,
                view=replica.cview,
                value=value,
                ok=True,
                weight=request.weight,
            ),
        )

    def on_view_change(self) -> None:
        """Invalidate the lease and park queued reads on a view change."""
        self._lease_until = -1.0
        self._lease_view = 0
        # Queued reads at a deposed leader are redirected, not dropped.
        pending, self._pending_reads = self._pending_reads, []
        for request in pending:
            self.on_read_request(request.client_id, request)


def attach_client_services(
    cluster: Any,
    config: ClientConfig | None = None,
    *,
    result_fn: ResultFn | None = None,
    read_fn: ReadFn | None = None,
    send_replies: bool = True,
    reply_size: int = 0,
) -> list[ClientService]:
    """Install a :class:`ClientService` on every replica of a cluster.

    Works for any object exposing ``.replicas`` (DESCluster) or ``.nodes``
    with ``.replica`` attributes (LocalCluster).
    """
    replicas = getattr(cluster, "replicas", None)
    if replicas is None:
        replicas = [node.replica for node in cluster.nodes]
    services = []
    for replica in replicas:
        if not getattr(replica, "is_voter", True):
            continue  # learners hold no pool/crypto and never answer writes
        service = ClientService(
            replica,
            config,
            result_fn=result_fn,
            read_fn=read_fn,
            send_replies=send_replies,
            reply_size=reply_size,
        )
        services.append(service.install())
    return services
