"""Runtime bindings for :class:`~repro.client.session.ClientSession`.

The session itself is sans-io; this module supplies the two contexts
that put it on a wire:

* :class:`DESClientEndpoint` — one simulated client machine.  Its
  endpoint id *is* its client id (client ids start at
  ``num_replicas``, so they never collide with replica endpoints),
  which lets replicas address replies simply as ``send(op.client_id,
  reply)``.  Client egress is unshaped, like the workload hub: a client
  token stands for many physical machines, so it must not serialise
  behind one simulated NIC.
* :class:`LocalClient` — the same session over a live asyncio transport
  (:class:`~repro.network.asyncio_net.AsyncioNetwork` or TCP), with
  awaitable submit/read helpers for tests, examples and the CLI.
"""

from __future__ import annotations

import asyncio
import random
from typing import Any, Callable

from repro.client.config import ClientConfig
from repro.client.session import ClientSession
from repro.consensus.context import NodeContext
from repro.des.timers import TimerWheel


class DESClientContext(NodeContext):
    """NodeContext for one simulated client endpoint (unshaped egress)."""

    def __init__(self, sim: Any, network: Any, endpoint: int, num_replicas: int) -> None:
        self._sim = sim
        self._network = network
        self._endpoint = endpoint
        self._n = num_replicas
        self._timers = TimerWheel(sim)

    @property
    def now(self) -> float:
        return self._sim.now

    def send(self, dst: int, payload: Any) -> None:
        self._network.send(self._endpoint, dst, payload)

    def broadcast(self, payload: Any) -> None:
        for dst in range(self._n):
            self._network.send(self._endpoint, dst, payload)

    def set_timer(self, name: str, delay: float, callback: Callable[[], None]) -> None:
        self._timers.set(name, delay, callback)

    def cancel_timer(self, name: str) -> None:
        self._timers.cancel(name)

    def charge(self, seconds: float) -> None:
        """Clients model many machines; no CPU accounting."""


class DESClientEndpoint:
    """One protocol client wired into a :class:`DESCluster`."""

    def __init__(
        self,
        cluster: Any,
        client_id: int,
        config: ClientConfig | None = None,
        *,
        weight: int = 1,
        on_result: Callable[[int, Any, float], None] | None = None,
    ) -> None:
        num_replicas = cluster.experiment.cluster.num_replicas
        if client_id < num_replicas:
            raise ValueError(
                f"client ids start at {num_replicas} (replica ids are below)"
            )
        self.client_id = client_id
        self.ctx = DESClientContext(
            cluster.sim, cluster.network, client_id, num_replicas
        )
        self.session = ClientSession(
            client_id,
            self.ctx,
            config or ClientConfig(mode="real"),
            num_replicas,
            cluster.experiment.cluster.f,
            weight=weight,
            on_result=on_result,
            rng=random.Random(cluster.experiment.seed * 1_000_003 + client_id),
        )
        observability = getattr(cluster, "observability", None)
        if observability is not None:
            observability.bind_client_session(self.session)
        cluster.network.register(client_id, self.session.on_message)
        cluster.network.set_unshaped(client_id)


class LocalClient:
    """An asyncio protocol client for a :class:`LocalCluster`.

    Registers itself on the cluster transport and exposes awaitable
    submit/read calls: ``await client.submit(op)`` resolves with the
    reply certificate once ``f + 1`` matching replies arrived, ``await
    client.read(key)`` with the (certified or lease-served) value.
    """

    def __init__(
        self,
        cluster: Any,
        client_id: int = 10_000,
        config: ClientConfig | None = None,
    ) -> None:
        from repro.runtime.node import AsyncioContext

        num_replicas = cluster.config.num_replicas
        if client_id < num_replicas:
            raise ValueError(
                f"client ids start at {num_replicas} (replica ids are below)"
            )
        self.client_id = client_id
        self.ctx = AsyncioContext(cluster.network, client_id, num_replicas)
        self._waiters: dict[int, asyncio.Future] = {}
        self.session = ClientSession(
            client_id,
            self.ctx,
            config or ClientConfig(mode="real"),
            num_replicas,
            cluster.config.f,
            on_result=self._on_result,
        )
        observability = getattr(cluster, "observability", None)
        if observability is not None:
            observability.bind_client_session(self.session)
        cluster.network.register(client_id, self.session.on_message)

    def _on_result(self, sequence: int, outcome: Any, latency: float) -> None:
        future = self._waiters.pop(sequence, None)
        if future is not None and not future.done():
            future.set_result((outcome, latency))

    async def submit(self, op: bytes, timeout: float = 30.0) -> Any:
        """Submit a write; returns its ReplyCertificate."""
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        sequence = self.session.submit(op)
        self._waiters[sequence] = future
        outcome, _ = await asyncio.wait_for(future, timeout)
        return outcome

    async def read(self, key: bytes, timeout: float = 30.0) -> Any:
        """Read a key via the configured read path; returns the outcome.

        ``reads="commit"`` resolves with the ReplyCertificate of the
        ordered ``get``; ``reads="leader-lease"`` with the value bytes.
        """
        future: asyncio.Future = asyncio.get_event_loop().create_future()
        sequence = self.session.read(key)
        self._waiters[sequence] = future
        outcome, _ = await asyncio.wait_for(future, timeout)
        return outcome

    def close(self) -> None:
        self.ctx.cancel_all()
        for future in self._waiters.values():
            if not future.done():
                future.cancel()
        self._waiters.clear()
