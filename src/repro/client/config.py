"""Client subsystem configuration.

One frozen dataclass carries every client-path knob so the facade
(:class:`repro.api.Scenario`), the workload generator and the runtime
clients all speak the same vocabulary.  The defaults reproduce the
paper's evaluation clients (hub model, write-only traffic); flipping
``mode="real"`` swaps in genuine :class:`~repro.client.session.ClientSession`
protocol clients without changing anything else.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

MODES = ("hub", "real")
READ_MODES = ("commit", "leader-lease")


@dataclass(frozen=True)
class ClientConfig:
    """Knobs for the client/service subsystem (all fields keyword-safe)."""

    #: "hub" — the lockstep aggregate population the throughput figures
    #: use; "real" — one :class:`ClientSession` per client token, driven
    #: through the network like any other endpoint.
    mode: str = "hub"
    #: Initial reply timeout before the first retransmit, seconds.
    retry_timeout: float = 2.0
    #: Exponential backoff multiplier applied per retransmit round.
    backoff: float = 2.0
    #: Ceiling for the backed-off retransmit delay, seconds.
    max_backoff: float = 30.0
    #: Uniform jitter fraction added to each retransmit delay (0.1 means
    #: the delay is drawn from [d, 1.1 d]); de-synchronises retry storms.
    jitter: float = 0.1
    #: Read path: "commit" routes reads through consensus (full BFT
    #: linearizability); "leader-lease" serves them from the leader's
    #: committed state after a quorum check (linearizable under crash
    #: faults; see docs/CLIENTS.md for the trust model).
    reads: str = "commit"
    #: How long one successful quorum check keeps serving leader reads,
    #: seconds.  0 re-checks the quorum for every read batch (safest).
    lease_duration: float = 0.0
    #: Per-replica admission window, in weighted operations admitted but
    #: not yet committed.  ``None`` disables shedding.
    max_inflight: int | None = None
    #: Leader-side intake coalescing window, seconds: individually
    #: arriving client requests are pooled for this long before the next
    #: proposal attempt (the standard batching timer), so a burst of
    #: per-client sends forms the same blocks one aggregate batch would.
    #: Must exceed the network's arrival-jitter spread, or one burst
    #: splits across blocks and the population staggers permanently.
    coalesce: float = 0.005

    def __post_init__(self) -> None:
        if self.mode not in MODES:
            raise ConfigError(f"client mode must be one of {MODES}, got {self.mode!r}")
        if self.reads not in READ_MODES:
            raise ConfigError(
                f"reads must be one of {READ_MODES}, got {self.reads!r}"
            )
        if self.retry_timeout <= 0:
            raise ConfigError("retry_timeout must be positive")
        if self.backoff < 1.0:
            raise ConfigError("backoff must be >= 1.0")
        if self.max_backoff < self.retry_timeout:
            raise ConfigError("max_backoff must be >= retry_timeout")
        if self.jitter < 0:
            raise ConfigError("jitter cannot be negative")
        if self.lease_duration < 0:
            raise ConfigError("lease_duration cannot be negative")
        if self.coalesce < 0:
            raise ConfigError("coalesce cannot be negative")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1 (or None to disable)")
