"""Client-side session: ids, submission, retransmission, certificates.

One :class:`ClientSession` is one logical client (or, with ``weight > 1``,
a token standing for that many lockstep clients).  It follows the
HotStuff client contract:

* every command gets the next **monotonically increasing** sequence
  number; together with the client id this names the request everywhere
  (dedup tables, reply certificates, latency records);
* commands are canonically encoded — :func:`make_command` produces the
  one byte string every correct replica digests for this request;
* the request goes to the **believed leader** first; a reply timeout
  triggers retransmit-to-**all** with exponential backoff plus jitter
  (re-sending the *same* ``(client_id, seq)`` — the replica-side session
  table makes duplicates harmless);
* a result is accepted only with a :class:`~repro.client.collector.ReplyCertificate`
  — ``f + 1`` matching ``(seq, result_digest)`` replies.

The session is sans-io: it drives a :class:`~repro.consensus.context.NodeContext`
(``send``/``broadcast``/``set_timer``), so the same code runs over the
DES, over asyncio, and under synchronous unit tests via ``LocalContext``.
"""

from __future__ import annotations

import random
from typing import Any, Callable

from repro.client.collector import ReplyCollector
from repro.client.config import ClientConfig
from repro.client.tracker import LeaderTracker
from repro.common.encoding import encode
from repro.consensus.context import NodeContext
from repro.consensus.messages import ClientReply, ClientRequest, ReadReply, ReadRequest
from repro.crypto.hashing import digest_of
from repro.obs.flight import EV_CERTIFIED, EV_RETRANSMIT, EV_SUBMIT
from repro.obs.journey import CK_CERTIFIED, CK_RETRANSMIT, CK_ROUTED, CK_SUBMIT


def make_command(client_id: int, sequence: int, op: bytes) -> bytes:
    """Canonical encoding of one command; what replicas digest and log."""
    return encode([client_id, sequence, op])


def result_digest_of(client_id: int, sequence: int, result: bytes) -> bytes:
    """Digest a replica commits to when replying ``result`` for a request."""
    return digest_of(["reply", client_id, sequence, result])


#: fired as ``on_result(seq, certificate_or_value, latency_seconds)``.
ResultCallback = Callable[[int, Any, float], None]

TIMER_RETRY = "client-retry"


class ClientSession:
    """Sans-io protocol client bound to a runtime context."""

    def __init__(
        self,
        client_id: int,
        ctx: NodeContext,
        config: ClientConfig,
        num_replicas: int,
        f: int,
        *,
        weight: int = 1,
        on_result: ResultCallback | None = None,
        rng: random.Random | None = None,
        router: Any | None = None,
        shard: int | None = None,
    ) -> None:
        self.client_id = client_id
        self.ctx = ctx
        self.config = config
        self.num_replicas = num_replicas
        self.weight = weight
        self.on_result = on_result
        self.collector = ReplyCollector(f)
        # Shard-awareness: on a sharded deployment the session is bound
        # to the one group its identity routes to, and refuses to be
        # wired to any other (a mis-bound session would submit commands
        # the group's guard rejects; fail at construction instead).
        self.router = router
        self.shard = router.shard_of_client(client_id) if router is not None else shard
        if (
            router is not None
            and shard is not None
            and shard != self.shard
        ):
            raise ValueError(
                f"client {client_id} routes to shard {self.shard}, but the "
                f"session was bound to shard {shard}"
            )
        self.tracker = LeaderTracker(num_replicas, shard=self.shard)
        self.rng = rng if rng is not None else random.Random(0xC11E57 ^ client_id)

        # Optional run-level collectors, wired by the runtime binding
        # (see RunObservability.bind_client_session).  ``journey`` is set
        # only when this client id is sampled, so the per-request cost of
        # tracing is a None check on unsampled sessions.
        self.journey: Any | None = None
        self.flight: Any | None = None

        self._next_seq = 1
        #: seq -> outstanding write (retransmitted verbatim on timeout).
        self.inflight: dict[int, ClientRequest] = {}
        #: seq -> outstanding leader-lease read.
        self.inflight_reads: dict[int, ReadRequest] = {}
        self._submitted_at: dict[int, float] = {}
        self._delay = config.retry_timeout

        # Counters the workload/benchmark layers aggregate.
        self.certified = 0
        self.retransmits = 0
        self.reads_served = 0
        self.redirects = 0

    # ---------------------------------------------------------- submission

    def next_sequence(self) -> int:
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def submit(self, op: bytes) -> int:
        """Submit one write command; returns its sequence number."""
        seq = self.next_sequence()
        request = ClientRequest(
            client_id=self.client_id, sequence=seq, payload=op, weight=self.weight
        )
        self.inflight[seq] = request
        now = self.ctx.now
        self._submitted_at[seq] = now
        if self.journey is not None:
            self.journey.record(self.client_id, seq, CK_SUBMIT, now)
            if self.shard is not None:
                self.journey.record(self.client_id, seq, CK_ROUTED, now)
        if self.flight is not None:
            self.flight.record(now, EV_SUBMIT, -1, detail=str(seq))
        self._dispatch(request)
        self._arm_timer()
        return seq

    def read(self, key: bytes) -> int:
        """Submit one read; the path depends on ``config.reads``.

        ``"commit"`` orders the read through consensus as a ``get``
        command (full BFT linearizability).  ``"leader-lease"`` asks the
        believed leader, which serves from committed state only after a
        quorum view check — see docs/CLIENTS.md for the trust model.
        """
        if self.config.reads == "commit":
            return self.submit(encode(["get", key]))
        seq = self.next_sequence()
        request = ReadRequest(
            client_id=self.client_id, sequence=seq, key=key, weight=self.weight
        )
        self.inflight_reads[seq] = request
        self._submitted_at[seq] = self.ctx.now
        self._dispatch(request)
        self._arm_timer()
        return seq

    def _dispatch(self, request: Any) -> None:
        target = self.tracker.target()
        if target == LeaderTracker.BROADCAST:
            self._send_all(request)
        else:
            self.ctx.send(target, request)

    def _send_all(self, request: Any) -> None:
        for replica_id in range(self.num_replicas):
            self.ctx.send(replica_id, request)

    # --------------------------------------------------------------- inbox

    def on_message(self, src: int, payload: Any) -> None:
        """Feed one network delivery into the session."""
        if isinstance(payload, ClientReply):
            self._on_reply(payload)
        elif isinstance(payload, ReadReply):
            self._on_read_reply(payload)

    def _on_reply(self, reply: ClientReply) -> None:
        if reply.client_id != self.client_id:
            return
        self.tracker.observe(reply.view)
        if reply.sequence not in self.inflight:
            return
        digest = reply.result_digest or result_digest_of(
            self.client_id, reply.sequence, reply.result
        )
        certificate = self.collector.add(
            self.client_id,
            reply.sequence,
            reply.replica,
            digest,
            reply.view,
            result=reply.result,
        )
        if certificate is None:
            return
        self.inflight.pop(reply.sequence, None)
        self.tracker.on_certified(certificate.view)
        self.certified += 1
        if self.journey is not None:
            self.journey.record(self.client_id, reply.sequence, CK_CERTIFIED, self.ctx.now)
        if self.flight is not None:
            self.flight.record(self.ctx.now, EV_CERTIFIED, -1, detail=str(reply.sequence))
        self._finish(reply.sequence, certificate)

    def _on_read_reply(self, reply: ReadReply) -> None:
        if reply.client_id != self.client_id:
            return
        self.tracker.observe(reply.view)
        request = self.inflight_reads.get(reply.sequence)
        if request is None:
            return
        if not reply.ok:
            # Redirect: the receiver was not the leader.  Re-aim at the
            # leader of the view it told us about (once per redirect, the
            # retry timer covers the case where that one is stale too).
            self.redirects += 1
            self.ctx.send(self.tracker.leader_of(self.tracker.view), request)
            return
        del self.inflight_reads[reply.sequence]
        self.reads_served += 1
        self._finish(reply.sequence, reply.value)

    def _finish(self, sequence: int, outcome: Any) -> None:
        submitted = self._submitted_at.pop(sequence, self.ctx.now)
        self._delay = self.config.retry_timeout
        if not self.inflight and not self.inflight_reads:
            self.ctx.cancel_timer(self._timer_name)
        if self.on_result is not None:
            self.on_result(sequence, outcome, self.ctx.now - submitted)

    # --------------------------------------------------------- retransmits

    @property
    def _timer_name(self) -> str:
        return f"{TIMER_RETRY}-{self.client_id}"

    def _arm_timer(self) -> None:
        delay = self._delay * (1.0 + self.rng.random() * self.config.jitter)
        self.ctx.set_timer(self._timer_name, delay, self._on_retry_timeout)

    def _on_retry_timeout(self) -> None:
        if not self.inflight and not self.inflight_reads:
            return
        self.tracker.on_timeout()
        now = self.ctx.now
        for request in self.inflight.values():
            self._send_all(request)
            self.retransmits += 1
            if self.journey is not None:
                self.journey.record(self.client_id, request.sequence, CK_RETRANSMIT, now)
            if self.flight is not None:
                self.flight.record(now, EV_RETRANSMIT, -1, detail=str(request.sequence))
        for read in self.inflight_reads.values():
            self._send_all(read)
            self.retransmits += 1
        self._delay = min(self._delay * self.config.backoff, self.config.max_backoff)
        self._arm_timer()
