"""repro.client — the client/service subsystem.

The paper's evaluation (Section VI) drives the cluster with a population
of clients that each wait for ``f + 1`` matching replies.  This package
implements that contract as a real protocol rather than a harness
abstraction, following the client rules HotStuff states explicitly:
submit to the believed leader, accept a result once ``f + 1`` replicas
report the same outcome, and retransmit to *all* replicas on timeout.

Client side:

* :class:`ClientSession` — per-client monotonically increasing request
  ids, canonical-encoded commands, retransmit-to-all with exponential
  backoff + jitter, and an opt-in linearizable read path;
* :class:`ReplyCollector` — forms a :class:`ReplyCertificate` from
  ``f + 1`` matching ``(seq, result_digest)`` replies and rejects
  mismatched (possibly forged) results;
* :class:`LeaderTracker` — learns the current view from replies and
  routes submissions to the believed leader, falling back to broadcast.

Replica side:

* :class:`SessionTable` — exactly-once deduplication: an already
  committed ``(client, seq)`` is answered from the cached reply and is
  never re-executed;
* :class:`ClientService` — glue bolted onto a
  :class:`~repro.consensus.replica_base.ReplicaBase`: request intake
  with a bounded inflight window (shed-and-retry backpressure), reply
  emission with per-request result digests, and the quorum-checked
  leader read path.

Runtime adapters (:mod:`repro.client.runtime`) bind sessions to the DES
and to asyncio; :class:`ClientConfig` carries every knob.
"""

from repro.client.collector import ReplyCertificate, ReplyCollector
from repro.client.config import ClientConfig
from repro.client.service import ClientService, SessionTable, attach_client_services
from repro.client.session import ClientSession, make_command, result_digest_of
from repro.client.tracker import LeaderTracker

__all__ = [
    "ClientConfig",
    "ClientService",
    "ClientSession",
    "LeaderTracker",
    "ReplyCertificate",
    "ReplyCollector",
    "SessionTable",
    "attach_client_services",
    "make_command",
    "result_digest_of",
]
