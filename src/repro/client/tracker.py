"""Leader tracking: learn the current view from replies, route to it.

HotStuff clients send each command to the one replica they believe is
the leader and only fall back to broadcasting when a reply timeout
suggests that belief is stale.  The tracker is the client-side half of
that: every reply (and every reply certificate) carries the replica's
current view, the tracker keeps the maximum it has seen, and
``target()`` maps that view onto a replica id with the same round-robin
rule the replicas use (``leader_of``).  After a view change the first
honest reply — typically provoked by one retransmit-to-all round — is
enough to converge on the new leader.
"""

from __future__ import annotations


class LeaderTracker:
    """Believed-leader routing state for one client."""

    #: Sentinel target meaning "send to every replica".
    BROADCAST = -1

    def __init__(
        self, num_replicas: int, initial_view: int = 1, shard: int | None = None
    ) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        self.num_replicas = num_replicas
        self.view = initial_view
        #: Consensus group this tracker's leader belief is about (None on
        #: an unsharded deployment).  Views/leaders are per-group state,
        #: so a shard-aware client keeps one tracker per session, each
        #: pinned to the session's home group.
        self.shard = shard
        #: Consecutive reply timeouts since the last successful reply;
        #: any timeout demotes routing to broadcast until trust returns.
        self.strikes = 0

    def observe(self, view: int) -> bool:
        """Fold in a view reported by a reply; True if the view advanced."""
        if view <= self.view:
            return False
        self.view = view
        self.strikes = 0
        return True

    def on_certified(self, view: int) -> None:
        """A certificate formed at ``view`` — the believed leader works."""
        self.observe(view)
        self.strikes = 0

    def on_timeout(self) -> None:
        """A reply timeout — stop trusting the believed leader."""
        self.strikes += 1

    def leader_of(self, view: int) -> int:
        """Round-robin view→leader map, identical to the replicas'."""
        return (view - 1) % self.num_replicas

    def target(self) -> int:
        """Replica to submit to: the believed leader, or BROADCAST."""
        if self.strikes > 0:
            return self.BROADCAST
        return self.leader_of(self.view)
