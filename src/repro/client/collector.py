"""Reply certificates: ``f + 1`` matching replies make a result final.

With at most ``f`` Byzantine replicas, any ``f + 1`` replicas reporting
the same ``(client, seq, result_digest)`` include at least one correct
replica, so the result really is the committed one — this is the client
acceptance rule of PBFT and HotStuff.  The collector tallies replies per
request, one vote per replica (a replica changing its story is recorded
as a mismatch and keeps its first vote), and emits a
:class:`ReplyCertificate` the moment some digest reaches ``f + 1``
distinct reporters.  A liar coalition of at most ``f`` can therefore
never certify a forged result.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ReplyCertificate:
    """Proof that ``f + 1`` replicas reported the same result."""

    client_id: int
    sequence: int
    result_digest: bytes
    #: Highest view among the certifying replies (leader-tracking input).
    view: int
    #: The replicas whose matching replies formed the certificate.
    replicas: frozenset[int]
    #: Result bytes as reported by the certifying replies (the digest
    #: commits to them, so any certifying reply's copy is authoritative).
    result: bytes = b""


class ReplyCollector:
    """Tallies per-request replies into certificates."""

    def __init__(self, f: int) -> None:
        self.need = f + 1
        #: (client, seq) -> replica -> (digest, view, result); one vote
        #: per replica.
        self._votes: dict[tuple[int, int], dict[int, tuple[bytes, int, bytes]]] = {}
        self._certified: set[tuple[int, int]] = set()
        #: Replies that contradicted an earlier reply from the same
        #: replica, or arrived after certification with a different
        #: digest — each one is evidence of a faulty replica.
        self.mismatches = 0

    def add(
        self,
        client_id: int,
        sequence: int,
        replica: int,
        result_digest: bytes,
        view: int,
        result: bytes = b"",
    ) -> ReplyCertificate | None:
        """Record one reply; returns a certificate when ``f + 1`` match.

        Returns None while the request is short of a quorum *and* after
        it has already been certified (each request certifies once).
        """
        key = (client_id, sequence)
        if key in self._certified:
            return None
        votes = self._votes.setdefault(key, {})
        previous = votes.get(replica)
        if previous is not None:
            if previous[0] != result_digest:
                self.mismatches += 1  # equivocating replica; first vote stands
            return None
        votes[replica] = (result_digest, view, result)
        matching = [
            (rid, v) for rid, (digest, v, _) in votes.items() if digest == result_digest
        ]
        if len(matching) < self.need:
            return None
        if len(votes) > len(matching):
            # Some replica reported a different digest for this request.
            self.mismatches += len(votes) - len(matching)
        self._certified.add(key)
        del self._votes[key]
        return ReplyCertificate(
            client_id=client_id,
            sequence=sequence,
            result_digest=result_digest,
            view=max(v for _, v in matching),
            replicas=frozenset(rid for rid, _ in matching),
            result=result,
        )

    def pending(self) -> int:
        """Requests with at least one reply but no certificate yet."""
        return len(self._votes)

    def discard(self, client_id: int, sequence: int) -> None:
        """Drop tally state for one request (session gave up on it)."""
        self._votes.pop((client_id, sequence), None)
